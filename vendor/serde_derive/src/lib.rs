//! Minimal vendored `serde_derive`.
//!
//! Parses the item's token stream directly (no `syn`/`quote` in the build
//! container) and emits `serde::Serialize`/`serde::Deserialize` impls in the
//! vendored facade's `Content` data model. Supports exactly the shapes this
//! workspace uses: non-generic structs with named fields, tuple structs, and
//! enums whose variants are unit, tuple, or struct-like. The generated
//! encoding follows real serde's externally-tagged JSON conventions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field list.
enum Fields {
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple arity.
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => ser_struct(name, fields),
        Item::Enum { name, variants } => ser_enum(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => de_struct(name, fields),
        Item::Enum { name, variants } => de_enum(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    }
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip attributes (`#[...]`), doc comments, and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "struct" => {
            Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            }
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            Item::Struct {
                name,
                fields: Fields::Tuple(count_tuple_fields(g.stream())),
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && kind == "struct" => Item::Struct {
            name,
            fields: Fields::Unit,
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "enum" => {
            Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("vendored serde_derive does not support generic types ({name})")
        }
        other => panic!("unsupported {kind} body for {name}: {other:?}"),
    }
}

/// Field names from `{ a: T, pub b: U, ... }` (attributes tolerated).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        // Skip attributes/docs and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = toks.next() else {
            break;
        };
        fields.push(id.to_string());
        // Expect `:`; then skip the type up to a top-level comma. `<`/`>`
        // nesting must be tracked so `Vec<(A, B)>` commas don't split.
        let mut depth = 0i32;
        for tok in toks.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Tuple-struct arity from `(T, U, ...)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = toks.next() else {
            break;
        };
        let name = id.to_string();
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                toks.next();
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip to the next top-level comma (tolerates `= disc`, unused here).
        while let Some(tok) = toks.peek() {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                toks.next();
                break;
            }
            toks.next();
        }
    }
    variants
}

// ----------------------------------------------------------- generation

fn ser_struct(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("let _ = self; ::serde::Content::Str(\"{name}\".to_string())"),
        Fields::Named(names) => {
            let pushes: String = names
                .iter()
                .map(|f| {
                    format!(
                        "m.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_content(&self.{f})));"
                    )
                })
                .collect();
            format!("let mut m = Vec::new(); {pushes} ::serde::Content::Map(m)")
        }
        Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
    }
}

fn de_struct(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("let _ = c; Ok({name})"),
        Fields::Named(names) => {
            let inits: String = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         ::serde::content::field(m, \"{f}\"))?,"
                    )
                })
                .collect();
            format!(
                "let m = c.as_map().ok_or_else(|| \
                 ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                 Ok({name} {{ {inits} }})"
            )
        }
        Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_content(c)?))"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_content(s.get({i}).ok_or_else(|| \
                         ::serde::DeError::expected(\"tuple element\", \"{name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "let s = c.as_seq().ok_or_else(|| \
                 ::serde::DeError::expected(\"array\", \"{name}\"))?;\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
    }
}

fn ser_enum(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => {
                    format!("{name}::{vname} => ::serde::Content::Str(\"{vname}\".to_string()),\n")
                }
                Fields::Tuple(1) => format!(
                    "{name}::{vname}(f0) => ::serde::Content::Map(vec![(\
                     \"{vname}\".to_string(), ::serde::Serialize::to_content(f0))]),\n"
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_content({b})"))
                        .collect();
                    format!(
                        "{name}::{vname}({}) => ::serde::Content::Map(vec![(\
                         \"{vname}\".to_string(), ::serde::Content::Seq(vec![{}]))]),\n",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let binds = fields.join(", ");
                    let pushes: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("(\"{f}\".to_string(), ::serde::Serialize::to_content({f}))")
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(vec![(\
                         \"{vname}\".to_string(), ::serde::Content::Map(vec![{}]))]),\n",
                        pushes.join(", ")
                    )
                }
            }
        })
        .collect();
    format!("match self {{ {arms} }}")
}

fn de_enum(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => format!("\"{vname}\" => Ok({name}::{vname}),\n"),
                Fields::Tuple(1) => format!(
                    "\"{vname}\" => Ok({name}::{vname}(\
                     ::serde::Deserialize::from_content(val)?)),\n"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_content(s.get({i}).ok_or_else(|| \
                                 ::serde::DeError::expected(\"variant element\", \"{name}\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "\"{vname}\" => {{ let s = val.as_seq().ok_or_else(|| \
                         ::serde::DeError::expected(\"array\", \"{name}::{vname}\"))?;\n\
                         Ok({name}::{vname}({})) }}\n",
                        items.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_content(\
                                 ::serde::content::field(m, \"{f}\"))?,"
                            )
                        })
                        .collect();
                    format!(
                        "\"{vname}\" => {{ let m = val.as_map().ok_or_else(|| \
                         ::serde::DeError::expected(\"object\", \"{name}::{vname}\"))?;\n\
                         Ok({name}::{vname} {{ {inits} }}) }}\n",
                        inits = inits
                    )
                }
            }
        })
        .collect();
    format!(
        "let (tag, val) = ::serde::content::variant(c, \"{name}\")?;\n\
         match tag {{ {arms} other => Err(::serde::DeError(format!(\
         \"unknown {name} variant {{other}}\"))) }}"
    )
}
