//! Minimal vendored `crossbeam` facade.
//!
//! The workspace only uses `crossbeam::channel::bounded` with cloneable
//! senders and a single consumer, which maps directly onto
//! `std::sync::mpsc::sync_channel` (bounded, blocking, multi-producer).

pub mod channel {
    use std::sync::mpsc;

    /// Cloneable bounded sender.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Send error: the channel is disconnected; the value is returned.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Receive error: all senders dropped and the buffer is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Blocking send (backpressure when the buffer is full).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }

        /// Non-blocking send attempt; hands the value back on failure.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.inner.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    /// Send error of the non-blocking [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// The buffer is full; the value is returned.
        Full(T),
        /// The channel is disconnected; the value is returned.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; errors when every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive attempt.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocking receive bounded by a timeout.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Blocking receive bounded by an absolute deadline (what the
        /// timer-wheel-driven control planes use: wait for an event *or*
        /// the next armed deadline, whichever comes first).
        pub fn recv_deadline(&self, deadline: std::time::Instant) -> Result<T, RecvTimeoutError> {
            let now = std::time::Instant::now();
            if deadline <= now {
                return match self.inner.try_recv() {
                    Ok(v) => Ok(v),
                    Err(mpsc::TryRecvError::Empty) => Err(RecvTimeoutError::Timeout),
                    Err(mpsc::TryRecvError::Disconnected) => Err(RecvTimeoutError::Disconnected),
                };
            }
            self.recv_timeout(deadline - now)
        }
    }

    /// Receive error of the deadline/timeout-bounded receives.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message.
        Timeout,
        /// All senders dropped and the buffer is empty.
        Disconnected,
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_channel_round_trips_across_threads() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let tx2 = tx.clone();
        let h1 = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let h2 = std::thread::spawn(move || {
            for i in 100..200 {
                tx2.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
            if got.len() == 200 {
                break;
            }
        }
        h1.join().unwrap();
        h2.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }
}
