//! Minimal vendored `rand` facade.
//!
//! Provides the deterministic subset this workspace uses: the [`Rng`] trait
//! with `gen_range`/`gen_bool`, and [`SeedableRng::seed_from_u64`]. Backing
//! generators (e.g. the vendored `rand_chacha`) implement [`RngCore`].

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing random-value methods.
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform draw from `[0, span)` via rejection sampling.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )+};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// `rngs` namespace kept for drop-in compatibility.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast xoshiro256++ generator (stands in for StdRng).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_state(s: [u64; 4]) -> SmallRng {
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng {
                s: super::expand_seed(seed),
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            super::xoshiro_next(&mut self.s)
        }
    }
}

/// SplitMix64 seed expansion (the standard xoshiro seeding procedure).
pub(crate) fn expand_seed(seed: u64) -> [u64; 4] {
    let mut x = seed;
    let mut next = || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    [next(), next(), next(), next()]
}

/// One xoshiro256++ step.
pub(crate) fn xoshiro_next(s: &mut [u64; 4]) -> u64 {
    let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
    let t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = s[3].rotate_left(45);
    result
}

/// Internal constructor used by sibling vendored generator crates.
#[doc(hidden)]
pub fn __rng_from_seed(seed: u64) -> rngs::SmallRng {
    rngs::SmallRng::from_state(expand_seed(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u32..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::SmallRng::seed_from_u64(42);
        let mut b = rngs::SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = rngs::SmallRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn uniformity_is_reasonable() {
        let mut rng = rngs::SmallRng::seed_from_u64(9);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }
}
