//! Minimal vendored `criterion` facade.
//!
//! Provides the macro/struct surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`,
//! `black_box`, `BenchmarkId`, `Throughput` — backed by a small fixed-budget
//! timing loop (warm-up + timed samples, median reported). Statistical rigor
//! is out of scope; the harness exists so `cargo bench` compiles and gives
//! usable relative numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterised benchmark id, rendered `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-benchmark timing driver.
pub struct Bencher {
    /// Measured median per-iteration time, filled by `iter`.
    median_ns: f64,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times the closure: a short warm-up, then samples within the
    /// measurement budget; records the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also used to size iterations per sample.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        while warm_start.elapsed() < self.warm_up || iters_done == 0 {
            black_box(f());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;
        let budget_per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = (budget_per_sample / per_iter.max(1e-9)).ceil().max(1.0) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.median_ns = samples[samples.len() / 2] * 1e9;
    }
}

/// A named group of benchmarks sharing throughput/time settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Sets samples per benchmark.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(2);
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) {
        self.warm_up = d;
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) {
        self.measurement = d;
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            median_ns: 0.0,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.to_string(), b.median_ns);
    }

    /// Runs one benchmark parameterised by an input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            median_ns: 0.0,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.median_ns);
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, median_ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median_ns > 0.0 => {
                format!("  ({:.2} Melem/s)", n as f64 / median_ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if median_ns > 0.0 => {
                format!(
                    "  ({:.2} MiB/s)",
                    n as f64 / median_ns * 1e9 / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!("{}/{id}: median {}{rate}", self.name, fmt_ns(median_ns));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group with modest default budgets.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function list (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Elements(100));
        let mut acc = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| {
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        group.finish();
    }
}
