//! Minimal vendored `bytes` facade.
//!
//! [`Bytes`] is a cheaply-cloneable shared byte buffer (an `Arc<[u8]>` window)
//! and [`BytesMut`] an append-only builder; both expose the little-endian
//! get/put surface the workspace's wire encoding uses via the [`Buf`] and
//! [`BufMut`] traits.

use std::ops::Deref;
use std::sync::Arc;

/// Shared immutable byte buffer (a view into reference-counted storage).
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static slice (copied; the vendored facade keeps one repr).
    pub fn from_static(slice: &'static [u8]) -> Bytes {
        Bytes::from(slice.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same storage.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread contiguous chunk.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Append-only byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with `cap` reserved bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts to an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_i64_le(-42);
        b.put_f64_le(1.5);
        b.put_u16_le(7);
        b.put_u8(3);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.chunk(), b"xyz");
    }

    #[test]
    fn slices_share_storage_and_compare_by_content() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s, Bytes::from(vec![2, 3, 4]));
        assert_eq!(s.len(), 3);
    }
}
