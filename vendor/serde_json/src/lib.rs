//! Minimal vendored `serde_json`: renders the vendored serde facade's
//! [`Content`] data model as JSON text and parses it back.

use std::fmt;

use serde::{Content, DeError, Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

// -------------------------------------------------------------- writing

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, level: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_content(item, out, indent, level + 1);
            }
            if !items.is_empty() {
                newline(out, indent, level);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, level + 1);
            }
            if !entries.is_empty() {
                newline(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// JSON has no NaN/Infinity; serde_json emits `null` for them.
fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // Ensure floats stay floats on re-parse.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".to_string()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Content::Null),
            b't' => self.literal("true", Content::Bool(true)),
            b'f' => self.literal("false", Content::Bool(false)),
            b'"' => self.string().map(Content::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".to_string()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("bad escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u escape".to_string()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape \\{}", other as char))),
                    }
                }
                _ => {
                    // Re-take the full UTF-8 character starting at pos-1.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if text.contains('.') || text.contains('e') || text.contains('E') {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let v = vec![1.5f64, -2.0, 1e10];
        let s = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn nested_pretty_round_trip() {
        let v: Vec<(String, Vec<u64>)> = vec![
            ("a\"b".to_string(), vec![1, 2]),
            ("c\n".to_string(), vec![]),
        ];
        let s = to_string_pretty(&v).unwrap();
        let back: Vec<(String, Vec<u64>)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_preserve_sign_and_width() {
        let s = to_string(&(-5i64, 18_446_744_073_709_551_615u64)).unwrap();
        let back: (i64, u64) = from_str(&s).unwrap();
        assert_eq!(back, (-5, u64::MAX));
    }
}
