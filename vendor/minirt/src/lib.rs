//! Minimal vendored cooperative task runtime.
//!
//! The workspace needs a task-per-pipeline executor for the live session's
//! 10k-source fan-in, but the build environment has no crates registry, so
//! this crate vendors the smallest useful subset of a tokio-style runtime —
//! in safe, std-only Rust (the workspace forbids `unsafe`, so wakers come
//! from [`std::task::Wake`] over `Arc`ed tasks rather than raw vtables):
//!
//! * [`exec`] — a multi-worker executor with per-worker run queues, a
//!   global injector, and work stealing; [`exec::Runtime::deterministic`]
//!   is a seeded single-worker mode that replays one task interleaving
//!   reproducibly (CI's deterministic-scheduler mode).
//! * [`chan`] — bounded async MPSC channels whose senders park as wakers
//!   in the channel when the buffer is full, and whose receiver drains
//!   every buffered message per wakeup ([`chan::Receiver::recv_many`]) so
//!   wakeups amortize per batch, not per message.
//! * [`timer`] — a deadline wheel driven by one shared timer thread:
//!   async [`timer::TimerWheel::sleep_until`] for task backoff plus the
//!   sync [`timer::DeadlineQueue`] used to bound blocking waits (heartbeat
//!   and liveness deadlines) without fixed-interval sleep polling.

pub mod exec {
    //! Work-stealing multi-worker task executor.

    use std::collections::VecDeque;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::task::{Context, Poll, Wake, Waker};

    type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

    // Task lifecycle states (see `Task::state`).
    const IDLE: u8 = 0;
    const SCHEDULED: u8 = 1;
    const RUNNING: u8 = 2;
    const NOTIFIED: u8 = 3;
    const DONE: u8 = 4;

    /// One spawned task: the future plus its scheduling state.
    struct Task {
        /// The future, taken out while a worker polls it.
        future: Mutex<Option<BoxFuture>>,
        /// IDLE / SCHEDULED / RUNNING / NOTIFIED / DONE.
        state: AtomicU8,
        /// Scheduler shared state (queues + parking).
        core: Arc<Core>,
    }

    impl Wake for Task {
        fn wake(self: Arc<Self>) {
            self.clone().wake_by_ref();
        }

        fn wake_by_ref(self: &Arc<Self>) {
            loop {
                let s = self.state.load(Ordering::Acquire);
                match s {
                    IDLE => {
                        if self
                            .state
                            .compare_exchange(IDLE, SCHEDULED, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            self.core.enqueue(Arc::clone(self));
                            return;
                        }
                    }
                    RUNNING => {
                        if self
                            .state
                            .compare_exchange(
                                RUNNING,
                                NOTIFIED,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                        {
                            // The polling worker re-enqueues after the poll.
                            return;
                        }
                    }
                    // Already queued, already notified, or finished.
                    _ => return,
                }
            }
        }
    }

    /// Scheduler shared state. Run queues are **individually locked** — a
    /// global injector for spawns and foreign-thread wakes plus one local
    /// per worker — so a worker's own push/pop never contends with another
    /// worker's, and scheduler throughput scales with workers instead of
    /// serializing every enqueue, pop, and steal on one mutex (at a
    /// 10k-task fan-in the single-lock design spends more time queueing
    /// than polling). Workers pop their own local first, then refill from
    /// the injector in fair-share chunks, then steal the back half of the
    /// first non-empty sibling.
    struct Core {
        /// Spawns and wakes from non-worker threads.
        injector: Mutex<VecDeque<Arc<Task>>>,
        /// One run queue per worker; wakes from a worker land here.
        locals: Vec<Mutex<VecDeque<Arc<Task>>>>,
        /// Version number of "work arrived": bumped (SeqCst) on every
        /// enqueue and gate change. Paired with `sleepers` it forms the
        /// Dekker-style sleep protocol: an enqueuer either observes a
        /// sleeper (and notifies) or the would-be sleeper observes the
        /// bumped seq (and re-scans) — never both miss.
        seq: AtomicU64,
        /// Workers inside `parked.wait` (SeqCst; see `seq`).
        sleepers: AtomicUsize,
        /// Guards only the sleep protocol; never held together with a
        /// queue lock.
        park: Mutex<()>,
        /// Workers park here when every queue is empty.
        parked: Condvar,
        /// Tasks spawned and not yet DONE (drained-shutdown accounting).
        live: AtomicUsize,
        shutdown: AtomicUsize,
        /// 0 = workers held back, 1 = running. Deterministic runtimes start
        /// gated and open on the first `join()`, so every task of the batch
        /// is enqueued before the seeded pop order starts consuming them —
        /// otherwise the interleaving would race the spawning thread.
        gate: AtomicUsize,
        /// Seeded xorshift state; `Some` switches the (single-worker)
        /// scheduler to deterministic random-order popping.
        det_rng: Option<Mutex<u64>>,
    }

    std::thread_local! {
        /// Which worker (index) the current thread is, if any: wakes from a
        /// worker land on its own local queue; wakes from foreign threads
        /// land on the injector.
        static WORKER_INDEX: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }

    fn xorshift(s: &mut u64) -> u64 {
        let mut x = *s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *s = x;
        x
    }

    impl Core {
        fn enqueue(&self, task: Arc<Task>) {
            let w = WORKER_INDEX.with(std::cell::Cell::get);
            if w < self.locals.len() {
                self.locals[w].lock().expect("queue lock").push_back(task);
            } else {
                self.injector.lock().expect("queue lock").push_back(task);
            }
            self.bump();
        }

        /// Publishes "work arrived" and wakes one sleeper if any. The
        /// SeqCst pair with the sleeper's `sleepers`-then-`seq` sequence
        /// guarantees either this thread sees the sleeper or the sleeper
        /// sees the new seq.
        fn bump(&self) {
            self.seq.fetch_add(1, Ordering::SeqCst);
            if self.sleepers.load(Ordering::SeqCst) > 0 {
                let _g = self.park.lock().expect("park lock");
                self.parked.notify_one();
            }
        }

        /// Opens the start gate (deterministic runtimes) and releases every
        /// parked worker.
        fn open_gate(&self) {
            if self.gate.swap(1, Ordering::AcqRel) == 0 {
                self.seq.fetch_add(1, Ordering::SeqCst);
                let _g = self.park.lock().expect("park lock");
                self.parked.notify_all();
            }
        }

        /// Pops the next runnable task for worker `w`: local queue, then an
        /// injector chunk, then stealing. Takes at most one queue lock at a
        /// time (the deterministic path excepted).
        fn find(&self, w: usize) -> Option<Arc<Task>> {
            if let Some(rng) = &self.det_rng {
                // Deterministic mode: one worker, one merged ready list
                // (injector entries first), seeded random pop order.
                let mut inj = self.injector.lock().expect("queue lock");
                let mut loc = self.locals[w].lock().expect("queue lock");
                let total = inj.len() + loc.len();
                if total == 0 {
                    return None;
                }
                let mut s = rng.lock().expect("rng lock");
                let pick = (xorshift(&mut s) % total as u64) as usize;
                return Some(if pick < inj.len() {
                    inj.remove(pick).expect("index in range")
                } else {
                    let i = pick - inj.len();
                    loc.remove(i).expect("index in range")
                });
            }
            if let Some(t) = self.locals[w].lock().expect("queue lock").pop_front() {
                return Some(t);
            }
            // Refill from the injector in a fair-share chunk: one lock
            // round-trip absorbs a worker's share of a spawn burst instead
            // of re-contending once per task.
            let mut chunk = {
                let mut inj = self.injector.lock().expect("queue lock");
                let grab = inj.len().div_ceil(self.locals.len()).min(64);
                inj.drain(..grab).collect::<VecDeque<Arc<Task>>>()
            };
            if let Some(first) = chunk.pop_front() {
                if !chunk.is_empty() {
                    self.locals[w]
                        .lock()
                        .expect("queue lock")
                        .append(&mut chunk);
                }
                return Some(first);
            }
            // Steal the back half of the first non-empty sibling queue.
            let n = self.locals.len();
            for off in 1..n {
                let v = (w + off) % n;
                let mut vq = self.locals[v].lock().expect("queue lock");
                let len = vq.len();
                if len == 0 {
                    continue;
                }
                let mut stolen = vq.split_off(len / 2);
                drop(vq);
                let first = stolen.pop_front();
                if !stolen.is_empty() {
                    self.locals[w]
                        .lock()
                        .expect("queue lock")
                        .append(&mut stolen);
                }
                return first;
            }
            None
        }

        /// Parks the calling worker until `seq` moves past `seen` (or
        /// shutdown). `seen` must have been read *before* the caller's last
        /// queue scan, so an enqueue that raced the scan is never slept
        /// through.
        fn sleep(&self, seen: u64) {
            let mut g = self.park.lock().expect("park lock");
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            while self.seq.load(Ordering::SeqCst) == seen
                && self.shutdown.load(Ordering::Acquire) == 0
            {
                g = self.parked.wait(g).expect("park lock");
            }
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn worker_loop(core: &Arc<Core>, w: usize) {
        WORKER_INDEX.with(|c| c.set(w));
        loop {
            if core.shutdown.load(Ordering::Acquire) != 0 {
                return;
            }
            let seen = core.seq.load(Ordering::SeqCst);
            let task = if core.gate.load(Ordering::Acquire) != 0 {
                core.find(w)
            } else {
                None
            };
            let Some(task) = task else {
                core.sleep(seen);
                continue;
            };
            task.state.store(RUNNING, Ordering::Release);
            let fut = task.future.lock().expect("task future lock").take();
            let Some(mut fut) = fut else {
                task.state.store(DONE, Ordering::Release);
                continue;
            };
            let waker = Waker::from(Arc::clone(&task));
            let mut cx = Context::from_waker(&waker);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    task.state.store(DONE, Ordering::Release);
                    core.live.fetch_sub(1, Ordering::AcqRel);
                }
                Poll::Pending => {
                    *task.future.lock().expect("task future lock") = Some(fut);
                    // If a wake arrived mid-poll (NOTIFIED), re-enqueue.
                    if task
                        .state
                        .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        task.state.store(SCHEDULED, Ordering::Release);
                        core.enqueue(Arc::clone(&task));
                    }
                }
            }
        }
    }

    /// Where a [`JoinHandle`] picks up its task's result.
    struct JoinState<T> {
        slot: Mutex<Option<T>>,
        done: Condvar,
    }

    /// Owned handle on one spawned task's result.
    ///
    /// [`JoinHandle::join`] blocks the *calling thread* (it is meant for the
    /// synchronous orchestrator that spawned an epoch's tasks, not for use
    /// inside a task).
    pub struct JoinHandle<T> {
        state: Arc<JoinState<T>>,
        core: Arc<Core>,
    }

    impl<T> JoinHandle<T> {
        /// Blocks until the task completes and returns its output. On a
        /// gated (deterministic) runtime, the first join releases the
        /// worker.
        pub fn join(self) -> T {
            self.core.open_gate();
            let mut slot = self.state.slot.lock().expect("join lock");
            loop {
                if let Some(v) = slot.take() {
                    return v;
                }
                slot = self.state.done.wait(slot).expect("join lock");
            }
        }
    }

    /// Cloneable spawning handle onto a [`Runtime`]'s scheduler.
    #[derive(Clone)]
    pub struct Handle {
        core: Arc<Core>,
    }

    impl Handle {
        /// Spawns a future as a task and returns a handle on its output.
        pub fn spawn<T, F>(&self, fut: F) -> JoinHandle<T>
        where
            T: Send + 'static,
            F: Future<Output = T> + Send + 'static,
        {
            let state = Arc::new(JoinState {
                slot: Mutex::new(None),
                done: Condvar::new(),
            });
            let state_in = Arc::clone(&state);
            let wrapped = async move {
                let out = fut.await;
                *state_in.slot.lock().expect("join lock") = Some(out);
                state_in.done.notify_all();
            };
            self.core.live.fetch_add(1, Ordering::AcqRel);
            let task = Arc::new(Task {
                future: Mutex::new(Some(Box::pin(wrapped))),
                state: AtomicU8::new(SCHEDULED),
                core: Arc::clone(&self.core),
            });
            self.core.enqueue(task);
            JoinHandle {
                state,
                core: Arc::clone(&self.core),
            }
        }

        /// Tasks spawned and not yet finished.
        pub fn live_tasks(&self) -> usize {
            self.core.live.load(Ordering::Acquire)
        }
    }

    /// A multi-worker executor. Dropping it shuts the workers down after
    /// their queues drain of ready work (pending tasks are dropped).
    pub struct Runtime {
        handle: Handle,
        workers: Vec<std::thread::JoinHandle<()>>,
    }

    impl Runtime {
        /// Starts `workers` worker threads (clamped to at least 1).
        pub fn new(workers: usize) -> Runtime {
            Runtime::build(workers.max(1), None)
        }

        /// Starts a runtime sized to the host's available parallelism.
        pub fn for_host() -> Runtime {
            let n = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            Runtime::new(n)
        }

        /// Deterministic mode: a single worker popping ready tasks in a
        /// seeded pseudo-random order, so one seed replays one interleaving
        /// exactly — task-ordering bugs reproduce in CI instead of
        /// flickering under thread-schedule noise.
        pub fn deterministic(seed: u64) -> Runtime {
            Runtime::build(1, Some(seed | 1))
        }

        fn build(workers: usize, det_rng: Option<u64>) -> Runtime {
            let core = Arc::new(Core {
                injector: Mutex::new(VecDeque::new()),
                locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
                seq: AtomicU64::new(0),
                sleepers: AtomicUsize::new(0),
                park: Mutex::new(()),
                parked: Condvar::new(),
                live: AtomicUsize::new(0),
                shutdown: AtomicUsize::new(0),
                gate: AtomicUsize::new(usize::from(det_rng.is_none())),
                det_rng: det_rng.map(Mutex::new),
            });
            let threads = (0..workers)
                .map(|w| {
                    let core = Arc::clone(&core);
                    std::thread::Builder::new()
                        .name(format!("minirt-worker-{w}"))
                        .spawn(move || worker_loop(&core, w))
                        .expect("spawn worker thread")
                })
                .collect();
            Runtime {
                handle: Handle { core },
                workers: threads,
            }
        }

        /// A cloneable spawning handle.
        pub fn handle(&self) -> Handle {
            self.handle.clone()
        }

        /// Spawns on this runtime (see [`Handle::spawn`]).
        pub fn spawn<T, F>(&self, fut: F) -> JoinHandle<T>
        where
            T: Send + 'static,
            F: Future<Output = T> + Send + 'static,
        {
            self.handle.spawn(fut)
        }

        /// Worker threads backing this runtime.
        pub fn workers(&self) -> usize {
            self.workers.len()
        }
    }

    impl Drop for Runtime {
        fn drop(&mut self) {
            let core = &self.handle.core;
            core.shutdown.store(1, Ordering::Release);
            // Notify under the park lock: a worker between its empty scan
            // and `wait` holds the lock, so the signal can't fall in that
            // gap and be lost.
            {
                let _g = core.park.lock().expect("park lock");
                core.parked.notify_all();
            }
            for t in self.workers.drain(..) {
                let _ = t.join();
            }
        }
    }

    /// Cooperative yield: reschedules the current task behind its queue.
    pub fn yield_now() -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Future of [`yield_now`].
    pub struct YieldNow {
        yielded: bool,
    }

    impl Future for YieldNow {
        type Output = ();

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.yielded {
                Poll::Ready(())
            } else {
                self.yielded = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }

    /// Waker that unparks a blocked thread (the `block_on` driver).
    struct ThreadWaker {
        thread: std::thread::Thread,
        notified: std::sync::atomic::AtomicBool,
    }

    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.wake_by_ref();
        }

        fn wake_by_ref(self: &Arc<Self>) {
            self.notified.store(true, Ordering::Release);
            self.thread.unpark();
        }
    }

    /// Drives a future to completion on the calling thread, parking it
    /// between polls. This is how *non-worker* threads (a coordinator
    /// control plane, a test harness) interact with async channels and
    /// timers; calling it from inside a runtime worker would block that
    /// worker for the duration and is a deadlock hazard on single-worker
    /// runtimes — don't.
    pub fn block_on<F: Future>(fut: F) -> F::Output {
        let mut fut = Box::pin(fut);
        let state = Arc::new(ThreadWaker {
            thread: std::thread::current(),
            notified: std::sync::atomic::AtomicBool::new(false),
        });
        let waker = Waker::from(Arc::clone(&state));
        let mut cx = Context::from_waker(&waker);
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => {
                    // Park until woken; the flag closes the race where the
                    // wake lands between the poll and the park.
                    while !state.notified.swap(false, Ordering::AcqRel) {
                        std::thread::park();
                    }
                }
            }
        }
    }
}

pub mod chan {
    //! Bounded async MPSC channels with parked wakers.
    //!
    //! Senders that hit a full buffer park their waker *in the channel* and
    //! resolve when the receiver frees capacity; the receiver parks its
    //! waker when the buffer is empty. [`Receiver::recv_many`] drains every
    //! buffered message in one wakeup, which is what amortizes scheduler
    //! wakeups per batch instead of per message. Parked senders are released
    //! one per freed slot — never en masse — so a 10k-producer fan-in over a
    //! small buffer schedules O(messages) wakeups, not O(producers).

    use std::collections::VecDeque;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Waker};

    struct State<T> {
        buf: VecDeque<T>,
        cap: usize,
        senders: usize,
        receiver_alive: bool,
        send_wakers: VecDeque<Waker>,
        recv_waker: Option<Waker>,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
    }

    /// Sending half; cloneable (MPSC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; single consumer.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
        /// Scratch the buffer is O(1)-swapped into under the lock, so a
        /// 10k-slot drain never holds the channel closed while it copies;
        /// reused across `recv_many` calls to keep its allocation warm.
        scratch: VecDeque<T>,
    }

    /// The receiver dropped; the value comes back.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Refill chains a buffer drain seeds among parked senders (each chain
    /// self-propagates via the send-side baton; see `RecvMany::poll`).
    /// Sized to keep every plausible worker count busy.
    const RELEASE_SEEDS: usize = 8;

    /// Creates a bounded channel with capacity `cap` (clamped to ≥ 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                buf: VecDeque::new(),
                cap: cap.max(1),
                senders: 1,
                receiver_alive: true,
                send_wakers: VecDeque::new(),
                recv_waker: None,
            }),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver {
                shared,
                scratch: VecDeque::new(),
            },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.shared.state.lock().expect("channel lock");
            s.senders -= 1;
            if s.senders == 0 {
                // Last producer gone: wake the receiver so it observes EOF.
                if let Some(w) = s.recv_waker.take() {
                    drop(s);
                    w.wake();
                }
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut s = self.shared.state.lock().expect("channel lock");
            s.receiver_alive = false;
            let wakers: Vec<Waker> = s.send_wakers.drain(..).collect();
            drop(s);
            for w in wakers {
                w.wake();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends one value, resolving when buffered (backpressure when the
        /// channel is full). Errors with the value if the receiver is gone.
        pub fn send(&self, value: T) -> Send<'_, T> {
            Send {
                shared: &self.shared,
                value: Some(value),
            }
        }
    }

    /// Future of [`Sender::send`].
    pub struct Send<'a, T> {
        shared: &'a Shared<T>,
        value: Option<T>,
    }

    impl<T> Unpin for Send<'_, T> {}

    impl<T> Future for Send<'_, T> {
        type Output = Result<(), SendError<T>>;

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut s = self.shared.state.lock().expect("channel lock");
            let value = self.value.take().expect("send polled after completion");
            if !s.receiver_alive {
                return Poll::Ready(Err(SendError(value)));
            }
            if s.buf.len() < s.cap {
                s.buf.push_back(value);
                let waker = s.recv_waker.take();
                drop(s);
                if let Some(w) = waker {
                    w.wake();
                }
                Poll::Ready(Ok(()))
            } else {
                self.value = Some(value);
                s.send_wakers.push_back(cx.waker().clone());
                Poll::Pending
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives one value; `None` once every sender is gone and the
        /// buffer is drained.
        pub fn recv(&mut self) -> Recv<'_, T> {
            Recv {
                shared: &self.shared,
            }
        }

        /// Drains **every** buffered message into `out` in one wakeup and
        /// returns how many arrived; 0 means the channel is closed and
        /// empty. This is the batch-amortized receive the dispatcher and
        /// node tasks use: one wakeup per burst, not per message.
        pub fn recv_many<'a>(&'a mut self, out: &'a mut Vec<T>) -> RecvMany<'a, T> {
            RecvMany { rx: self, out }
        }
    }

    /// Future of [`Receiver::recv`].
    pub struct Recv<'a, T> {
        shared: &'a Shared<T>,
    }

    impl<T> Future for Recv<'_, T> {
        type Output = Option<T>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut s = self.shared.state.lock().expect("channel lock");
            if let Some(v) = s.buf.pop_front() {
                let waker = s.send_wakers.pop_front();
                drop(s);
                if let Some(w) = waker {
                    w.wake();
                }
                return Poll::Ready(Some(v));
            }
            if s.senders == 0 {
                return Poll::Ready(None);
            }
            s.recv_waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    /// Future of [`Receiver::recv_many`].
    pub struct RecvMany<'a, T> {
        rx: &'a mut Receiver<T>,
        out: &'a mut Vec<T>,
    }

    impl<T> Unpin for RecvMany<'_, T> {}

    impl<T> Future for RecvMany<'_, T> {
        type Output = usize;

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let this = &mut *self;
            let wakers = {
                let mut s = this.rx.shared.state.lock().expect("channel lock");
                if s.buf.is_empty() {
                    if s.senders == 0 {
                        return Poll::Ready(0);
                    }
                    s.recv_waker = Some(cx.waker().clone());
                    return Poll::Pending;
                }
                // O(1) under the lock: swap the full buffer out against the
                // drained scratch (whose warm allocation becomes the next
                // buffer), so senders aren't shut out while a 10k-slot burst
                // is copied.
                std::mem::swap(&mut s.buf, &mut this.rx.scratch);
                // The swap freed the whole buffer, but senders park *only*
                // on a full buffer and this receiver always drains again, so
                // liveness needs just a seed of parked senders per drain —
                // enough to keep every worker fed. Waking one per freed slot
                // (let alone all of them) stampedes: each woken sender
                // pushes a whole run of items, so most of the herd re-parks
                // without sending and wakeups track *sources* instead of
                // *messages*. (A parked `Send` future must be re-polled when
                // woken — sends are never abandoned mid-park.)
                let release = RELEASE_SEEDS.min(s.send_wakers.len());
                s.send_wakers.drain(..release).collect::<Vec<Waker>>()
            };
            for w in wakers {
                w.wake();
            }
            let n = this.rx.scratch.len();
            this.out.extend(this.rx.scratch.drain(..));
            Poll::Ready(n)
        }
    }
}

pub mod timer {
    //! Deadline timer wheel: one shared timer thread wakes async sleepers
    //! and bounds synchronous waits, replacing fixed-interval sleep polling.

    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashMap};
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Condvar, Mutex};
    use std::task::{Context, Poll, Waker};
    use std::time::Instant;

    struct WheelState {
        /// Min-heap of (deadline, entry id).
        heap: BinaryHeap<Reverse<(Instant, u64)>>,
        /// Pending entries; fired or cancelled entries are removed.
        entries: HashMap<u64, Waker>,
        next_id: u64,
        shutdown: bool,
    }

    struct WheelInner {
        state: Mutex<WheelState>,
        tick: Condvar,
    }

    /// A deadline wheel driven by one timer thread (stopped and joined on
    /// drop). Share one wheel across tasks via `Arc<TimerWheel>`; the
    /// [`Sleep`] futures it hands out keep the wheel's interior alive on
    /// their own.
    pub struct TimerWheel {
        inner: Arc<WheelInner>,
        thread: Option<std::thread::JoinHandle<()>>,
    }

    impl TimerWheel {
        /// Starts the wheel and its timer thread.
        pub fn new() -> TimerWheel {
            let inner = Arc::new(WheelInner {
                state: Mutex::new(WheelState {
                    heap: BinaryHeap::new(),
                    entries: HashMap::new(),
                    next_id: 0,
                    shutdown: false,
                }),
                tick: Condvar::new(),
            });
            let inner_t = Arc::clone(&inner);
            let thread = std::thread::Builder::new()
                .name("minirt-timer".to_string())
                .spawn(move || timer_loop(&inner_t))
                .expect("spawn timer thread");
            TimerWheel {
                inner,
                thread: Some(thread),
            }
        }

        /// A future resolving at `deadline` (immediately if already past).
        pub fn sleep_until(&self, deadline: Instant) -> Sleep {
            Sleep {
                inner: Arc::clone(&self.inner),
                deadline,
                id: None,
            }
        }

        /// A future resolving after `dur`.
        pub fn sleep(&self, dur: std::time::Duration) -> Sleep {
            self.sleep_until(Instant::now() + dur)
        }
    }

    impl Default for TimerWheel {
        fn default() -> Self {
            TimerWheel::new()
        }
    }

    impl Drop for TimerWheel {
        fn drop(&mut self) {
            self.inner.state.lock().expect("timer lock").shutdown = true;
            self.inner.tick.notify_all();
            if let Some(t) = self.thread.take() {
                let _ = t.join();
            }
        }
    }

    fn timer_loop(inner: &WheelInner) {
        let mut s = inner.state.lock().expect("timer lock");
        loop {
            if s.shutdown {
                return;
            }
            let now = Instant::now();
            let mut due: Vec<Waker> = Vec::new();
            while let Some(&Reverse((deadline, id))) = s.heap.peek() {
                if deadline > now {
                    break;
                }
                s.heap.pop();
                if let Some(w) = s.entries.remove(&id) {
                    due.push(w);
                }
            }
            if !due.is_empty() {
                drop(s);
                for w in due {
                    w.wake();
                }
                s = inner.state.lock().expect("timer lock");
                continue;
            }
            s = match s.heap.peek() {
                Some(&Reverse((deadline, _))) => {
                    let wait = deadline.saturating_duration_since(now);
                    inner.tick.wait_timeout(s, wait).expect("timer lock").0
                }
                None => inner.tick.wait(s).expect("timer lock"),
            };
        }
    }

    /// Future of [`TimerWheel::sleep_until`]. Dropping it cancels the
    /// wheel entry.
    pub struct Sleep {
        inner: Arc<WheelInner>,
        deadline: Instant,
        id: Option<u64>,
    }

    impl Future for Sleep {
        type Output = ();

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if Instant::now() >= self.deadline {
                if let Some(id) = self.id.take() {
                    self.inner
                        .state
                        .lock()
                        .expect("timer lock")
                        .entries
                        .remove(&id);
                }
                return Poll::Ready(());
            }
            let mut s = self.inner.state.lock().expect("timer lock");
            match self.id {
                Some(id) => {
                    // Re-poll before the deadline: refresh the waker.
                    s.entries.insert(id, cx.waker().clone());
                }
                None => {
                    let id = s.next_id;
                    s.next_id += 1;
                    s.entries.insert(id, cx.waker().clone());
                    let deadline = self.deadline;
                    s.heap.push(Reverse((deadline, id)));
                    drop(s);
                    self.id = Some(id);
                    self.inner.tick.notify_all();
                }
            }
            Poll::Pending
        }
    }

    impl Drop for Sleep {
        fn drop(&mut self) {
            if let Some(id) = self.id.take() {
                self.inner
                    .state
                    .lock()
                    .expect("timer lock")
                    .entries
                    .remove(&id);
            }
        }
    }

    /// A synchronous min-heap of named deadlines: the blocking control
    /// plane asks for the earliest pending deadline and bounds its channel
    /// receive on it, instead of sleeping a fixed poll interval.
    pub struct DeadlineQueue<K: Ord + Clone> {
        heap: BinaryHeap<Reverse<(Instant, K)>>,
    }

    impl<K: Ord + Clone> DeadlineQueue<K> {
        /// An empty queue.
        pub fn new() -> DeadlineQueue<K> {
            DeadlineQueue {
                heap: BinaryHeap::new(),
            }
        }

        /// Arms (or re-arms) a deadline under `key`.
        pub fn arm(&mut self, key: K, at: Instant) {
            self.heap.push(Reverse((at, key)));
        }

        /// The earliest pending deadline, if any.
        pub fn next_deadline(&self) -> Option<Instant> {
            self.heap.peek().map(|Reverse((at, _))| *at)
        }

        /// Pops every deadline at or before `now`, returning its key.
        pub fn due(&mut self, now: Instant) -> Vec<K> {
            let mut fired = Vec::new();
            while let Some(Reverse((at, _))) = self.heap.peek() {
                if *at > now {
                    break;
                }
                let Reverse((_, key)) = self.heap.pop().expect("peeked entry");
                fired.push(key);
            }
            fired
        }

        /// True when no deadline is armed.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }
    }

    impl<K: Ord + Clone> Default for DeadlineQueue<K> {
        fn default() -> Self {
            DeadlineQueue::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{chan, exec, timer};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn tasks_run_and_join_on_multiple_workers() {
        let rt = exec::Runtime::new(4);
        let handles: Vec<_> = (0..64u64).map(|i| rt.spawn(async move { i * i })).collect();
        let total: u64 = handles.into_iter().map(exec::JoinHandle::join).sum();
        assert_eq!(total, (0..64u64).map(|i| i * i).sum());
    }

    #[test]
    fn channel_round_trips_with_backpressure() {
        let rt = exec::Runtime::new(2);
        let (tx, mut rx) = chan::bounded::<u64>(4);
        let producers: Vec<_> = (0..8u64)
            .map(|p| {
                let tx = tx.clone();
                rt.spawn(async move {
                    for i in 0..100u64 {
                        tx.send(p * 1000 + i).await.expect("receiver alive");
                    }
                })
            })
            .collect();
        drop(tx);
        let consumer = rt.spawn(async move {
            let mut got = Vec::new();
            let mut buf = Vec::new();
            loop {
                let n = rx.recv_many(&mut buf).await;
                if n == 0 {
                    break;
                }
                got.append(&mut buf);
            }
            got
        });
        for p in producers {
            p.join();
        }
        let mut got = consumer.join();
        got.sort_unstable();
        let mut want: Vec<u64> = (0..8u64)
            .flat_map(|p| (0..100u64).map(move |i| p * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn recv_many_drains_bursts_in_one_wakeup() {
        let rt = exec::Runtime::new(1);
        let (tx, mut rx) = chan::bounded::<u32>(64);
        let wakeups = Arc::new(AtomicUsize::new(0));
        let wakeups_c = Arc::clone(&wakeups);
        let producer = rt.spawn(async move {
            for i in 0..32u32 {
                tx.send(i).await.expect("receiver alive");
            }
        });
        producer.join();
        let consumer = rt.spawn(async move {
            let mut buf = Vec::new();
            let mut total = 0;
            loop {
                let n = rx.recv_many(&mut buf).await;
                if n == 0 {
                    break;
                }
                wakeups_c.fetch_add(1, Ordering::Relaxed);
                total += n;
                buf.clear();
            }
            total
        });
        assert_eq!(consumer.join(), 32);
        // All 32 buffered messages arrived in one drain.
        assert_eq!(wakeups.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn deterministic_runtime_replays_one_interleaving() {
        fn order(seed: u64) -> Vec<u32> {
            let rt = exec::Runtime::deterministic(seed);
            let log = Arc::new(std::sync::Mutex::new(Vec::new()));
            let handles: Vec<_> = (0..16u32)
                .map(|i| {
                    let log = Arc::clone(&log);
                    rt.spawn(async move {
                        exec::yield_now().await;
                        log.lock().expect("log lock").push(i);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            let v = log.lock().expect("log lock").clone();
            v
        }
        let a = order(7);
        let b = order(7);
        assert_eq!(a, b, "same seed, same interleaving");
        let c = order(1234);
        assert_ne!(a, c, "different seed, different interleaving");
        let mut sorted = c.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "every task still ran");
    }

    #[test]
    fn timer_wheel_wakes_sleepers_in_deadline_order() {
        let rt = exec::Runtime::new(2);
        let wheel = Arc::new(timer::TimerWheel::new());
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let start = Instant::now();
        let handles: Vec<_> = [30u64, 10, 20]
            .iter()
            .map(|&ms| {
                let wheel = Arc::clone(&wheel);
                let log = Arc::clone(&log);
                rt.spawn(async move {
                    wheel.sleep(Duration::from_millis(ms)).await;
                    log.lock().expect("log lock").push(ms);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert_eq!(*log.lock().expect("log lock"), vec![10, 20, 30]);
    }

    #[test]
    fn deadline_queue_orders_and_fires() {
        let now = Instant::now();
        let mut q: timer::DeadlineQueue<u32> = timer::DeadlineQueue::new();
        assert!(q.is_empty());
        q.arm(1, now + Duration::from_millis(50));
        q.arm(2, now + Duration::from_millis(10));
        assert_eq!(q.next_deadline(), Some(now + Duration::from_millis(10)));
        assert_eq!(q.due(now), Vec::<u32>::new());
        assert_eq!(q.due(now + Duration::from_millis(20)), vec![2]);
        assert_eq!(q.due(now + Duration::from_millis(60)), vec![1]);
        assert!(q.is_empty());
    }

    #[test]
    fn sender_errors_when_receiver_drops() {
        let rt = exec::Runtime::new(1);
        let (tx, rx) = chan::bounded::<u32>(1);
        drop(rx);
        let h = rt.spawn(async move { tx.send(9).await });
        assert!(h.join().is_err());
    }
}
