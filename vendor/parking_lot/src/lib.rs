//! Minimal vendored `parking_lot` facade: the non-poisoning `Mutex`/`RwLock`
//! API surface, implemented over `std::sync` (poison errors are unwrapped —
//! matching parking_lot's no-poisoning semantics for non-panicking users).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` does not return a poison `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock without poison `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
