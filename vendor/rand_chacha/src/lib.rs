//! Minimal vendored `rand_chacha` facade.
//!
//! [`ChaCha8Rng`] keeps the type name the workspace's generators use, backed
//! by the vendored `rand` crate's xoshiro256++ core. Output is deterministic
//! per seed (which is all the emulation relies on), though the bit stream is
//! not the genuine ChaCha8 stream.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (stand-in for the real ChaCha8).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    inner: rand::rngs::SmallRng,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        ChaCha8Rng {
            inner: rand::__rng_from_seed(seed),
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(17);
        let mut b = ChaCha8Rng::seed_from_u64(17);
        let xs: Vec<f64> = (0..32).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..32).map(|_| b.gen_range(0.0..1.0)).collect();
        assert_eq!(xs, ys);
    }
}
