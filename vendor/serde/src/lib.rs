//! Minimal vendored `serde` facade.
//!
//! The build container has no reachable crates registry, so the workspace
//! vendors the small serde surface this repo actually uses: the
//! `Serialize`/`Deserialize` traits, derive macros for plain (non-generic)
//! structs and enums, and a JSON-compatible self-describing data model
//! ([`Content`]) that `serde_json` renders. The derive output follows real
//! serde's externally-tagged conventions so the JSON shape matches what the
//! genuine crates would produce for these types.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// JSON array.
    Seq(Vec<Content>),
    /// JSON object (insertion-ordered).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The content as a map, if it is one.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The content as a sequence, if it is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the content kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// An "expected X while deserializing Y" error.
    pub fn expected(what: &str, while_de: &str) -> DeError {
        DeError(format!("expected {what} while deserializing {while_de}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into [`Content`].
pub trait Serialize {
    /// Converts to the self-describing data model.
    fn to_content(&self) -> Content;
}

/// Types that can be rebuilt from [`Content`].
pub trait Deserialize: Sized {
    /// Builds the value from the self-describing data model.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Owned-deserialization marker used by generic bounds in downstream code.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

/// Helpers used by the generated derive code.
pub mod content {
    use super::{Content, DeError};

    /// Shared null for lenient missing-field lookups.
    pub static NULL: Content = Content::Null;

    /// Looks up a struct field; absent fields read as `null` (so `Option`
    /// fields tolerate omission, as with serde defaults).
    pub fn field<'a>(map: &'a [(String, Content)], name: &str) -> &'a Content {
        map.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&NULL)
    }

    /// An externally-tagged enum: either `"Variant"` or `{"Variant": value}`.
    pub fn variant<'a>(c: &'a Content, enum_name: &str) -> Result<(&'a str, &'a Content), DeError> {
        match c {
            Content::Str(s) => Ok((s.as_str(), &NULL)),
            Content::Map(m) if m.len() == 1 => Ok((m[0].0.as_str(), &m[0].1)),
            other => Err(DeError::expected("variant tag", enum_name).context(other)),
        }
    }

    impl DeError {
        fn context(mut self, got: &Content) -> DeError {
            self.0.push_str(&format!(" (got {})", got.kind()));
            self
        }
    }
}

macro_rules! ser_int {
    ($($t:ty => $variant:ident as $as:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::$variant(*self as $as)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::expected(stringify!($t), "integer")),
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::expected(stringify!($t), "integer")),
                    other => Err(DeError::expected(stringify!($t), other.kind())),
                }
            }
        }
    )+};
}

ser_int!(
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            other => Err(DeError::expected("f64", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for Arc<str> {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for Arc<str> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        String::from_content(c).map(Arc::from)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let items = c.as_seq().ok_or_else(|| DeError::expected("array", "tuple"))?;
                Ok(($($t::from_content(
                    items.get($n).ok_or_else(|| DeError::expected("tuple element", "tuple"))?,
                )?,)+))
            }
        }
    )+};
}

ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

impl<K: Serialize + ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Serialize + ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_content()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_content(&Content::Null).unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let c = v.to_content();
        assert_eq!(Vec::<(usize, f64)>::from_content(&c).unwrap(), v);
    }
}
