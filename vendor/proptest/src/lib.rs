//! Minimal vendored `proptest` facade.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (each property runs [`test_runner::CASES`] cases with
//! a per-test deterministic seed), range/`any`/tuple/`vec`/string-pattern
//! strategies, and `prop_assert*` macros. No shrinking: a failing case's
//! inputs are reported by the assertion message itself.

pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A value generator.
    pub trait Strategy {
        /// Generated value type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;
    }

    macro_rules! int_strategies {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// `any::<T>()` marker strategy.
    pub struct Any<T>(PhantomData<T>);

    /// Full-range strategy for a primitive type.
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rand::RngCore::next_u64(rng) as $t
                }
            }
        )+};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut SmallRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies!(
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E),
    );

    /// String-literal pattern strategy: supports the `[class]{lo,hi}` regex
    /// subset (character classes of literals and `a-z` ranges with a bounded
    /// repeat count), which is what the workspace's tests use.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut SmallRng) -> String {
            let (chars, lo, hi) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
            let len = rng.gen_range(lo..=hi);
            (0..len)
                .map(|_| chars[rng.gen_range(0..chars.len())])
                .collect()
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                for c in a..=b {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match reps.split_once(',') {
            Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
            None => {
                let n = reps.trim().parse().ok()?;
                (n, n)
            }
        };
        if chars.is_empty() {
            return None;
        }
        Some((chars, lo, hi))
    }
}

pub mod collection {
    use std::ops::Range;

    use rand::rngs::SmallRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Strategy producing vectors of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)` — lengths drawn uniformly from the range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Cases per property.
    pub const CASES: u32 = 64;

    /// Deterministic per-test RNG (seeded from the test name) so failures
    /// reproduce.
    pub fn rng_for(test_name: &str) -> SmallRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SmallRng::seed_from_u64(h)
    }
}

/// Commonly used items.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// [`test_runner::CASES`] times over freshly drawn inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::rng_for(stringify!($name));
                for __case in 0..$crate::test_runner::CASES {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Property assertion (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 1u32..10, xs in collection::vec(0.0f64..1.0, 0..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(xs.len() < 5);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn string_patterns(s in "[a-c0-1 ]{2,6}") {
            prop_assert!((2..=6).contains(&s.chars().count()), "{s:?}");
            prop_assert!(s.chars().all(|c| "abc01 ".contains(c)), "{s:?}");
        }

        #[test]
        fn tuples(pair in (0usize..4, 0i64..100)) {
            prop_assert!(pair.0 < 4 && pair.1 < 100);
        }
    }
}
