//! Key-hash partitioning — the kernel behind the sharded SP runtime.
//!
//! A keyed shard operator splits one [`Batch`] into `n` disjoint sub-batches
//! by hashing the group-key columns, so independent shard pipelines can
//! process disjoint key ranges in parallel while partitioned aggregation
//! stays exact. Three call sites must agree on the key → shard mapping:
//!
//! * [`Batch::shard_by_key`] — rows, hashed straight off column storage;
//! * [`shard_of_values`] — [`StatePartial`](crate::ops::StatePartial) group
//!   entries, whose keys are already materialised `Value`s;
//! * window results — never re-sharded: a group's whole lifetime (updates,
//!   merged partials, close) happens on the shard that owns its key.
//!
//! Agreement is by construction: both paths hash the *canonical key
//! encoding* defined here (variant tag + payload per value), which is also
//! the byte encoding the group table indexes by — a dictionary-encoded
//! string hashes identically to the same string in a plain column. Dict
//! columns take a fast path: the canonical fragment of every dictionary
//! entry is hashed once per page, and rows then combine precomputed code
//! hashes instead of re-hashing string bytes per row.
//!
//! # The hash ring: shards vs nodes
//!
//! Multi-node SP deployments keep the ring of `n_shards` *virtual shards*
//! fixed and divide it into contiguous slices, one per SP node
//! ([`shards_of_node`] / [`node_of_shard`]). The key → shard mapping never
//! depends on the node count, so changing `n_nodes` only moves whole shards
//! (with their state) between nodes — partitioned aggregation stays exact by
//! construction at any node count, and a future join/leave rebalance ships
//! shard state without rehashing a single key.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use crate::batch::{Batch, Column, StrDict};
use crate::value::Value;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Appends the canonical byte encoding of one `Value` (variant tag +
/// payload). Must stay in lockstep with [`encode_col_value`]: the group
/// table's byte index and the shard router both rely on the two producing
/// identical bytes for logically equal values.
pub fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            buf.push(u8::from(*b));
        }
        Value::I64(x) => {
            buf.push(2);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::U64(x) => {
            buf.push(3);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::F64(x) => {
            buf.push(4);
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(5);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
    }
}

/// Appends the canonical byte encoding of `col[row]` without materializing a
/// `Value` (strings are borrowed straight from the column buffer).
pub fn encode_col_value(buf: &mut Vec<u8>, col: &Column, row: usize) {
    match col {
        Column::Bool(v) => {
            buf.push(1);
            buf.push(u8::from(v[row]));
        }
        Column::I64(v) => {
            buf.push(2);
            buf.extend_from_slice(&v[row].to_le_bytes());
        }
        Column::U64(v) => {
            buf.push(3);
            buf.extend_from_slice(&v[row].to_le_bytes());
        }
        Column::F64(v) => {
            buf.push(4);
            buf.extend_from_slice(&v[row].to_bits().to_le_bytes());
        }
        Column::Str { .. } | Column::Dict { .. } => {
            // Dict values encode exactly like the same string in a plain
            // column: group tables and shard routing persist across batches
            // whose dictionaries may differ.
            let s = col.str_at(row).unwrap_or("");
            buf.push(5);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        Column::Opt { valid, values } => {
            if valid[row] {
                encode_col_value(buf, values, row);
            } else {
                buf.push(0);
            }
        }
    }
}

/// FNV-1a over a canonical encoding.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Combines per-column value hashes into one row hash (order-sensitive).
#[inline]
fn combine(h: u64, col_hash: u64) -> u64 {
    (h ^ col_hash).wrapping_mul(FNV_PRIME)
}

/// Hash of one dictionary entry's canonical fragment.
fn hash_dict_entry(buf: &mut Vec<u8>, entry: &str) -> u64 {
    buf.clear();
    buf.push(5);
    buf.extend_from_slice(&(entry.len() as u32).to_le_bytes());
    buf.extend_from_slice(entry.as_bytes());
    fnv1a(buf)
}

thread_local! {
    /// Per-thread code→hash tables for *persistent* dictionaries, keyed by
    /// dict id. Codes never remap, so a table is extended incrementally as
    /// its page grows instead of being rebuilt per batch — the code-native
    /// hashing the persistent-dictionary registry buys.
    static CODE_HASH_CACHE: RefCell<HashMap<u64, Arc<Vec<u64>>>> =
        RefCell::new(HashMap::new());
}

/// Bound on distinct persistent dictionaries cached per thread; a runaway
/// id churn (e.g. tests creating streams in a loop) resets the cache rather
/// than growing without limit.
const MAX_CACHED_DICTS: usize = 1024;

/// Hashes the canonical fragment of every dictionary entry — the hash table
/// the dict fast path indexes by code. Batch-local pages (id 0) compute it
/// per page; persistent pages hit the per-dict incremental cache, hashing
/// only entries appended since the last batch.
fn dict_code_hashes(dict: &StrDict) -> Arc<Vec<u64>> {
    let compute_from = |start: usize, prefix: &[u64]| {
        let mut hashes = Vec::with_capacity(dict.len());
        hashes.extend_from_slice(prefix);
        let mut buf = Vec::with_capacity(32);
        for c in start..dict.len() {
            hashes.push(hash_dict_entry(&mut buf, dict.get(c as u32)));
        }
        hashes
    };
    if dict.id() == 0 {
        return Arc::new(compute_from(0, &[]));
    }
    CODE_HASH_CACHE.with(|cell| {
        let mut cache = cell.borrow_mut();
        if cache.len() >= MAX_CACHED_DICTS && !cache.contains_key(&dict.id()) {
            cache.clear();
        }
        let cached = cache
            .entry(dict.id())
            .or_insert_with(|| Arc::new(Vec::new()));
        if cached.len() < dict.len() {
            // Append-only pages: the cached prefix stays valid, only the
            // new tail gets hashed. (A cache longer than this snapshot just
            // means a newer snapshot was seen first — the prefix is shared.)
            *cached = Arc::new(compute_from(cached.len(), cached));
        }
        cached.clone()
    })
}

/// Per-batch hasher for one key column.
enum ColHasher<'a> {
    /// Dense dictionary column: per-code hashes precomputed from the page.
    Dict {
        codes: &'a [u32],
        hashes: Arc<Vec<u64>>,
    },
    /// Any other storage: canonical-encode the value and hash it.
    Generic(&'a Column),
}

impl<'a> ColHasher<'a> {
    fn new(col: &'a Column) -> ColHasher<'a> {
        match col {
            Column::Dict { codes, dict } => ColHasher::Dict {
                codes,
                hashes: dict_code_hashes(dict),
            },
            other => ColHasher::Generic(other),
        }
    }

    #[inline]
    fn hash_row(&self, scratch: &mut Vec<u8>, row: usize) -> u64 {
        match self {
            ColHasher::Dict { codes, hashes } => hashes[codes[row] as usize],
            ColHasher::Generic(col) => {
                scratch.clear();
                encode_col_value(scratch, col, row);
                fnv1a(scratch)
            }
        }
    }
}

/// Shard owning a group key given as materialised values — the routing used
/// for [`StatePartial`](crate::ops::StatePartial) entries and window-result
/// ownership checks. Matches [`Batch::shard_by_key`] row assignment for the
/// same key values by construction.
pub fn shard_of_values(key: &[Value], n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let mut buf = Vec::with_capacity(32);
    let mut h = FNV_OFFSET;
    for v in key {
        buf.clear();
        encode_value(&mut buf, v);
        h = combine(h, fnv1a(&buf));
    }
    (h % n as u64) as usize
}

/// The contiguous slice of the `n_shards`-wide hash ring owned by `node`
/// out of `n_nodes`. Slices partition the ring: remainders go to the first
/// `n_shards % n_nodes` nodes, so every shard is owned by exactly one node
/// and slice sizes differ by at most one.
pub fn shards_of_node(node: usize, n_shards: usize, n_nodes: usize) -> std::ops::Range<usize> {
    assert!(n_nodes >= 1, "a cluster has at least one node");
    assert!(node < n_nodes, "node {node} out of {n_nodes}");
    let q = n_shards / n_nodes;
    let r = n_shards % n_nodes;
    let start = node * q + node.min(r);
    start..start + q + usize::from(node < r)
}

/// The node owning virtual shard `shard` — the inverse of
/// [`shards_of_node`]. Total (every shard has exactly one owner for any
/// `n_nodes >= 1`) and stable in the sense that matters for exactness: the
/// key → shard mapping ([`shard_of_values`]) never changes with the node
/// count, only the shard → node placement does.
pub fn node_of_shard(shard: usize, n_shards: usize, n_nodes: usize) -> usize {
    assert!(n_nodes >= 1, "a cluster has at least one node");
    assert!(
        shard < n_shards,
        "shard {shard} outside the {n_shards}-ring"
    );
    let q = n_shards / n_nodes;
    let r = n_shards % n_nodes;
    // The first `r` nodes own `q + 1` shards each (the "fat" prefix).
    let fat = (q + 1) * r;
    if q == 0 || shard < fat {
        shard / (q + 1)
    } else {
        r + (shard - fat) / q
    }
}

/// Shard assignment of every row, without materialising the sub-batches
/// (proptests and routers that only need the mapping).
pub fn shard_assignment(batch: &Batch, keys: &[usize], n: usize) -> Vec<usize> {
    let rows = batch.len();
    if n <= 1 {
        return vec![0; rows];
    }
    let hashers: Vec<ColHasher> = keys
        .iter()
        .map(|&k| ColHasher::new(&batch.columns[k]))
        .collect();
    let mut scratch = Vec::with_capacity(32);
    (0..rows)
        .map(|row| {
            let mut h = FNV_OFFSET;
            for hasher in &hashers {
                h = combine(h, hasher.hash_row(&mut scratch, row));
            }
            (h % n as u64) as usize
        })
        .collect()
}

impl Batch {
    /// Partitions the batch into `n` sub-batches by hashing the `keys`
    /// columns, preserving input row order within each shard. Every row
    /// lands in exactly one shard; rows with equal key values always land
    /// in the same shard (across batches, and matching
    /// [`shard_of_values`] on the same values). Built on [`Batch::gather`];
    /// dictionary key columns hash via a per-page precomputed code→hash
    /// table instead of re-hashing strings per row.
    pub fn shard_by_key(&self, keys: &[usize], n: usize) -> Vec<Batch> {
        if n <= 1 {
            return vec![self.clone()];
        }
        let assignment = shard_assignment(self, keys, n);
        let mut rows_per_shard = vec![0usize; n];
        for &s in &assignment {
            rows_per_shard[s] += 1;
        }
        let mut picks: Vec<Vec<u32>> = rows_per_shard
            .iter()
            .map(|&c| Vec::with_capacity(c))
            .collect();
        for (row, &s) in assignment.iter().enumerate() {
            picks[s].push(row as u32);
        }
        picks
            .iter()
            .map(|rows| {
                if rows.len() == self.len() {
                    // Degenerate split (single-key batch): skip the gather.
                    self.clone()
                } else {
                    self.gather(rows)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::{DataType, Field, Schema, SchemaRef};
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::U64),
        ])
    }

    fn batch(rows: &[(&str, u64)]) -> Batch {
        let recs: Vec<Record> = rows
            .iter()
            .enumerate()
            .map(|(i, (k, v))| Record::new(i as i64, vec![Value::str(*k), Value::U64(*v)]))
            .collect();
        Batch::from_records(schema(), &recs).unwrap()
    }

    #[test]
    fn every_row_lands_in_exactly_one_shard() {
        let b = batch(&[("a", 1), ("b", 2), ("c", 3), ("a", 4), ("b", 5)]);
        for n in [1, 2, 3, 4, 7] {
            let shards = b.shard_by_key(&[0], n);
            assert_eq!(shards.len(), n);
            let total: usize = shards.iter().map(Batch::len).sum();
            assert_eq!(total, b.len());
            let mut rows: Vec<Record> = shards.iter().flat_map(Batch::to_records).collect();
            let mut expected = b.to_records();
            let key = |r: &Record| format!("{r:?}");
            rows.sort_by_key(key);
            expected.sort_by_key(key);
            assert_eq!(rows, expected);
        }
    }

    #[test]
    fn equal_keys_share_a_shard_across_batches() {
        let a = batch(&[("x", 1), ("y", 2), ("z", 3)]);
        let b = batch(&[("z", 9), ("x", 8)]);
        let n = 4;
        let sa = shard_assignment(&a, &[0], n);
        let sb = shard_assignment(&b, &[0], n);
        assert_eq!(sa[0], sb[1], "key x");
        assert_eq!(sa[2], sb[0], "key z");
    }

    #[test]
    fn shard_of_values_matches_row_assignment() {
        let b = batch(&[("a", 7), ("bb", 7), ("", 9), ("a", 1)]);
        let n = 5;
        let assign = shard_assignment(&b, &[0, 1], n);
        for (row, &shard) in assign.iter().enumerate() {
            let key = vec![b.columns[0].value(row), b.columns[1].value(row)];
            assert_eq!(shard_of_values(&key, n), shard);
        }
    }

    #[test]
    fn dict_and_str_keys_hash_identically() {
        let plain = batch(&[("cpu", 1), ("mem", 2), ("cpu", 3), ("io", 4)]);
        let mut dict = plain.clone();
        assert!(dict.dict_encode(16));
        for n in [2, 3, 8] {
            assert_eq!(
                shard_assignment(&plain, &[0], n),
                shard_assignment(&dict, &[0], n)
            );
        }
    }

    #[test]
    fn opt_and_null_keys_shard_consistently() {
        let s = Schema::new(vec![Field::new("k", DataType::Str)]);
        let recs = vec![
            Record::new(0, vec![Value::str("a")]),
            Record::new(1, vec![Value::Null]),
            Record::new(2, vec![Value::str("a")]),
        ];
        let b = Batch::from_records(s, &recs).unwrap();
        let n = 3;
        let assign = shard_assignment(&b, &[0], n);
        assert_eq!(assign[0], assign[2]);
        assert_eq!(shard_of_values(&[Value::Null], n), assign[1]);
        assert_eq!(shard_of_values(&[Value::str("a")], n), assign[0]);
    }

    #[test]
    fn single_shard_is_a_clone() {
        let b = batch(&[("a", 1), ("b", 2)]);
        let shards = b.shard_by_key(&[0], 1);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0], b);
    }

    #[test]
    fn empty_key_set_routes_everything_to_one_shard() {
        // No keyed operator: every row hashes to the same (empty) key.
        let b = batch(&[("a", 1), ("b", 2), ("c", 3)]);
        let shards = b.shard_by_key(&[], 4);
        let non_empty: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(non_empty.len(), 1);
        assert_eq!(shards[non_empty[0]].len(), 3);
    }

    #[test]
    fn ring_slices_partition_the_shards() {
        for n_shards in 1..=66usize {
            for n_nodes in 1..=9usize {
                let mut owner = vec![usize::MAX; n_shards];
                for node in 0..n_nodes {
                    for s in shards_of_node(node, n_shards, n_nodes) {
                        assert_eq!(owner[s], usize::MAX, "shard {s} owned twice");
                        owner[s] = node;
                    }
                }
                for (s, &node) in owner.iter().enumerate() {
                    assert_ne!(node, usize::MAX, "shard {s} unowned");
                    assert_eq!(
                        node_of_shard(s, n_shards, n_nodes),
                        node,
                        "inverse mismatch at shard {s} ({n_shards} shards, {n_nodes} nodes)"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_slices_are_contiguous_and_balanced() {
        let n_shards = 10;
        let n_nodes = 4;
        let sizes: Vec<usize> = (0..n_nodes)
            .map(|n| shards_of_node(n, n_shards, n_nodes).len())
            .collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(shards_of_node(0, n_shards, n_nodes), 0..3);
        assert_eq!(shards_of_node(3, n_shards, n_nodes), 8..10);
    }

    #[test]
    fn key_to_shard_mapping_ignores_node_count() {
        // The exactness anchor: node counts repartition shards, never keys.
        let b = batch(&[("a", 1), ("b", 2), ("c", 3)]);
        let assign = shard_assignment(&b, &[0], 8);
        for n_nodes in 1..=8 {
            let again = shard_assignment(&b, &[0], 8);
            assert_eq!(assign, again);
            for &s in &again {
                let _ = node_of_shard(s, 8, n_nodes);
            }
        }
    }

    #[test]
    fn persistent_dict_keys_hash_identically_across_growth() {
        use crate::batch::StreamDict;
        let plain = batch(&[("cpu", 1), ("mem", 2), ("cpu", 3), ("io", 4)]);
        let mut stream = StreamDict::new();
        let enc = |stream: &mut StreamDict, b: &Batch| {
            let mut out = b.clone();
            out.columns[0] = out.columns[0].dict_encode_with(stream, 64).unwrap();
            out
        };
        let persistent = enc(&mut stream, &plain);
        for n in [2, 3, 8] {
            assert_eq!(
                shard_assignment(&plain, &[0], n),
                shard_assignment(&persistent, &[0], n),
                "cached code hashes must agree with canonical hashing"
            );
        }
        // Growth: the cached table extends, codes past the old length hash
        // like their plain counterparts.
        let plain2 = batch(&[("net", 5), ("cpu", 6), ("disk", 7)]);
        let persistent2 = enc(&mut stream, &plain2);
        let (d2, _) = persistent2.columns[0].as_dict().unwrap();
        assert_eq!(d2.len(), 5, "page grew");
        for n in [2, 3, 8] {
            assert_eq!(
                shard_assignment(&plain2, &[0], n),
                shard_assignment(&persistent2, &[0], n)
            );
        }
    }

    #[test]
    fn shared_dict_pages_survive_sharding() {
        let dict = Arc::new(StrDict::from_entries(["a", "b", "c"]));
        let b = Batch {
            schema: Schema::new(vec![Field::new("k", DataType::Str)]),
            timestamps: (0..6).collect(),
            columns: vec![Column::Dict {
                codes: vec![0, 1, 2, 0, 1, 2],
                dict: dict.clone(),
            }],
        };
        let shards = b.shard_by_key(&[0], 3);
        for s in &shards {
            if let Some((d, _)) = s.columns[0].as_dict() {
                assert!(std::ptr::eq(d, dict.as_ref()), "page must be shared");
            }
        }
    }
}
