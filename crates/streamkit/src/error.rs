//! Error type shared across the crate.

use std::fmt;

/// Errors surfaced by plan construction, execution, or (de)serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A column name could not be resolved against a schema.
    UnknownColumn(String),
    /// A column index was out of bounds for the schema.
    ColumnIndex {
        /// The offending index.
        index: usize,
        /// Schema width it was checked against.
        width: usize,
    },
    /// An expression or operator was applied to an incompatible type.
    TypeMismatch {
        /// Type the operation requires.
        expected: &'static str,
        /// Type it was given.
        got: &'static str,
    },
    /// A logical plan violated a structural requirement.
    InvalidPlan(String),
    /// Wire decoding failed.
    Decode(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            Error::ColumnIndex { index, width } => {
                write!(
                    f,
                    "column index {index} out of bounds for schema of width {width}"
                )
            }
            Error::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            Error::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            Error::Decode(msg) => write!(f, "decode error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
