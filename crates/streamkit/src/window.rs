//! Tumbling (fixed-size, non-overlapping) event-time windows.

use serde::{Deserialize, Serialize};

use crate::time::Ts;

/// A tumbling window assigner. Windows are `[k·size, (k+1)·size)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TumblingWindow {
    /// Window length in µs. Must be positive.
    pub size: Ts,
}

impl TumblingWindow {
    /// Creates a window assigner of `size` µs.
    pub fn new(size: Ts) -> TumblingWindow {
        assert!(size > 0, "window size must be positive");
        TumblingWindow { size }
    }

    /// The start of the window containing `ts` (floor division, correct for
    /// negative timestamps too).
    #[inline]
    pub fn start_of(&self, ts: Ts) -> Ts {
        ts.div_euclid(self.size) * self.size
    }

    /// The exclusive end of the window containing `ts`.
    #[inline]
    pub fn end_of(&self, ts: Ts) -> Ts {
        self.start_of(ts) + self.size
    }

    /// Whether a window starting at `window_start` is closed by watermark
    /// `wm` (i.e. no more records with `ts < window end` can arrive).
    #[inline]
    pub fn is_closed(&self, window_start: Ts, wm: Ts) -> bool {
        wm >= window_start + self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn assigns_half_open_windows() {
        let w = TumblingWindow::new(secs(10.0));
        assert_eq!(w.start_of(0), 0);
        assert_eq!(w.start_of(secs(9.999_999)), 0);
        assert_eq!(w.start_of(secs(10.0)), secs(10.0));
        assert_eq!(w.end_of(secs(10.0)), secs(20.0));
    }

    #[test]
    fn negative_timestamps_floor() {
        let w = TumblingWindow::new(10);
        assert_eq!(w.start_of(-1), -10);
        assert_eq!(w.start_of(-10), -10);
        assert_eq!(w.start_of(-11), -20);
    }

    #[test]
    fn closure_requires_watermark_past_end() {
        let w = TumblingWindow::new(10);
        assert!(!w.is_closed(0, 9));
        assert!(w.is_closed(0, 10));
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_size_panics() {
        TumblingWindow::new(0);
    }
}
