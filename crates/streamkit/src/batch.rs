//! Columnar batches — the unit of dataflow.
//!
//! Since the batch-first operator redesign, `Batch` is not just the wire
//! format: every operator consumes and produces batches, sources generate
//! them directly, and the engines queue them end-to-end. This module is the
//! in-repo stand-in for the Arrow/Kryo layer the paper's implementation
//! relied on, and [`layout`] is the single source of truth for wire-size
//! accounting (row-oriented [`Record::wire_size`] delegates to it too).

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use crate::error::{Error, Result};
use crate::record::Record;
use crate::schema::{DataType, Schema, SchemaRef};
use crate::time::Ts;
use crate::value::Value;

/// The canonical wire layout: every byte the network accounting charges is
/// derived from these rules, whether the caller holds a `Record` or a
/// [`Batch`].
pub mod layout {
    use super::{DataType, Schema, StrDict, Value};

    /// Length prefix carried by every string value on the wire.
    pub const STR_LEN_PREFIX_BYTES: usize = 2;

    /// Per-row bytes of a dictionary-encoded string column: each row ships a
    /// fixed-width code into the column's dictionary page.
    pub const DICT_CODE_BYTES: usize = 4;

    /// Header of a dictionary page (entry count).
    pub const DICT_PAGE_HEADER_BYTES: usize = 4;

    /// Encoded size of a dictionary page: header plus every distinct entry
    /// once, each with the usual string length prefix. The page is charged
    /// once per encoded batch, not per row — that is what makes dictionary
    /// columns cheaper than plain strings for low-cardinality fields.
    pub fn dict_page_bytes(dict: &StrDict) -> usize {
        DICT_PAGE_HEADER_BYTES + dict.iter().map(|s| str_bytes(s.len())).sum::<usize>()
    }

    /// Total wire bytes of a dictionary column carrying `rows` codes over
    /// `dict`. An empty column ships nothing (no page either).
    pub fn dict_bytes(dict: &StrDict, rows: usize) -> usize {
        if rows == 0 {
            0
        } else {
            dict_page_bytes(dict) + DICT_CODE_BYTES * rows
        }
    }

    /// Header of a dictionary delta page (dictionary id, base version,
    /// entry count, content checksum).
    pub const DICT_DELTA_HEADER_BYTES: usize = 8 + 4 + 4 + 8;

    /// Encoded size of the delta a receiver at version `base` is missing:
    /// the delta header plus every entry of `dict` from `base` onward, each
    /// with the usual string length prefix.
    pub fn dict_delta_bytes(dict: &StrDict, base: u32) -> usize {
        DICT_DELTA_HEADER_BYTES
            + (base as usize..dict.len())
                .map(|c| str_bytes(dict.get(c as u32).len()))
                .sum::<usize>()
    }

    /// Total wire bytes of a dictionary column carrying `rows` codes over
    /// `dict` toward a receiver that already mirrors the first `seen`
    /// entries. An empty column ships nothing; an unversioned (batch-local)
    /// dictionary re-ships its full page exactly as [`dict_bytes`].
    pub fn dict_bytes_versioned(dict: &StrDict, rows: usize, seen: u32) -> usize {
        if rows == 0 {
            0
        } else if dict.id() == 0 {
            dict_bytes(dict, rows)
        } else {
            dict_delta_bytes(dict, seen.min(dict.len() as u32)) + DICT_CODE_BYTES * rows
        }
    }

    /// Per-row envelope: the 8-byte event timestamp plus the schema's
    /// serialisation overhead.
    pub fn row_envelope(schema: &Schema) -> usize {
        Schema::TS_WIRE_BYTES + schema.record_overhead()
    }

    /// Encoded size of one string payload of `len` bytes.
    pub fn str_bytes(len: usize) -> usize {
        STR_LEN_PREFIX_BYTES + len
    }

    /// Encoded size of one value under a column type. `Null` occupies the
    /// column's default footprint (an empty string / a zeroed fixed slot).
    pub fn value_bytes(dtype: DataType, value: &Value) -> usize {
        match dtype {
            DataType::Str => str_bytes(value.as_str().map_or(0, str::len)),
            other => other.fixed_width().unwrap_or(0),
        }
    }
}

/// An ordered dictionary of distinct strings backing a [`Column::Dict`].
///
/// Entries are stored like a small string column (one more offset than
/// entries, UTF-8 bytes in `data`); codes are indexes into it. The
/// dictionary is immutable once a column is built — slicing and selecting
/// share it.
#[derive(Debug, Clone, Default)]
pub struct StrDict {
    offsets: Vec<u32>,
    data: Vec<u8>,
    /// Persistent-stream identity; `0` means batch-local (codes are only
    /// meaningful within the batch that carries the page). Non-zero ids are
    /// handed out by [`StreamDict`], whose snapshots share one id across
    /// batches and epochs.
    id: u64,
}

impl PartialEq for StrDict {
    /// Content equality only: the persistent identity is a routing hint for
    /// caches and delta shipping, not part of the logical value — a wire
    /// round trip that re-registers the page under a receiver-local id still
    /// compares equal.
    fn eq(&self, other: &StrDict) -> bool {
        self.offsets == other.offsets && self.data == other.data
    }
}

impl StrDict {
    /// An empty dictionary.
    pub fn new() -> StrDict {
        StrDict {
            offsets: vec![0],
            data: Vec::new(),
            id: 0,
        }
    }

    /// Builds a dictionary from entries in order (entries need not be
    /// distinct, but codes always refer to positions).
    pub fn from_entries<S: AsRef<str>>(entries: impl IntoIterator<Item = S>) -> StrDict {
        let mut d = StrDict::new();
        for e in entries {
            d.push(e.as_ref());
        }
        d
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends an entry, returning its code.
    pub fn push(&mut self, s: &str) -> u32 {
        let code = self.len() as u32;
        self.data.extend_from_slice(s.as_bytes());
        self.offsets.push(self.data.len() as u32);
        code
    }

    /// The entry for `code`.
    pub fn get(&self, code: u32) -> &str {
        let lo = self.offsets[code as usize] as usize;
        let hi = self.offsets[code as usize + 1] as usize;
        let s = std::str::from_utf8(&self.data[lo..hi]);
        debug_assert!(s.is_ok(), "StrDict invariant violated: non-UTF-8 entry");
        s.unwrap_or("")
    }

    /// Iterates the entries in code order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(|c| self.get(c as u32))
    }

    /// The persistent-stream identity (`0` = batch-local).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The delta a receiver at version `base` needs to mirror this page
    /// (clamped to the page's length; empty when already synced).
    pub fn delta_since(&self, base: u32) -> DictDelta {
        let base = base.min(self.len() as u32);
        DictDelta {
            dict_id: self.id,
            base,
            entries: (base..self.len() as u32)
                .map(|c| self.get(c).to_string())
                .collect(),
        }
    }
}

/// Process-wide persistent-dictionary identity allocator (`0` is reserved
/// for batch-local pages).
static NEXT_DICT_ID: AtomicU64 = AtomicU64::new(1);

/// FNV-1a over a byte stream — the delta checksum primitive (same constants
/// as the shard hasher, duplicated to keep `layout`/delta self-contained).
fn fnv1a_accum(mut h: u64, bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The appended tail of a persistent dictionary since a receiver's last
/// synced version — what a delta page ships instead of the full page.
///
/// `entries` cover codes `base .. base + entries.len()` of dictionary
/// `dict_id`; a `base` of 0 is the first-contact full page.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DictDelta {
    /// Identity of the dictionary stream the delta extends.
    pub dict_id: u64,
    /// Receiver version this delta starts from (entry count already held).
    pub base: u32,
    /// Newly appended entries, in code order.
    pub entries: Vec<String>,
}

impl DictDelta {
    /// Layout-derived wire size of the delta page (header + entries).
    pub fn wire_bytes(&self) -> usize {
        layout::DICT_DELTA_HEADER_BYTES
            + self
                .entries
                .iter()
                .map(|e| layout::str_bytes(e.len()))
                .sum::<usize>()
    }

    /// Content checksum carried on the wire so a corrupted delta decodes to
    /// a typed error instead of silently poisoning the receiver's mirror.
    pub fn checksum(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        let mut h = fnv1a_accum(FNV_OFFSET, &self.dict_id.to_le_bytes());
        h = fnv1a_accum(h, &self.base.to_le_bytes());
        for e in &self.entries {
            h = fnv1a_accum(h, &(e.len() as u32).to_le_bytes());
            h = fnv1a_accum(h, e.as_bytes());
        }
        h
    }
}

/// A persistent per-stream dictionary: append-only interning whose codes
/// stay valid across batches *and* epochs.
///
/// Each `StreamDict` owns a process-unique non-zero id; [`snapshot`]
/// publishes an `Arc<StrDict>` carrying that id, re-allocated only when the
/// dictionary has grown since the last snapshot, so consecutive batches over
/// an unchanged dictionary share one page pointer. The version is simply the
/// entry count — append-only means it is monotone and never remaps a code.
///
/// [`snapshot`]: StreamDict::snapshot
#[derive(Debug)]
pub struct StreamDict {
    dict: StrDict,
    lookup: HashMap<Box<str>, u32>,
    snapshot: Arc<StrDict>,
}

impl Default for StreamDict {
    fn default() -> StreamDict {
        StreamDict::new()
    }
}

impl Clone for StreamDict {
    /// Forking a stream dictionary yields a *new* stream: same entries and
    /// codes, fresh persistent id. Two writers sharing an id could diverge
    /// and poison every id-keyed cache and receiver mirror, so identity is
    /// never cloned.
    fn clone(&self) -> StreamDict {
        let mut dict = self.dict.clone();
        dict.id = NEXT_DICT_ID.fetch_add(1, Ordering::Relaxed);
        StreamDict {
            snapshot: Arc::new(dict.clone()),
            dict,
            lookup: self.lookup.clone(),
        }
    }
}

impl StreamDict {
    /// A fresh empty stream dictionary with a new process-unique id.
    pub fn new() -> StreamDict {
        let mut dict = StrDict::new();
        dict.id = NEXT_DICT_ID.fetch_add(1, Ordering::Relaxed);
        StreamDict {
            snapshot: Arc::new(dict.clone()),
            dict,
            lookup: HashMap::new(),
        }
    }

    /// The persistent identity shared by every snapshot.
    pub fn id(&self) -> u64 {
        self.dict.id
    }

    /// Current version = entry count (append-only, so monotone).
    pub fn version(&self) -> u32 {
        self.dict.len() as u32
    }

    /// Number of interned entries.
    pub fn len(&self) -> usize {
        self.dict.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.dict.is_empty()
    }

    /// The entry for `code`.
    pub fn get(&self, code: u32) -> &str {
        self.dict.get(code)
    }

    /// The code already assigned to `s`, if any.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.lookup.get(s).copied()
    }

    /// Interns `s`, returning its stable code (existing entries keep their
    /// code forever; novel entries append).
    pub fn intern(&mut self, s: &str) -> u32 {
        match self.lookup.get(s) {
            Some(&c) => c,
            None => {
                let c = self.dict.push(s);
                self.lookup.insert(Box::from(s), c);
                c
            }
        }
    }

    /// The current snapshot page for building [`Column::Dict`] columns.
    /// Republished (one `StrDict` clone) only when the dictionary grew since
    /// the previous snapshot; otherwise the same `Arc` is returned.
    pub fn snapshot(&mut self) -> Arc<StrDict> {
        if self.snapshot.len() != self.dict.len() {
            self.snapshot = Arc::new(self.dict.clone());
        }
        self.snapshot.clone()
    }

    /// The delta a receiver at version `base` needs to catch up to the
    /// current version (empty `entries` when already synced).
    pub fn delta_since(&self, base: u32) -> DictDelta {
        self.dict.delta_since(base)
    }

    /// Extends a receiver-side mirror with `delta`. The delta must start
    /// exactly at the mirror's current version — out-of-order or replayed
    /// deltas are rejected (append-only means there is exactly one valid
    /// next delta), keeping a desynced mirror an error instead of silent
    /// code corruption.
    pub fn apply_delta(&mut self, delta: &DictDelta) -> Result<()> {
        if delta.base != self.version() {
            return Err(Error::Decode(format!(
                "dict delta out of order: mirror at version {}, delta base {}",
                self.version(),
                delta.base
            )));
        }
        for e in &delta.entries {
            let c = self.dict.push(e);
            self.lookup.entry(Box::from(e.as_str())).or_insert(c);
        }
        Ok(())
    }
}

/// Receiver-side mirrors of a peer's persistent dictionaries, keyed by the
/// *sender's* dict id (ids are only unique within the sending process, so
/// each link/peer gets its own registry).
///
/// Mirrors are themselves [`StreamDict`]s: their snapshots carry a
/// receiver-local persistent id that stays stable across frames, so the
/// code-native fast paths (shard hash caches, group caches) work on the
/// receiving side too.
#[derive(Debug, Default)]
pub struct DictRegistry {
    mirrors: HashMap<u64, StreamDict>,
}

impl DictRegistry {
    /// An empty registry (a link before first contact).
    pub fn new() -> DictRegistry {
        DictRegistry::default()
    }

    /// Applies `delta` to the mirror for its dict id (created at version 0
    /// on first contact — a `base` of 0 is the full-page handshake) and
    /// returns the caught-up snapshot page.
    pub fn apply(&mut self, delta: &DictDelta) -> Result<Arc<StrDict>> {
        let mirror = self.mirrors.entry(delta.dict_id).or_default();
        mirror.apply_delta(delta)?;
        Ok(mirror.snapshot())
    }

    /// The mirrored version of `dict_id` (0 when never seen).
    pub fn version_of(&self, dict_id: u64) -> u32 {
        self.mirrors.get(&dict_id).map_or(0, StreamDict::version)
    }

    /// Forgets every mirror — the receiver-side reset after a recovery or
    /// reassignment, forcing senders to re-handshake with full pages.
    pub fn clear(&mut self) {
        self.mirrors.clear();
    }
}

/// Incremental builder for a dictionary-encoded string column: interns each
/// appended string, so repeated values cost one code.
pub struct DictBuilder {
    dict: StrDict,
    lookup: HashMap<Box<str>, u32>,
    codes: Vec<u32>,
    /// Validity, allocated lazily on the first `push_null`.
    nulls: Option<Vec<bool>>,
}

impl DictBuilder {
    /// Creates a builder, reserving `capacity` rows.
    pub fn new(capacity: usize) -> DictBuilder {
        DictBuilder {
            dict: StrDict::new(),
            lookup: HashMap::new(),
            codes: Vec::with_capacity(capacity),
            nulls: None,
        }
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Interns `s` and appends its code.
    pub fn push(&mut self, s: &str) {
        let code = match self.lookup.get(s) {
            Some(&c) => c,
            None => {
                let c = self.dict.push(s);
                self.lookup.insert(Box::from(s), c);
                c
            }
        };
        self.codes.push(code);
        if let Some(nulls) = &mut self.nulls {
            nulls.push(true);
        }
    }

    /// Appends a `Null` row (code 0 filler behind a validity mask; the
    /// filler points at entry 0, which exists once any row was pushed — an
    /// all-null column keeps an empty dictionary and never reads it).
    pub fn push_null(&mut self) {
        if self.nulls.is_none() {
            self.nulls = Some(vec![true; self.codes.len()]);
        }
        self.codes.push(0);
        self.nulls.as_mut().expect("allocated above").push(false);
    }

    /// Finishes the column ([`Column::Opt`]-wrapped when nulls were pushed).
    pub fn finish(self) -> Column {
        let dense = Column::Dict {
            codes: self.codes,
            dict: Arc::new(self.dict),
        };
        match self.nulls {
            Some(valid) => Column::Opt {
                valid,
                values: Box::new(dense),
            },
            None => dense,
        }
    }
}

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Booleans.
    Bool(Vec<bool>),
    /// Signed 64-bit (also backs I32 columns).
    I64(Vec<i64>),
    /// Unsigned 64-bit (also backs U32 columns).
    U64(Vec<u64>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// Strings: `offsets.len() == rows + 1`, UTF-8 bytes in `data`.
    ///
    /// Invariant: `data` is valid UTF-8 and every offset lands on a char
    /// boundary. Builder paths ([`ColumnBuilder`], wire decode) enforce this
    /// with debug assertions; [`Column::str_at`] maps a violated invariant
    /// to `None` (reads as null) in release builds rather than panicking.
    Str {
        /// Row boundaries into `data` (`rows + 1` entries).
        offsets: Vec<u32>,
        /// Concatenated UTF-8 string bytes.
        data: Bytes,
    },
    /// Dictionary-encoded strings: `codes[row]` indexes into `dict`. The
    /// physical fast path for low-cardinality string fields (tenant names,
    /// stat names): grouping and predicate kernels work on the codes, and
    /// the wire layout ships the dictionary page once per batch.
    Dict {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// Shared dictionary page (shared across slices/selections).
        dict: Arc<StrDict>,
    },
    /// A column with missing values: `values` stores type-default fillers at
    /// invalid rows (outer-join misses, empty aggregates).
    Opt {
        /// Per-row validity; `false` reads as [`Value::Null`].
        valid: Vec<bool>,
        /// The dense backing column.
        values: Box<Column>,
    },
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::U64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Str { offsets, .. } => offsets.len().saturating_sub(1),
            Column::Dict { codes, .. } => codes.len(),
            Column::Opt { valid, .. } => valid.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `row`.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Bool(v) => Value::Bool(v[row]),
            Column::I64(v) => Value::I64(v[row]),
            Column::U64(v) => Value::U64(v[row]),
            Column::F64(v) => Value::F64(v[row]),
            Column::Str { .. } | Column::Dict { .. } => Value::str(self.str_at(row).unwrap_or("")),
            Column::Opt { valid, values } => {
                if valid[row] {
                    values.value(row)
                } else {
                    Value::Null
                }
            }
        }
    }

    /// Numeric view of the value at `row` (`None` for strings and nulls);
    /// the columnar fast path behind aggregate updates.
    pub fn f64_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::Bool(v) => Some(if v[row] { 1.0 } else { 0.0 }),
            Column::I64(v) => Some(v[row] as f64),
            Column::U64(v) => Some(v[row] as f64),
            Column::F64(v) => Some(v[row]),
            Column::Str { .. } | Column::Dict { .. } => None,
            Column::Opt { valid, values } => {
                if valid[row] {
                    values.f64_at(row)
                } else {
                    None
                }
            }
        }
    }

    /// Borrowed string at `row` (`None` for non-string columns and nulls).
    pub fn str_at(&self, row: usize) -> Option<&str> {
        match self {
            Column::Str { offsets, data } => {
                let lo = offsets[row] as usize;
                let hi = offsets[row + 1] as usize;
                let s = std::str::from_utf8(&data[lo..hi]);
                debug_assert!(
                    s.is_ok(),
                    "Column::Str invariant violated: non-UTF-8 payload"
                );
                s.ok()
            }
            Column::Dict { codes, dict } => Some(dict.get(codes[row])),
            Column::Opt { valid, values } => {
                if valid[row] {
                    values.str_at(row)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Copies the rows in `range` into a new column.
    pub fn slice(&self, range: Range<usize>) -> Column {
        match self {
            Column::Bool(v) => Column::Bool(v[range].to_vec()),
            Column::I64(v) => Column::I64(v[range].to_vec()),
            Column::U64(v) => Column::U64(v[range].to_vec()),
            Column::F64(v) => Column::F64(v[range].to_vec()),
            Column::Str { offsets, data } => {
                let base = offsets[range.start];
                let new_offsets: Vec<u32> = offsets[range.start..=range.end]
                    .iter()
                    .map(|o| o - base)
                    .collect();
                let lo = offsets[range.start] as usize;
                let hi = offsets[range.end] as usize;
                Column::Str {
                    offsets: new_offsets,
                    data: data.slice(lo..hi),
                }
            }
            Column::Dict { codes, dict } => Column::Dict {
                codes: codes[range].to_vec(),
                dict: dict.clone(),
            },
            Column::Opt { valid, values } => Column::Opt {
                valid: valid[range.clone()].to_vec(),
                values: Box::new(values.slice(range)),
            },
        }
    }

    /// Gathers the rows where `mask` is true into a new column.
    /// `mask.len()` must equal the column length.
    pub fn select(&self, mask: &[bool]) -> Column {
        debug_assert_eq!(mask.len(), self.len());
        let gather = |keep: &[bool]| keep.iter().filter(|&&k| k).count();
        match self {
            Column::Bool(v) => Column::Bool(filter_by(v, mask)),
            Column::I64(v) => Column::I64(filter_by(v, mask)),
            Column::U64(v) => Column::U64(filter_by(v, mask)),
            Column::F64(v) => Column::F64(filter_by(v, mask)),
            Column::Str { offsets, data } => {
                let kept = gather(mask);
                let mut new_offsets = Vec::with_capacity(kept + 1);
                new_offsets.push(0u32);
                let total: usize = mask
                    .iter()
                    .enumerate()
                    .filter(|(_, &k)| k)
                    .map(|(i, _)| (offsets[i + 1] - offsets[i]) as usize)
                    .sum();
                let mut new_data = Vec::with_capacity(total);
                for (i, &keep) in mask.iter().enumerate() {
                    if keep {
                        let lo = offsets[i] as usize;
                        let hi = offsets[i + 1] as usize;
                        new_data.extend_from_slice(&data[lo..hi]);
                        new_offsets.push(new_data.len() as u32);
                    }
                }
                Column::Str {
                    offsets: new_offsets,
                    data: Bytes::from(new_data),
                }
            }
            Column::Dict { codes, dict } => Column::Dict {
                codes: filter_by(codes, mask),
                dict: dict.clone(),
            },
            Column::Opt { valid, values } => Column::Opt {
                valid: filter_by(valid, mask),
                values: Box::new(values.select(mask)),
            },
        }
    }

    /// Gathers the listed rows (in order, duplicates allowed) into a new
    /// column — the take-kernel behind keyed sharding and index joins.
    pub fn gather(&self, rows: &[u32]) -> Column {
        let take = |n: usize| {
            debug_assert!(rows.iter().all(|&r| (r as usize) < n));
        };
        match self {
            Column::Bool(v) => {
                take(v.len());
                Column::Bool(rows.iter().map(|&r| v[r as usize]).collect())
            }
            Column::I64(v) => {
                take(v.len());
                Column::I64(rows.iter().map(|&r| v[r as usize]).collect())
            }
            Column::U64(v) => {
                take(v.len());
                Column::U64(rows.iter().map(|&r| v[r as usize]).collect())
            }
            Column::F64(v) => {
                take(v.len());
                Column::F64(rows.iter().map(|&r| v[r as usize]).collect())
            }
            Column::Str { offsets, data } => {
                take(offsets.len().saturating_sub(1));
                let total: usize = rows
                    .iter()
                    .map(|&r| (offsets[r as usize + 1] - offsets[r as usize]) as usize)
                    .sum();
                let mut new_offsets = Vec::with_capacity(rows.len() + 1);
                new_offsets.push(0u32);
                let mut new_data = Vec::with_capacity(total);
                for &r in rows {
                    let lo = offsets[r as usize] as usize;
                    let hi = offsets[r as usize + 1] as usize;
                    new_data.extend_from_slice(&data[lo..hi]);
                    new_offsets.push(new_data.len() as u32);
                }
                Column::Str {
                    offsets: new_offsets,
                    data: Bytes::from(new_data),
                }
            }
            Column::Dict { codes, dict } => {
                take(codes.len());
                Column::Dict {
                    codes: rows.iter().map(|&r| codes[r as usize]).collect(),
                    dict: dict.clone(),
                }
            }
            Column::Opt { valid, values } => {
                take(valid.len());
                Column::Opt {
                    valid: rows.iter().map(|&r| valid[r as usize]).collect(),
                    values: Box::new(values.gather(rows)),
                }
            }
        }
    }

    /// Dictionary-encodes a string column when its cardinality stays within
    /// `max_cardinality`. Returns `None` for non-string columns, for string
    /// columns that exceed the bound (where a dictionary would not pay for
    /// itself), for values longer than the wire format's u16 length prefix
    /// can carry, and for columns that are already dictionary-encoded.
    /// `Opt`-wrapped string columns keep their validity mask.
    pub fn dict_encode(&self, max_cardinality: usize) -> Option<Column> {
        // The wire encodes each dictionary entry behind a u16 length; an
        // oversized value must stay in a plain column rather than truncate.
        let fits = |s: &str| s.len() <= u16::MAX as usize;
        match self {
            Column::Str { .. } => {
                let rows = self.len();
                let mut b = DictBuilder::new(rows);
                for row in 0..rows {
                    let s = self.str_at(row).unwrap_or("");
                    if !fits(s) {
                        return None;
                    }
                    b.push(s);
                    if b.dict.len() > max_cardinality {
                        return None;
                    }
                }
                Some(b.finish())
            }
            Column::Opt { valid, values } => {
                if !matches!(values.as_ref(), Column::Str { .. }) {
                    return None;
                }
                let mut b = DictBuilder::new(valid.len());
                for (row, &ok) in valid.iter().enumerate() {
                    if ok {
                        let s = values.str_at(row).unwrap_or("");
                        if !fits(s) {
                            return None;
                        }
                        b.push(s);
                    } else {
                        b.push_null();
                    }
                    if b.dict.len() > max_cardinality {
                        return None;
                    }
                }
                Some(b.finish())
            }
            _ => None,
        }
    }

    /// Materialises a dictionary column back into a plain string column
    /// (`Opt` wrappers are preserved; null rows get the empty-string filler
    /// without reading the dictionary — an all-null column's dictionary is
    /// empty and its code-0 fillers point at nothing); non-dictionary
    /// columns are cloned.
    pub fn dict_decode(&self) -> Column {
        fn decode(codes: &[u32], dict: &StrDict, valid: Option<&[bool]>) -> Column {
            let mut offsets = Vec::with_capacity(codes.len() + 1);
            offsets.push(0u32);
            let mut data = Vec::new();
            for (row, &c) in codes.iter().enumerate() {
                if valid.is_none_or(|v| v[row]) {
                    data.extend_from_slice(dict.get(c).as_bytes());
                }
                offsets.push(data.len() as u32);
            }
            Column::Str {
                offsets,
                data: Bytes::from(data),
            }
        }
        match self {
            Column::Dict { codes, dict } => decode(codes, dict, None),
            Column::Opt { valid, values } => Column::Opt {
                valid: valid.clone(),
                values: Box::new(match values.as_ref() {
                    Column::Dict { codes, dict } => decode(codes, dict, Some(valid)),
                    other => other.dict_decode(),
                }),
            },
            other => other.clone(),
        }
    }

    /// Dictionary-encodes a string column against a persistent
    /// [`StreamDict`], so the resulting codes are stable across batches and
    /// epochs. Returns `None` under the same conditions as
    /// [`Column::dict_encode`], except the cardinality bound applies to the
    /// stream's *cumulative* cardinality (entries interned before a refusal
    /// stay in the stream — append-only dictionaries never un-intern).
    pub fn dict_encode_with(
        &self,
        stream: &mut StreamDict,
        max_cardinality: usize,
    ) -> Option<Column> {
        let fits = |s: &str| s.len() <= u16::MAX as usize;
        let (valid, values): (Option<&[bool]>, &Column) = match self {
            Column::Str { .. } => (None, self),
            Column::Opt { valid, values } if matches!(values.as_ref(), Column::Str { .. }) => {
                (Some(valid), values)
            }
            _ => return None,
        };
        let rows = self.len();
        let mut codes = Vec::with_capacity(rows);
        for row in 0..rows {
            if valid.is_some_and(|v| !v[row]) {
                // Null rows carry the code-0 filler behind the validity
                // mask, exactly as DictBuilder::push_null.
                codes.push(0);
                continue;
            }
            let s = values.str_at(row).unwrap_or("");
            if !fits(s) {
                return None;
            }
            codes.push(stream.intern(s));
            if stream.len() > max_cardinality {
                return None;
            }
        }
        let dense = Column::Dict {
            codes,
            dict: stream.snapshot(),
        };
        Some(match valid {
            Some(valid) => Column::Opt {
                valid: valid.to_vec(),
                values: Box::new(dense),
            },
            None => dense,
        })
    }

    /// The dictionary and codes when this is a dense dictionary column.
    pub fn as_dict(&self) -> Option<(&StrDict, &[u32])> {
        match self {
            Column::Dict { codes, dict } => Some((dict, codes)),
            _ => None,
        }
    }

    /// Wire bytes of the column payload under its schema type (excluding the
    /// per-row envelope, which the batch accounts once per row).
    pub fn wire_bytes(&self, dtype: DataType) -> usize {
        match self {
            Column::Str { offsets, data } => {
                layout::STR_LEN_PREFIX_BYTES * offsets.len().saturating_sub(1) + data.len()
            }
            Column::Dict { codes, dict } => layout::dict_bytes(dict, codes.len()),
            Column::Opt { values, .. } => values.wire_bytes(dtype),
            col => dtype.fixed_width().unwrap_or(0) * col.len(),
        }
    }

    /// Like [`Column::wire_bytes`], but persistent dictionary columns charge
    /// only the delta past the link's last-shipped version (recorded in
    /// `seen`, which this call advances). Batch-local pages (`id == 0`)
    /// charge the full page per batch, as before.
    pub fn wire_bytes_versioned(&self, dtype: DataType, seen: &mut DictVersions) -> usize {
        match self {
            Column::Dict { codes, dict } if dict.id() != 0 && !codes.is_empty() => {
                let sent = seen.entry(dict.id()).or_insert(0);
                let bytes = layout::dict_bytes_versioned(dict, codes.len(), *sent);
                *sent = (*sent).max(dict.len() as u32);
                bytes
            }
            Column::Opt { values, .. } => values.wire_bytes_versioned(dtype, seen),
            other => other.wire_bytes(dtype),
        }
    }
}

/// Per-link shipped dictionary versions (dict id → entry count already on
/// the receiver) — the sender-side state behind delta-only wire accounting
/// and encoding. Reset it (or drop entries) to force a full page on the next
/// ship, e.g. after a reconnect or shard reassignment.
pub type DictVersions = HashMap<u64, u32>;

fn filter_by<T: Copy>(values: &[T], mask: &[bool]) -> Vec<T> {
    values
        .iter()
        .zip(mask)
        .filter(|(_, &k)| k)
        .map(|(v, _)| *v)
        .collect()
}

/// A batch of records in columnar form: timestamps + one column per field.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Schema describing `columns`.
    pub schema: SchemaRef,
    /// Event timestamps, one per row.
    pub timestamps: Vec<Ts>,
    /// Columns, positionally matching the schema.
    pub columns: Vec<Column>,
}

impl Batch {
    /// An empty batch of `schema`.
    pub fn empty(schema: SchemaRef) -> Batch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype, 0).finish())
            .collect();
        Batch {
            schema,
            timestamps: Vec::new(),
            columns,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Builds a columnar batch from row-oriented records.
    pub fn from_records(schema: SchemaRef, records: &[Record]) -> Result<Batch> {
        let mut b = BatchBuilder::new(schema, records.len());
        for rec in records {
            b.push_record(rec)?;
        }
        Ok(b.finish())
    }

    /// Converts back to row-oriented records.
    pub fn to_records(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.len());
        for row in 0..self.len() {
            let values = self.columns.iter().map(|c| c.value(row)).collect();
            out.push(Record::new(self.timestamps[row], values));
        }
        out
    }

    /// Copies the rows in `range` into a new batch.
    pub fn slice(&self, range: Range<usize>) -> Batch {
        Batch {
            schema: self.schema.clone(),
            timestamps: self.timestamps[range.clone()].to_vec(),
            columns: self
                .columns
                .iter()
                .map(|c| c.slice(range.clone()))
                .collect(),
        }
    }

    /// Gathers the rows where `mask` is true into a new batch (the
    /// vectorized filter's gather step).
    pub fn select(&self, mask: &[bool]) -> Batch {
        debug_assert_eq!(mask.len(), self.len());
        Batch {
            schema: self.schema.clone(),
            timestamps: filter_by(&self.timestamps, mask),
            columns: self.columns.iter().map(|c| c.select(mask)).collect(),
        }
    }

    /// Gathers the listed rows (in order, duplicates allowed) into a new
    /// batch.
    pub fn gather(&self, rows: &[u32]) -> Batch {
        Batch {
            schema: self.schema.clone(),
            timestamps: rows.iter().map(|&r| self.timestamps[r as usize]).collect(),
            columns: self.columns.iter().map(|c| c.gather(rows)).collect(),
        }
    }

    /// Dictionary-encodes every plain string column whose cardinality stays
    /// within `max_cardinality`, leaving other columns untouched. Returns
    /// whether any column was re-encoded.
    pub fn dict_encode(&mut self, max_cardinality: usize) -> bool {
        let mut changed = false;
        for col in &mut self.columns {
            if let Some(dict) = col.dict_encode(max_cardinality) {
                *col = dict;
                changed = true;
            }
        }
        changed
    }

    /// Materialises every dictionary column back into plain strings (the
    /// inverse of [`Batch::dict_encode`], used by differential tests).
    pub fn dict_decode(&mut self) {
        for col in &mut self.columns {
            let has_dict = match col {
                Column::Dict { .. } => true,
                Column::Opt { values, .. } => matches!(values.as_ref(), Column::Dict { .. }),
                _ => false,
            };
            if has_dict {
                *col = col.dict_decode();
            }
        }
    }

    /// Relabels the batch with `schema` when every column's physical storage
    /// is compatible with the schema's declared types (engines use this so
    /// wire accounting follows the *plan's* schema rather than whatever a
    /// generator tagged — e.g. trace replay infers U64 for U32 fields).
    /// Returns `false`, leaving the batch untouched, when the shapes don't
    /// line up.
    pub fn relabel(&mut self, schema: &SchemaRef) -> bool {
        fn compatible(dtype: DataType, col: &Column) -> bool {
            match col {
                Column::Bool(_) => dtype == DataType::Bool,
                Column::I64(_) => matches!(dtype, DataType::I32 | DataType::I64),
                Column::U64(_) => matches!(dtype, DataType::U32 | DataType::U64),
                Column::F64(_) => dtype == DataType::F64,
                Column::Str { .. } | Column::Dict { .. } => dtype == DataType::Str,
                Column::Opt { values, .. } => compatible(dtype, values),
            }
        }
        if schema.width() != self.columns.len()
            || !schema
                .fields()
                .iter()
                .zip(&self.columns)
                .all(|(f, c)| compatible(f.dtype, c))
        {
            return false;
        }
        self.schema = schema.clone();
        true
    }

    /// Splits the batch into row chunks of at most `rows` each (the last
    /// chunk may be shorter). A batch that fits in one chunk is cloned
    /// whole without re-slicing.
    pub fn chunks(&self, rows: usize) -> impl Iterator<Item = Batch> + '_ {
        let rows = rows.max(1);
        let n = self.len();
        let count = if n == 0 { 0 } else { n.div_ceil(rows) };
        (0..count).map(move |c| {
            let start = c * rows;
            let end = (start + rows).min(n);
            if start == 0 && end == n {
                self.clone()
            } else {
                self.slice(start..end)
            }
        })
    }

    /// Total encoded size in bytes. Derived from [`layout`], so it agrees
    /// with [`Record::wire_size`] summed over rows by construction.
    pub fn wire_size(&self) -> usize {
        let mut size = self.len() * layout::row_envelope(&self.schema);
        for (field, col) in self.schema.fields().iter().zip(&self.columns) {
            size += col.wire_bytes(field.dtype);
        }
        size
    }

    /// Encoded size toward a receiver whose dictionary mirrors are at the
    /// versions in `seen` (advanced by this call): persistent dictionary
    /// columns charge codes plus the delta since the link's last ship
    /// instead of re-charging the full page per batch/chunk.
    pub fn wire_size_versioned(&self, seen: &mut DictVersions) -> usize {
        let mut size = self.len() * layout::row_envelope(&self.schema);
        for (field, col) in self.schema.fields().iter().zip(&self.columns) {
            size += col.wire_bytes_versioned(field.dtype, seen);
        }
        size
    }
}

/// Incremental builder for one column.
pub struct ColumnBuilder {
    dtype: DataType,
    bools: Vec<bool>,
    ints: Vec<i64>,
    uints: Vec<u64>,
    floats: Vec<f64>,
    offsets: Vec<u32>,
    strs: Vec<u8>,
    /// Validity, allocated lazily on the first `Null`.
    nulls: Option<Vec<bool>>,
    rows: usize,
}

impl ColumnBuilder {
    /// Creates a builder for a column of `dtype`, reserving `capacity` rows.
    pub fn new(dtype: DataType, capacity: usize) -> ColumnBuilder {
        let mut b = ColumnBuilder {
            dtype,
            bools: Vec::new(),
            ints: Vec::new(),
            uints: Vec::new(),
            floats: Vec::new(),
            offsets: Vec::new(),
            strs: Vec::new(),
            nulls: None,
            rows: 0,
        };
        match dtype {
            DataType::Bool => b.bools.reserve(capacity),
            DataType::I32 | DataType::I64 => b.ints.reserve(capacity),
            DataType::U32 | DataType::U64 => b.uints.reserve(capacity),
            DataType::F64 => b.floats.reserve(capacity),
            DataType::Str => {
                b.offsets.reserve(capacity + 1);
                b.offsets.push(0);
            }
        }
        b
    }

    fn mark(&mut self, valid: bool) {
        if let Some(nulls) = &mut self.nulls {
            nulls.push(valid);
        } else if !valid {
            let mut nulls = vec![true; self.rows];
            nulls.push(false);
            self.nulls = Some(nulls);
        }
        self.rows += 1;
    }

    /// Appends one value. `Null` is recorded in the validity mask with a
    /// type-default filler in the dense storage.
    pub fn push(&mut self, value: &Value) -> Result<()> {
        if value.is_null() {
            self.push_null();
            return Ok(());
        }
        let mismatch = || Error::TypeMismatch {
            expected: match self.dtype {
                DataType::Bool => "bool",
                DataType::I32 | DataType::I64 => "i64",
                DataType::U32 | DataType::U64 => "u64",
                DataType::F64 => "f64",
                DataType::Str => "str",
            },
            got: value.type_name(),
        };
        match self.dtype {
            DataType::Bool => self.bools.push(value.as_bool().ok_or_else(mismatch)?),
            DataType::I32 | DataType::I64 => self.ints.push(value.as_i64().ok_or_else(mismatch)?),
            DataType::U32 | DataType::U64 => match value {
                Value::U64(v) => self.uints.push(*v),
                Value::I64(v) if *v >= 0 => self.uints.push(*v as u64),
                _ => return Err(mismatch()),
            },
            DataType::F64 => self.floats.push(value.as_f64().ok_or_else(mismatch)?),
            DataType::Str => {
                let s = value.as_str().ok_or_else(mismatch)?;
                self.strs.extend_from_slice(s.as_bytes());
                self.offsets.push(self.strs.len() as u32);
            }
        }
        self.mark(true);
        Ok(())
    }

    /// Appends a `Null` row.
    pub fn push_null(&mut self) {
        match self.dtype {
            DataType::Bool => self.bools.push(false),
            DataType::I32 | DataType::I64 => self.ints.push(0),
            DataType::U32 | DataType::U64 => self.uints.push(0),
            DataType::F64 => self.floats.push(0.0),
            DataType::Str => self.offsets.push(self.strs.len() as u32),
        }
        self.mark(false);
    }

    /// Appends a string without constructing a `Value` (string columns only).
    pub fn push_str(&mut self, s: &str) -> Result<()> {
        if self.dtype != DataType::Str {
            return Err(Error::TypeMismatch {
                expected: "str column",
                got: "str",
            });
        }
        self.strs.extend_from_slice(s.as_bytes());
        self.offsets.push(self.strs.len() as u32);
        self.mark(true);
        Ok(())
    }

    /// Finishes the column.
    pub fn finish(self) -> Column {
        let dense = match self.dtype {
            DataType::Bool => Column::Bool(self.bools),
            DataType::I32 | DataType::I64 => Column::I64(self.ints),
            DataType::U32 | DataType::U64 => Column::U64(self.uints),
            DataType::F64 => Column::F64(self.floats),
            DataType::Str => {
                // Builder inputs are &str, so this can only fire if a raw
                // construction path bypasses the builder API.
                debug_assert!(
                    std::str::from_utf8(&self.strs).is_ok(),
                    "Column::Str invariant violated: builder holds non-UTF-8"
                );
                Column::Str {
                    offsets: self.offsets,
                    data: Bytes::from(self.strs),
                }
            }
        };
        match self.nulls {
            Some(valid) => Column::Opt {
                valid,
                values: Box::new(dense),
            },
            None => dense,
        }
    }
}

/// Incremental row-at-a-time builder for a whole batch (operator emission
/// paths that compute output rows, e.g. closed-window aggregates).
pub struct BatchBuilder {
    schema: SchemaRef,
    timestamps: Vec<Ts>,
    builders: Vec<ColumnBuilder>,
}

impl BatchBuilder {
    /// Creates a builder for `schema`, reserving `capacity` rows.
    pub fn new(schema: SchemaRef, capacity: usize) -> BatchBuilder {
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype, capacity))
            .collect();
        BatchBuilder {
            schema,
            timestamps: Vec::with_capacity(capacity),
            builders,
        }
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Appends one row from a timestamp and positional values.
    pub fn push_row(&mut self, ts: Ts, values: &[Value]) -> Result<()> {
        if values.len() != self.builders.len() {
            return Err(Error::InvalidPlan(format!(
                "row width {} does not match schema width {}",
                values.len(),
                self.builders.len()
            )));
        }
        self.timestamps.push(ts);
        for (builder, value) in self.builders.iter_mut().zip(values) {
            builder.push(value)?;
        }
        Ok(())
    }

    /// Appends one record.
    pub fn push_record(&mut self, rec: &Record) -> Result<()> {
        self.push_row(rec.ts, &rec.values)
    }

    /// Finishes the batch.
    pub fn finish(self) -> Batch {
        Batch {
            schema: self.schema,
            timestamps: self.timestamps,
            columns: self
                .builders
                .into_iter()
                .map(ColumnBuilder::finish)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::wire_size_of;
    use crate::schema::Field;

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("id", DataType::U32),
            Field::new("score", DataType::F64),
            Field::new("tag", DataType::Str),
        ])
    }

    fn records() -> Vec<Record> {
        vec![
            Record::new(1, vec![Value::U64(7), Value::F64(0.5), Value::str("a")]),
            Record::new(2, vec![Value::U64(8), Value::F64(1.5), Value::str("bc")]),
            Record::new(3, vec![Value::U64(9), Value::F64(2.5), Value::str("")]),
        ]
    }

    #[test]
    fn round_trip_preserves_records() {
        let s = schema();
        let recs = records();
        let batch = Batch::from_records(s.clone(), &recs).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.to_records(), recs);
    }

    #[test]
    fn wire_size_matches_row_accounting() {
        let s = schema();
        let recs = records();
        let batch = Batch::from_records(s.clone(), &recs).unwrap();
        assert_eq!(batch.wire_size(), wire_size_of(&recs, &s));
    }

    #[test]
    fn wire_size_matches_row_accounting_with_nulls() {
        // The batch layout is the single source of truth: rows with Null
        // values must account identically through both paths.
        let s = schema();
        let recs = vec![
            Record::new(1, vec![Value::U64(7), Value::Null, Value::str("xy")]),
            Record::new(2, vec![Value::U64(8), Value::F64(1.0), Value::Null]),
        ];
        let batch = Batch::from_records(s.clone(), &recs).unwrap();
        assert_eq!(batch.wire_size(), wire_size_of(&recs, &s));
        assert_eq!(batch.to_records(), recs);
    }

    #[test]
    fn width_mismatch_is_an_error() {
        let s = schema();
        let bad = vec![Record::new(0, vec![Value::U64(1)])];
        assert!(Batch::from_records(s, &bad).is_err());
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let s = schema();
        let bad = vec![Record::new(
            0,
            vec![Value::str("not-u32"), Value::F64(0.0), Value::str("x")],
        )];
        assert!(matches!(
            Batch::from_records(s, &bad),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn empty_batch_round_trips() {
        let s = schema();
        let batch = Batch::from_records(s, &[]).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.to_records(), Vec::<Record>::new());
        assert_eq!(batch.wire_size(), 0);
    }

    #[test]
    fn column_is_empty_tracks_rows() {
        let empty = ColumnBuilder::new(DataType::Str, 0).finish();
        assert!(empty.is_empty());
        let mut b = ColumnBuilder::new(DataType::Str, 1);
        b.push(&Value::str("x")).unwrap();
        let col = b.finish();
        assert!(!col.is_empty());
        assert_eq!(col.len(), 1);
    }

    #[test]
    fn slice_copies_a_row_range() {
        let s = schema();
        let recs = records();
        let batch = Batch::from_records(s, &recs).unwrap();
        let mid = batch.slice(1..3);
        assert_eq!(mid.len(), 2);
        assert_eq!(mid.to_records(), recs[1..3].to_vec());
        let empty = batch.slice(2..2);
        assert!(empty.is_empty());
        // Slicing must not disturb string offsets of later rows.
        assert_eq!(mid.columns[2].str_at(0), Some("bc"));
        assert_eq!(mid.columns[2].str_at(1), Some(""));
    }

    #[test]
    fn select_gathers_masked_rows() {
        let s = schema();
        let recs = records();
        let batch = Batch::from_records(s, &recs).unwrap();
        let picked = batch.select(&[true, false, true]);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked.to_records(), vec![recs[0].clone(), recs[2].clone()]);
        assert!(batch.select(&[false, false, false]).is_empty());
    }

    #[test]
    fn slice_and_select_preserve_nulls() {
        let s = schema();
        let recs = vec![
            Record::new(1, vec![Value::U64(1), Value::Null, Value::str("a")]),
            Record::new(2, vec![Value::U64(2), Value::F64(2.0), Value::Null]),
            Record::new(3, vec![Value::Null, Value::F64(3.0), Value::str("c")]),
        ];
        let batch = Batch::from_records(s, &recs).unwrap();
        assert_eq!(batch.slice(1..3).to_records(), recs[1..3].to_vec());
        assert_eq!(
            batch.select(&[true, false, true]).to_records(),
            vec![recs[0].clone(), recs[2].clone()]
        );
    }

    #[test]
    fn relabel_requires_physical_compatibility() {
        let recs = records();
        let mut batch = Batch::from_records(schema(), &recs).unwrap();
        // Same storage classes, different declared widths: compatible.
        let wider = Schema::with_overhead(
            vec![
                Field::new("id", DataType::U64),
                Field::new("score", DataType::F64),
                Field::new("tag", DataType::Str),
            ],
            50,
        );
        assert!(batch.relabel(&wider));
        assert_eq!(batch.schema, wider);
        assert_eq!(
            batch.wire_size(),
            3 * (8 + 50 + 8 + 8) + (2 + 1) + (2 + 2) + 2
        );
        // Type-incompatible relabel is refused and leaves the batch alone.
        let wrong = Schema::new(vec![
            Field::new("a", DataType::Str),
            Field::new("b", DataType::F64),
            Field::new("c", DataType::Str),
        ]);
        assert!(!batch.relabel(&wrong));
        assert_eq!(batch.schema, wider);
        // Width mismatch is refused too.
        assert!(!batch.relabel(&Schema::new(vec![Field::new("x", DataType::U64)])));
    }

    #[test]
    fn chunks_cover_all_rows_in_order() {
        let s = schema();
        let recs = records();
        let batch = Batch::from_records(s, &recs).unwrap();
        let chunks: Vec<Batch> = batch.chunks(2).collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(chunks[1].len(), 1);
        let rows: Vec<Record> = chunks.iter().flat_map(Batch::to_records).collect();
        assert_eq!(rows, recs);
        // Whole batch in one chunk; empty batch yields no chunks.
        assert_eq!(batch.chunks(10).count(), 1);
        assert_eq!(batch.slice(0..0).chunks(4).count(), 0);
    }

    fn dict_col(entries: &[&str], codes: &[u32]) -> Column {
        Column::Dict {
            codes: codes.to_vec(),
            dict: Arc::new(StrDict::from_entries(entries)),
        }
    }

    #[test]
    fn dict_column_reads_like_strings() {
        let col = dict_col(&["cpu util", "memory util"], &[0, 1, 0, 0]);
        assert_eq!(col.len(), 4);
        assert_eq!(col.str_at(2), Some("cpu util"));
        assert_eq!(col.value(1), Value::str("memory util"));
        assert_eq!(col.f64_at(0), None);
    }

    #[test]
    fn dict_builder_interns_and_handles_nulls() {
        let mut b = DictBuilder::new(4);
        b.push("a");
        b.push("b");
        b.push_null();
        b.push("a");
        let col = b.finish();
        let Column::Opt { valid, values } = &col else {
            panic!("nulls must wrap in Opt");
        };
        assert_eq!(valid, &vec![true, true, false, true]);
        let (dict, codes) = values.as_dict().expect("dense dict inside");
        assert_eq!(dict.len(), 2, "repeated values are interned");
        assert_eq!(codes, &[0, 1, 0, 0]);
        assert_eq!(col.str_at(3), Some("a"));
        assert_eq!(col.value(2), Value::Null);
    }

    #[test]
    fn dict_slice_select_gather_share_the_dictionary() {
        let col = dict_col(&["x", "y", "z"], &[0, 1, 2, 1, 0]);
        let sliced = col.slice(1..4);
        assert_eq!(sliced.str_at(0), Some("y"));
        let picked = col.select(&[true, false, false, true, true]);
        assert_eq!(picked.len(), 3);
        assert_eq!(picked.str_at(1), Some("y"));
        let gathered = col.gather(&[4, 4, 2]);
        assert_eq!(gathered.str_at(0), Some("x"));
        assert_eq!(gathered.str_at(2), Some("z"));
        for derived in [&sliced, &picked, &gathered] {
            let (da, _) = derived.as_dict().unwrap();
            let (db, _) = col.as_dict().unwrap();
            assert!(std::ptr::eq(da, db), "dictionary page must be shared");
        }
    }

    #[test]
    fn gather_matches_select_on_all_column_shapes() {
        let s = schema();
        let recs = vec![
            Record::new(1, vec![Value::U64(1), Value::Null, Value::str("a")]),
            Record::new(2, vec![Value::U64(2), Value::F64(2.0), Value::Null]),
            Record::new(3, vec![Value::Null, Value::F64(3.0), Value::str("c")]),
        ];
        let batch = Batch::from_records(s, &recs).unwrap();
        assert_eq!(
            batch.gather(&[0, 2]).to_records(),
            batch.select(&[true, false, true]).to_records()
        );
        // Duplicates are allowed.
        assert_eq!(batch.gather(&[1, 1]).to_records()[0], recs[1]);
    }

    #[test]
    fn dict_encode_round_trips_and_respects_cardinality() {
        let s = schema();
        let recs: Vec<Record> = (0..20)
            .map(|i| {
                Record::new(
                    i,
                    vec![
                        Value::U64(i as u64),
                        Value::F64(i as f64),
                        Value::str(["t0", "t1", "t2"][i as usize % 3]),
                    ],
                )
            })
            .collect();
        let plain = Batch::from_records(s, &recs).unwrap();
        let mut encoded = plain.clone();
        assert!(encoded.dict_encode(16));
        assert!(matches!(encoded.columns[2], Column::Dict { .. }));
        assert!(
            matches!(encoded.columns[0], Column::U64(_)),
            "numeric columns untouched"
        );
        // The logical rows are identical either way.
        assert_eq!(encoded.to_records(), recs);
        let mut back = encoded.clone();
        back.dict_decode();
        assert_eq!(back, plain);
        // Cardinality above the bound refuses to encode.
        assert!(plain.columns[2].dict_encode(2).is_none());
        // Values beyond the wire's u16 length prefix refuse to encode too
        // (they would truncate on the dictionary page).
        let huge = "x".repeat(u16::MAX as usize + 1);
        let long_recs = vec![Record::new(0, vec![Value::str(&huge)])];
        let long = Batch::from_records(
            Schema::new(vec![Field::new("t", DataType::Str)]),
            &long_recs,
        )
        .unwrap();
        assert!(long.columns[0].dict_encode(16).is_none());
    }

    #[test]
    fn all_null_string_column_survives_dict_round_trip() {
        // An all-null Opt string column dict-encodes to an *empty*
        // dictionary with code-0 fillers; decoding it back must not read
        // the dictionary.
        let s = Schema::new(vec![Field::new("t", DataType::Str)]);
        let recs = vec![
            Record::new(0, vec![Value::Null]),
            Record::new(1, vec![Value::Null]),
        ];
        let plain = Batch::from_records(s, &recs).unwrap();
        let mut enc = plain.clone();
        assert!(enc.dict_encode(8));
        let Column::Opt { values, .. } = &enc.columns[0] else {
            panic!("nullable column expected");
        };
        assert_eq!(values.as_dict().unwrap().0.len(), 0, "empty dictionary");
        assert_eq!(enc.to_records(), recs);
        let mut back = enc.clone();
        back.dict_decode();
        assert_eq!(back, plain);
    }

    #[test]
    fn dict_wire_accounting_agrees_between_row_and_batch_views() {
        // The batch view charges the dictionary page once plus one code per
        // row; the row view of the same column is per-row codes over the
        // shared page. layout:: is the single source of truth for both.
        let col = dict_col(&["tenant-a", "tenant-bb"], &[0, 1, 0, 1, 1]);
        let (dict, codes) = col.as_dict().unwrap();
        let page = layout::dict_page_bytes(dict);
        assert_eq!(
            page,
            layout::DICT_PAGE_HEADER_BYTES
                + layout::str_bytes("tenant-a".len())
                + layout::str_bytes("tenant-bb".len())
        );
        let row_view: usize = codes.iter().map(|_| layout::DICT_CODE_BYTES).sum();
        assert_eq!(col.wire_bytes(DataType::Str), page + row_view);
        assert_eq!(
            col.wire_bytes(DataType::Str),
            layout::dict_bytes(dict, col.len())
        );
        // Empty columns ship nothing, page included.
        assert_eq!(col.slice(0..0).wire_bytes(DataType::Str), 0);
    }

    #[test]
    fn dict_encoding_shrinks_wire_size_for_low_cardinality() {
        let s = Schema::new(vec![Field::new("tenant", DataType::Str)]);
        let recs: Vec<Record> = (0..200)
            .map(|i| Record::new(i, vec![Value::str(format!("tenant-{}", i % 4))]))
            .collect();
        let plain = Batch::from_records(s, &recs).unwrap();
        let mut enc = plain.clone();
        assert!(enc.dict_encode(64));
        assert!(
            enc.wire_size() < plain.wire_size(),
            "dict {} must beat plain {}",
            enc.wire_size(),
            plain.wire_size()
        );
    }

    #[test]
    fn chunked_dict_batches_each_carry_their_page() {
        // Engines charge wire bytes per shipped chunk; a dict chunk pays
        // its dictionary page again, exactly as the encoder serialises it.
        let s = Schema::new(vec![Field::new("tag", DataType::Str)]);
        let batch = Batch {
            schema: s,
            timestamps: (0..10).collect(),
            columns: vec![dict_col(&["aa", "bb"], &[0, 1, 0, 1, 0, 1, 0, 1, 0, 1])],
        };
        let chunks: Vec<Batch> = batch.chunks(4).collect();
        assert_eq!(chunks.len(), 3);
        let whole = batch.wire_size();
        let summed: usize = chunks.iter().map(Batch::wire_size).sum();
        let (dict, _) = batch.columns[0].as_dict().unwrap();
        // Two extra page copies for the two extra chunks.
        assert_eq!(summed, whole + 2 * layout::dict_page_bytes(dict));
        // And every chunk's size equals its own layout-derived accounting.
        for c in &chunks {
            assert_eq!(
                c.wire_size(),
                c.len() * layout::row_envelope(&c.schema) + layout::dict_bytes(dict, c.len())
            );
        }
    }

    #[test]
    fn stream_dict_codes_are_stable_and_snapshots_share_pages() {
        let mut sd = StreamDict::new();
        assert_ne!(sd.id(), 0, "persistent dictionaries get a non-zero id");
        assert_eq!(sd.intern("a"), 0);
        assert_eq!(sd.intern("b"), 1);
        assert_eq!(sd.intern("a"), 0, "codes never remap");
        assert_eq!(sd.version(), 2);
        let snap1 = sd.snapshot();
        let snap2 = sd.snapshot();
        assert!(
            Arc::ptr_eq(&snap1, &snap2),
            "unchanged dictionary reuses the snapshot Arc"
        );
        assert_eq!(snap1.id(), sd.id());
        sd.intern("c");
        let snap3 = sd.snapshot();
        assert!(!Arc::ptr_eq(&snap1, &snap3), "growth republishes");
        assert_eq!(snap3.len(), 3);
        // Earlier snapshots stay valid for their prefix (append-only).
        assert_eq!(snap1.get(1), "b");
        // Two streams never share an id.
        assert_ne!(StreamDict::new().id(), sd.id());
    }

    #[test]
    fn dict_delta_round_trips_and_rejects_out_of_order() {
        let mut sender = StreamDict::new();
        sender.intern("x");
        sender.intern("y");
        let first = sender.delta_since(0);
        assert_eq!(first.base, 0);
        assert_eq!(first.entries, vec!["x".to_string(), "y".to_string()]);
        let mut mirror = StreamDict::new();
        mirror.apply_delta(&first).unwrap();
        sender.intern("z");
        let second = sender.delta_since(2);
        assert_eq!(second.entries, vec!["z".to_string()]);
        // Replaying the first delta (mirror already past it) is an error.
        assert!(mirror.apply_delta(&first).is_err());
        mirror.apply_delta(&second).unwrap();
        assert_eq!(mirror.version(), sender.version());
        for c in 0..sender.version() {
            assert_eq!(mirror.get(c), sender.get(c));
        }
        // Skipping a delta is an error too.
        sender.intern("w");
        sender.intern("v");
        let skipped = sender.delta_since(4);
        assert!(mirror.apply_delta(&skipped).is_err());
        // A synced mirror receives an empty delta.
        assert!(sender.delta_since(sender.version()).entries.is_empty());
    }

    #[test]
    fn dict_encode_with_keeps_codes_stable_across_batches() {
        let s = Schema::new(vec![Field::new("t", DataType::Str)]);
        let mut stream = StreamDict::new();
        let batch = |names: &[&str]| {
            let recs: Vec<Record> = names
                .iter()
                .enumerate()
                .map(|(i, n)| Record::new(i as Ts, vec![Value::str(*n)]))
                .collect();
            Batch::from_records(s.clone(), &recs).unwrap()
        };
        let b1 = batch(&["t0", "t1", "t0"]);
        let c1 = b1.columns[0].dict_encode_with(&mut stream, 64).unwrap();
        let b2 = batch(&["t1", "t2"]);
        let c2 = b2.columns[0].dict_encode_with(&mut stream, 64).unwrap();
        let (d1, codes1) = c1.as_dict().unwrap();
        let (d2, codes2) = c2.as_dict().unwrap();
        assert_eq!(codes1, &[0, 1, 0]);
        assert_eq!(codes2, &[1, 2], "t1 keeps its code in the next batch");
        assert_eq!(d1.id(), d2.id());
        assert_eq!((d1.len(), d2.len()), (2, 3));
        // Nulls stay behind a validity mask, as with DictBuilder.
        let nullable = Batch::from_records(
            s.clone(),
            &[
                Record::new(0, vec![Value::Null]),
                Record::new(1, vec![Value::str("t9")]),
            ],
        )
        .unwrap();
        let c3 = nullable.columns[0]
            .dict_encode_with(&mut stream, 64)
            .unwrap();
        let Column::Opt { valid, values } = &c3 else {
            panic!("nullable dict column expected");
        };
        assert_eq!(valid, &vec![false, true]);
        assert_eq!(values.as_dict().unwrap().1, &[0, 3]);
        // The cumulative cardinality bound refuses further novelty.
        let wide = batch(&["w0", "w1", "w2"]);
        assert!(wide.columns[0].dict_encode_with(&mut stream, 4).is_none());
    }

    #[test]
    fn chunked_persistent_dict_batches_ship_the_delta_once() {
        // The PR-3 waste: every chunk of a batch re-carried its full dict
        // page. With a persistent dictionary the link ships the delta once;
        // subsequent chunks (and batches) carry codes plus a bare delta
        // header.
        let s = Schema::new(vec![Field::new("tag", DataType::Str)]);
        let mut stream = StreamDict::new();
        let names: Vec<String> = (0..8).map(|i| format!("tenant-{i}")).collect();
        let codes: Vec<u32> = (0..16).map(|i| stream.intern(&names[i % 8])).collect();
        let batch = Batch {
            schema: s,
            timestamps: (0..16).collect(),
            columns: vec![Column::Dict {
                codes,
                dict: stream.snapshot(),
            }],
        };
        let (dict, _) = batch.columns[0].as_dict().unwrap();
        let mut seen = DictVersions::new();
        let chunks: Vec<Batch> = batch.chunks(6).collect();
        assert_eq!(chunks.len(), 3);
        let summed: usize = chunks
            .iter()
            .map(|c| c.wire_size_versioned(&mut seen))
            .sum();
        let envelope = batch.len() * layout::row_envelope(&batch.schema);
        let entries_once = layout::dict_delta_bytes(dict, 0);
        let bare_headers = 2 * layout::DICT_DELTA_HEADER_BYTES;
        let codes_total = batch.len() * layout::DICT_CODE_BYTES;
        // Page content exactly once; later chunks pay only the fixed header.
        assert_eq!(summed, envelope + entries_once + bare_headers + codes_total);
        assert!(
            summed < chunks.iter().map(Batch::wire_size).sum::<usize>(),
            "delta accounting must beat full-page-per-chunk"
        );
        // A fully-synced follow-up batch charges codes + bare header only.
        assert_eq!(
            batch.wire_size_versioned(&mut seen),
            envelope + layout::DICT_DELTA_HEADER_BYTES + codes_total
        );
        // Batch-local pages (id 0) still charge the full page per batch:
        // versioned accounting changes nothing for them.
        let names_ref: Vec<&str> = names.iter().map(String::as_str).collect();
        let local_codes: Vec<u32> = (0..16).map(|i| (i % 8) as u32).collect();
        let local = Batch {
            columns: vec![dict_col(&names_ref, &local_codes)],
            ..batch.clone()
        };
        let mut fresh = DictVersions::new();
        assert_eq!(local.wire_size_versioned(&mut fresh), local.wire_size());
        assert!(fresh.is_empty(), "id-0 pages never enter the link state");
    }

    #[test]
    fn relabel_accepts_dict_backed_str_fields() {
        let s = Schema::new(vec![Field::new("tag", DataType::Str)]);
        let mut batch = Batch {
            schema: s,
            timestamps: vec![0, 1],
            columns: vec![dict_col(&["a"], &[0, 0])],
        };
        let wider = Schema::with_overhead(vec![Field::new("tag", DataType::Str)], 10);
        assert!(batch.relabel(&wider));
        assert!(!batch.relabel(&Schema::new(vec![Field::new("tag", DataType::U64)])));
    }

    #[test]
    fn batch_builder_matches_from_records() {
        let s = schema();
        let recs = records();
        let mut b = BatchBuilder::new(s.clone(), recs.len());
        for r in &recs {
            b.push_record(r).unwrap();
        }
        assert_eq!(b.finish(), Batch::from_records(s, &recs).unwrap());
    }
}
