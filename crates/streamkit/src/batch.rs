//! Columnar batches.
//!
//! Records cross the network (and are recorded to traces) in a columnar
//! layout: one fixed-width vector per numeric column and an offsets+bytes pair
//! for string columns. This is the in-repo stand-in for the Arrow/Kryo layer
//! the paper's implementation relied on.

use bytes::Bytes;

use crate::error::{Error, Result};
use crate::record::Record;
use crate::schema::{DataType, Schema, SchemaRef};
use crate::time::Ts;
use crate::value::Value;

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Booleans.
    Bool(Vec<bool>),
    /// Signed 64-bit (also backs I32 columns).
    I64(Vec<i64>),
    /// Unsigned 64-bit (also backs U32 columns).
    U64(Vec<u64>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// Strings: `offsets.len() == rows + 1`, UTF-8 bytes in `data`.
    Str { offsets: Vec<u32>, data: Bytes },
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::U64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Str { offsets, .. } => offsets.len().saturating_sub(1),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `row`.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Bool(v) => Value::Bool(v[row]),
            Column::I64(v) => Value::I64(v[row]),
            Column::U64(v) => Value::U64(v[row]),
            Column::F64(v) => Value::F64(v[row]),
            Column::Str { offsets, data } => {
                let lo = offsets[row] as usize;
                let hi = offsets[row + 1] as usize;
                let s = std::str::from_utf8(&data[lo..hi]).unwrap_or("");
                Value::str(s)
            }
        }
    }
}

/// A batch of records in columnar form: timestamps + one column per field.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Schema describing `columns`.
    pub schema: SchemaRef,
    /// Event timestamps, one per row.
    pub timestamps: Vec<Ts>,
    /// Columns, positionally matching the schema.
    pub columns: Vec<Column>,
}

impl Batch {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Builds a columnar batch from row-oriented records.
    pub fn from_records(schema: SchemaRef, records: &[Record]) -> Result<Batch> {
        let mut builders: Vec<ColumnBuilder> = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype, records.len()))
            .collect();
        let mut timestamps = Vec::with_capacity(records.len());
        for rec in records {
            if rec.values.len() != schema.width() {
                return Err(Error::InvalidPlan(format!(
                    "record width {} does not match schema width {}",
                    rec.values.len(),
                    schema.width()
                )));
            }
            timestamps.push(rec.ts);
            for (builder, value) in builders.iter_mut().zip(&rec.values) {
                builder.push(value)?;
            }
        }
        let columns = builders.into_iter().map(ColumnBuilder::finish).collect();
        Ok(Batch {
            schema,
            timestamps,
            columns,
        })
    }

    /// Converts back to row-oriented records.
    pub fn to_records(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.len());
        for row in 0..self.len() {
            let values = self.columns.iter().map(|c| c.value(row)).collect();
            out.push(Record::new(self.timestamps[row], values));
        }
        out
    }

    /// Total encoded size in bytes (the same accounting as
    /// [`Record::wire_size`] summed over rows).
    pub fn wire_size(&self) -> usize {
        let mut size = self.len() * (Schema::TS_WIRE_BYTES + self.schema.record_overhead());
        for (field, col) in self.schema.fields().iter().zip(&self.columns) {
            size += match (field.dtype, col) {
                (DataType::Str, Column::Str { offsets, data }) => {
                    2 * offsets.len().saturating_sub(1) + data.len()
                }
                (dtype, col) => dtype.fixed_width().unwrap_or(0) * col.len(),
            };
        }
        size
    }
}

/// Incremental builder for one column.
struct ColumnBuilder {
    dtype: DataType,
    bools: Vec<bool>,
    ints: Vec<i64>,
    uints: Vec<u64>,
    floats: Vec<f64>,
    offsets: Vec<u32>,
    strs: Vec<u8>,
}

impl ColumnBuilder {
    fn new(dtype: DataType, capacity: usize) -> ColumnBuilder {
        let mut b = ColumnBuilder {
            dtype,
            bools: Vec::new(),
            ints: Vec::new(),
            uints: Vec::new(),
            floats: Vec::new(),
            offsets: Vec::new(),
            strs: Vec::new(),
        };
        match dtype {
            DataType::Bool => b.bools.reserve(capacity),
            DataType::I32 | DataType::I64 => b.ints.reserve(capacity),
            DataType::U32 | DataType::U64 => b.uints.reserve(capacity),
            DataType::F64 => b.floats.reserve(capacity),
            DataType::Str => {
                b.offsets.reserve(capacity + 1);
                b.offsets.push(0);
            }
        }
        b
    }

    fn push(&mut self, value: &Value) -> Result<()> {
        let mismatch = || Error::TypeMismatch {
            expected: match self.dtype {
                DataType::Bool => "bool",
                DataType::I32 | DataType::I64 => "i64",
                DataType::U32 | DataType::U64 => "u64",
                DataType::F64 => "f64",
                DataType::Str => "str",
            },
            got: value.type_name(),
        };
        match self.dtype {
            DataType::Bool => self.bools.push(value.as_bool().ok_or_else(mismatch)?),
            DataType::I32 | DataType::I64 => self.ints.push(value.as_i64().ok_or_else(mismatch)?),
            DataType::U32 | DataType::U64 => match value {
                Value::U64(v) => self.uints.push(*v),
                Value::I64(v) if *v >= 0 => self.uints.push(*v as u64),
                _ => return Err(mismatch()),
            },
            DataType::F64 => self.floats.push(value.as_f64().ok_or_else(mismatch)?),
            DataType::Str => {
                let s = value.as_str().ok_or_else(mismatch)?;
                self.strs.extend_from_slice(s.as_bytes());
                self.offsets.push(self.strs.len() as u32);
            }
        }
        Ok(())
    }

    fn finish(self) -> Column {
        match self.dtype {
            DataType::Bool => Column::Bool(self.bools),
            DataType::I32 | DataType::I64 => Column::I64(self.ints),
            DataType::U32 | DataType::U64 => Column::U64(self.uints),
            DataType::F64 => Column::F64(self.floats),
            DataType::Str => Column::Str {
                offsets: self.offsets,
                data: Bytes::from(self.strs),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::wire_size_of;
    use crate::schema::Field;

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("id", DataType::U32),
            Field::new("score", DataType::F64),
            Field::new("tag", DataType::Str),
        ])
    }

    fn records() -> Vec<Record> {
        vec![
            Record::new(1, vec![Value::U64(7), Value::F64(0.5), Value::str("a")]),
            Record::new(2, vec![Value::U64(8), Value::F64(1.5), Value::str("bc")]),
            Record::new(3, vec![Value::U64(9), Value::F64(2.5), Value::str("")]),
        ]
    }

    #[test]
    fn round_trip_preserves_records() {
        let s = schema();
        let recs = records();
        let batch = Batch::from_records(s.clone(), &recs).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.to_records(), recs);
    }

    #[test]
    fn wire_size_matches_row_accounting() {
        let s = schema();
        let recs = records();
        let batch = Batch::from_records(s.clone(), &recs).unwrap();
        assert_eq!(batch.wire_size(), wire_size_of(&recs, &s));
    }

    #[test]
    fn width_mismatch_is_an_error() {
        let s = schema();
        let bad = vec![Record::new(0, vec![Value::U64(1)])];
        assert!(Batch::from_records(s, &bad).is_err());
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let s = schema();
        let bad = vec![Record::new(
            0,
            vec![Value::str("not-u32"), Value::F64(0.0), Value::str("x")],
        )];
        assert!(matches!(
            Batch::from_records(s, &bad),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn empty_batch_round_trips() {
        let s = schema();
        let batch = Batch::from_records(s, &[]).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.to_records(), Vec::<Record>::new());
        assert_eq!(batch.wire_size(), 0);
    }
}
