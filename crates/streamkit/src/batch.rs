//! Columnar batches — the unit of dataflow.
//!
//! Since the batch-first operator redesign, `Batch` is not just the wire
//! format: every operator consumes and produces batches, sources generate
//! them directly, and the engines queue them end-to-end. This module is the
//! in-repo stand-in for the Arrow/Kryo layer the paper's implementation
//! relied on, and [`layout`] is the single source of truth for wire-size
//! accounting (row-oriented [`Record::wire_size`] delegates to it too).

use std::ops::Range;

use bytes::Bytes;

use crate::error::{Error, Result};
use crate::record::Record;
use crate::schema::{DataType, Schema, SchemaRef};
use crate::time::Ts;
use crate::value::Value;

/// The canonical wire layout: every byte the network accounting charges is
/// derived from these rules, whether the caller holds a `Record` or a
/// [`Batch`].
pub mod layout {
    use super::{DataType, Schema, Value};

    /// Length prefix carried by every string value on the wire.
    pub const STR_LEN_PREFIX_BYTES: usize = 2;

    /// Per-row envelope: the 8-byte event timestamp plus the schema's
    /// serialisation overhead.
    pub fn row_envelope(schema: &Schema) -> usize {
        Schema::TS_WIRE_BYTES + schema.record_overhead()
    }

    /// Encoded size of one string payload of `len` bytes.
    pub fn str_bytes(len: usize) -> usize {
        STR_LEN_PREFIX_BYTES + len
    }

    /// Encoded size of one value under a column type. `Null` occupies the
    /// column's default footprint (an empty string / a zeroed fixed slot).
    pub fn value_bytes(dtype: DataType, value: &Value) -> usize {
        match dtype {
            DataType::Str => str_bytes(value.as_str().map_or(0, str::len)),
            other => other.fixed_width().unwrap_or(0),
        }
    }
}

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Booleans.
    Bool(Vec<bool>),
    /// Signed 64-bit (also backs I32 columns).
    I64(Vec<i64>),
    /// Unsigned 64-bit (also backs U32 columns).
    U64(Vec<u64>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// Strings: `offsets.len() == rows + 1`, UTF-8 bytes in `data`.
    Str { offsets: Vec<u32>, data: Bytes },
    /// A column with missing values: `values` stores type-default fillers at
    /// invalid rows (outer-join misses, empty aggregates).
    Opt {
        /// Per-row validity; `false` reads as [`Value::Null`].
        valid: Vec<bool>,
        /// The dense backing column.
        values: Box<Column>,
    },
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::U64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Str { offsets, .. } => offsets.len().saturating_sub(1),
            Column::Opt { valid, .. } => valid.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `row`.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Bool(v) => Value::Bool(v[row]),
            Column::I64(v) => Value::I64(v[row]),
            Column::U64(v) => Value::U64(v[row]),
            Column::F64(v) => Value::F64(v[row]),
            Column::Str { .. } => Value::str(self.str_at(row).unwrap_or("")),
            Column::Opt { valid, values } => {
                if valid[row] {
                    values.value(row)
                } else {
                    Value::Null
                }
            }
        }
    }

    /// Numeric view of the value at `row` (`None` for strings and nulls);
    /// the columnar fast path behind aggregate updates.
    pub fn f64_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::Bool(v) => Some(if v[row] { 1.0 } else { 0.0 }),
            Column::I64(v) => Some(v[row] as f64),
            Column::U64(v) => Some(v[row] as f64),
            Column::F64(v) => Some(v[row]),
            Column::Str { .. } => None,
            Column::Opt { valid, values } => {
                if valid[row] {
                    values.f64_at(row)
                } else {
                    None
                }
            }
        }
    }

    /// Borrowed string at `row` (`None` for non-string columns and nulls).
    pub fn str_at(&self, row: usize) -> Option<&str> {
        match self {
            Column::Str { offsets, data } => {
                let lo = offsets[row] as usize;
                let hi = offsets[row + 1] as usize;
                std::str::from_utf8(&data[lo..hi]).ok()
            }
            Column::Opt { valid, values } => {
                if valid[row] {
                    values.str_at(row)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Copies the rows in `range` into a new column.
    pub fn slice(&self, range: Range<usize>) -> Column {
        match self {
            Column::Bool(v) => Column::Bool(v[range].to_vec()),
            Column::I64(v) => Column::I64(v[range].to_vec()),
            Column::U64(v) => Column::U64(v[range].to_vec()),
            Column::F64(v) => Column::F64(v[range].to_vec()),
            Column::Str { offsets, data } => {
                let base = offsets[range.start];
                let new_offsets: Vec<u32> = offsets[range.start..=range.end]
                    .iter()
                    .map(|o| o - base)
                    .collect();
                let lo = offsets[range.start] as usize;
                let hi = offsets[range.end] as usize;
                Column::Str {
                    offsets: new_offsets,
                    data: data.slice(lo..hi),
                }
            }
            Column::Opt { valid, values } => Column::Opt {
                valid: valid[range.clone()].to_vec(),
                values: Box::new(values.slice(range)),
            },
        }
    }

    /// Gathers the rows where `mask` is true into a new column.
    /// `mask.len()` must equal the column length.
    pub fn select(&self, mask: &[bool]) -> Column {
        debug_assert_eq!(mask.len(), self.len());
        let gather = |keep: &[bool]| keep.iter().filter(|&&k| k).count();
        match self {
            Column::Bool(v) => Column::Bool(filter_by(v, mask)),
            Column::I64(v) => Column::I64(filter_by(v, mask)),
            Column::U64(v) => Column::U64(filter_by(v, mask)),
            Column::F64(v) => Column::F64(filter_by(v, mask)),
            Column::Str { offsets, data } => {
                let kept = gather(mask);
                let mut new_offsets = Vec::with_capacity(kept + 1);
                new_offsets.push(0u32);
                let total: usize = mask
                    .iter()
                    .enumerate()
                    .filter(|(_, &k)| k)
                    .map(|(i, _)| (offsets[i + 1] - offsets[i]) as usize)
                    .sum();
                let mut new_data = Vec::with_capacity(total);
                for (i, &keep) in mask.iter().enumerate() {
                    if keep {
                        let lo = offsets[i] as usize;
                        let hi = offsets[i + 1] as usize;
                        new_data.extend_from_slice(&data[lo..hi]);
                        new_offsets.push(new_data.len() as u32);
                    }
                }
                Column::Str {
                    offsets: new_offsets,
                    data: Bytes::from(new_data),
                }
            }
            Column::Opt { valid, values } => Column::Opt {
                valid: filter_by(valid, mask),
                values: Box::new(values.select(mask)),
            },
        }
    }

    /// Wire bytes of the column payload under its schema type (excluding the
    /// per-row envelope, which the batch accounts once per row).
    pub fn wire_bytes(&self, dtype: DataType) -> usize {
        match self {
            Column::Str { offsets, data } => {
                layout::STR_LEN_PREFIX_BYTES * offsets.len().saturating_sub(1) + data.len()
            }
            Column::Opt { values, .. } => values.wire_bytes(dtype),
            col => dtype.fixed_width().unwrap_or(0) * col.len(),
        }
    }
}

fn filter_by<T: Copy>(values: &[T], mask: &[bool]) -> Vec<T> {
    values
        .iter()
        .zip(mask)
        .filter(|(_, &k)| k)
        .map(|(v, _)| *v)
        .collect()
}

/// A batch of records in columnar form: timestamps + one column per field.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Schema describing `columns`.
    pub schema: SchemaRef,
    /// Event timestamps, one per row.
    pub timestamps: Vec<Ts>,
    /// Columns, positionally matching the schema.
    pub columns: Vec<Column>,
}

impl Batch {
    /// An empty batch of `schema`.
    pub fn empty(schema: SchemaRef) -> Batch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype, 0).finish())
            .collect();
        Batch {
            schema,
            timestamps: Vec::new(),
            columns,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Builds a columnar batch from row-oriented records.
    pub fn from_records(schema: SchemaRef, records: &[Record]) -> Result<Batch> {
        let mut b = BatchBuilder::new(schema, records.len());
        for rec in records {
            b.push_record(rec)?;
        }
        Ok(b.finish())
    }

    /// Converts back to row-oriented records.
    pub fn to_records(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.len());
        for row in 0..self.len() {
            let values = self.columns.iter().map(|c| c.value(row)).collect();
            out.push(Record::new(self.timestamps[row], values));
        }
        out
    }

    /// Copies the rows in `range` into a new batch.
    pub fn slice(&self, range: Range<usize>) -> Batch {
        Batch {
            schema: self.schema.clone(),
            timestamps: self.timestamps[range.clone()].to_vec(),
            columns: self
                .columns
                .iter()
                .map(|c| c.slice(range.clone()))
                .collect(),
        }
    }

    /// Gathers the rows where `mask` is true into a new batch (the
    /// vectorized filter's gather step).
    pub fn select(&self, mask: &[bool]) -> Batch {
        debug_assert_eq!(mask.len(), self.len());
        Batch {
            schema: self.schema.clone(),
            timestamps: filter_by(&self.timestamps, mask),
            columns: self.columns.iter().map(|c| c.select(mask)).collect(),
        }
    }

    /// Relabels the batch with `schema` when every column's physical storage
    /// is compatible with the schema's declared types (engines use this so
    /// wire accounting follows the *plan's* schema rather than whatever a
    /// generator tagged — e.g. trace replay infers U64 for U32 fields).
    /// Returns `false`, leaving the batch untouched, when the shapes don't
    /// line up.
    pub fn relabel(&mut self, schema: &SchemaRef) -> bool {
        fn compatible(dtype: DataType, col: &Column) -> bool {
            match col {
                Column::Bool(_) => dtype == DataType::Bool,
                Column::I64(_) => matches!(dtype, DataType::I32 | DataType::I64),
                Column::U64(_) => matches!(dtype, DataType::U32 | DataType::U64),
                Column::F64(_) => dtype == DataType::F64,
                Column::Str { .. } => dtype == DataType::Str,
                Column::Opt { values, .. } => compatible(dtype, values),
            }
        }
        if schema.width() != self.columns.len()
            || !schema
                .fields()
                .iter()
                .zip(&self.columns)
                .all(|(f, c)| compatible(f.dtype, c))
        {
            return false;
        }
        self.schema = schema.clone();
        true
    }

    /// Splits the batch into row chunks of at most `rows` each (the last
    /// chunk may be shorter). A batch that fits in one chunk is cloned
    /// whole without re-slicing.
    pub fn chunks(&self, rows: usize) -> impl Iterator<Item = Batch> + '_ {
        let rows = rows.max(1);
        let n = self.len();
        let count = if n == 0 { 0 } else { n.div_ceil(rows) };
        (0..count).map(move |c| {
            let start = c * rows;
            let end = (start + rows).min(n);
            if start == 0 && end == n {
                self.clone()
            } else {
                self.slice(start..end)
            }
        })
    }

    /// Total encoded size in bytes. Derived from [`layout`], so it agrees
    /// with [`Record::wire_size`] summed over rows by construction.
    pub fn wire_size(&self) -> usize {
        let mut size = self.len() * layout::row_envelope(&self.schema);
        for (field, col) in self.schema.fields().iter().zip(&self.columns) {
            size += col.wire_bytes(field.dtype);
        }
        size
    }
}

/// Incremental builder for one column.
pub struct ColumnBuilder {
    dtype: DataType,
    bools: Vec<bool>,
    ints: Vec<i64>,
    uints: Vec<u64>,
    floats: Vec<f64>,
    offsets: Vec<u32>,
    strs: Vec<u8>,
    /// Validity, allocated lazily on the first `Null`.
    nulls: Option<Vec<bool>>,
    rows: usize,
}

impl ColumnBuilder {
    /// Creates a builder for a column of `dtype`, reserving `capacity` rows.
    pub fn new(dtype: DataType, capacity: usize) -> ColumnBuilder {
        let mut b = ColumnBuilder {
            dtype,
            bools: Vec::new(),
            ints: Vec::new(),
            uints: Vec::new(),
            floats: Vec::new(),
            offsets: Vec::new(),
            strs: Vec::new(),
            nulls: None,
            rows: 0,
        };
        match dtype {
            DataType::Bool => b.bools.reserve(capacity),
            DataType::I32 | DataType::I64 => b.ints.reserve(capacity),
            DataType::U32 | DataType::U64 => b.uints.reserve(capacity),
            DataType::F64 => b.floats.reserve(capacity),
            DataType::Str => {
                b.offsets.reserve(capacity + 1);
                b.offsets.push(0);
            }
        }
        b
    }

    fn mark(&mut self, valid: bool) {
        if let Some(nulls) = &mut self.nulls {
            nulls.push(valid);
        } else if !valid {
            let mut nulls = vec![true; self.rows];
            nulls.push(false);
            self.nulls = Some(nulls);
        }
        self.rows += 1;
    }

    /// Appends one value. `Null` is recorded in the validity mask with a
    /// type-default filler in the dense storage.
    pub fn push(&mut self, value: &Value) -> Result<()> {
        if value.is_null() {
            self.push_null();
            return Ok(());
        }
        let mismatch = || Error::TypeMismatch {
            expected: match self.dtype {
                DataType::Bool => "bool",
                DataType::I32 | DataType::I64 => "i64",
                DataType::U32 | DataType::U64 => "u64",
                DataType::F64 => "f64",
                DataType::Str => "str",
            },
            got: value.type_name(),
        };
        match self.dtype {
            DataType::Bool => self.bools.push(value.as_bool().ok_or_else(mismatch)?),
            DataType::I32 | DataType::I64 => self.ints.push(value.as_i64().ok_or_else(mismatch)?),
            DataType::U32 | DataType::U64 => match value {
                Value::U64(v) => self.uints.push(*v),
                Value::I64(v) if *v >= 0 => self.uints.push(*v as u64),
                _ => return Err(mismatch()),
            },
            DataType::F64 => self.floats.push(value.as_f64().ok_or_else(mismatch)?),
            DataType::Str => {
                let s = value.as_str().ok_or_else(mismatch)?;
                self.strs.extend_from_slice(s.as_bytes());
                self.offsets.push(self.strs.len() as u32);
            }
        }
        self.mark(true);
        Ok(())
    }

    /// Appends a `Null` row.
    pub fn push_null(&mut self) {
        match self.dtype {
            DataType::Bool => self.bools.push(false),
            DataType::I32 | DataType::I64 => self.ints.push(0),
            DataType::U32 | DataType::U64 => self.uints.push(0),
            DataType::F64 => self.floats.push(0.0),
            DataType::Str => self.offsets.push(self.strs.len() as u32),
        }
        self.mark(false);
    }

    /// Appends a string without constructing a `Value` (string columns only).
    pub fn push_str(&mut self, s: &str) -> Result<()> {
        if self.dtype != DataType::Str {
            return Err(Error::TypeMismatch {
                expected: "str column",
                got: "str",
            });
        }
        self.strs.extend_from_slice(s.as_bytes());
        self.offsets.push(self.strs.len() as u32);
        self.mark(true);
        Ok(())
    }

    /// Finishes the column.
    pub fn finish(self) -> Column {
        let dense = match self.dtype {
            DataType::Bool => Column::Bool(self.bools),
            DataType::I32 | DataType::I64 => Column::I64(self.ints),
            DataType::U32 | DataType::U64 => Column::U64(self.uints),
            DataType::F64 => Column::F64(self.floats),
            DataType::Str => Column::Str {
                offsets: self.offsets,
                data: Bytes::from(self.strs),
            },
        };
        match self.nulls {
            Some(valid) => Column::Opt {
                valid,
                values: Box::new(dense),
            },
            None => dense,
        }
    }
}

/// Incremental row-at-a-time builder for a whole batch (operator emission
/// paths that compute output rows, e.g. closed-window aggregates).
pub struct BatchBuilder {
    schema: SchemaRef,
    timestamps: Vec<Ts>,
    builders: Vec<ColumnBuilder>,
}

impl BatchBuilder {
    /// Creates a builder for `schema`, reserving `capacity` rows.
    pub fn new(schema: SchemaRef, capacity: usize) -> BatchBuilder {
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype, capacity))
            .collect();
        BatchBuilder {
            schema,
            timestamps: Vec::with_capacity(capacity),
            builders,
        }
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Appends one row from a timestamp and positional values.
    pub fn push_row(&mut self, ts: Ts, values: &[Value]) -> Result<()> {
        if values.len() != self.builders.len() {
            return Err(Error::InvalidPlan(format!(
                "row width {} does not match schema width {}",
                values.len(),
                self.builders.len()
            )));
        }
        self.timestamps.push(ts);
        for (builder, value) in self.builders.iter_mut().zip(values) {
            builder.push(value)?;
        }
        Ok(())
    }

    /// Appends one record.
    pub fn push_record(&mut self, rec: &Record) -> Result<()> {
        self.push_row(rec.ts, &rec.values)
    }

    /// Finishes the batch.
    pub fn finish(self) -> Batch {
        Batch {
            schema: self.schema,
            timestamps: self.timestamps,
            columns: self
                .builders
                .into_iter()
                .map(ColumnBuilder::finish)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::wire_size_of;
    use crate::schema::Field;

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("id", DataType::U32),
            Field::new("score", DataType::F64),
            Field::new("tag", DataType::Str),
        ])
    }

    fn records() -> Vec<Record> {
        vec![
            Record::new(1, vec![Value::U64(7), Value::F64(0.5), Value::str("a")]),
            Record::new(2, vec![Value::U64(8), Value::F64(1.5), Value::str("bc")]),
            Record::new(3, vec![Value::U64(9), Value::F64(2.5), Value::str("")]),
        ]
    }

    #[test]
    fn round_trip_preserves_records() {
        let s = schema();
        let recs = records();
        let batch = Batch::from_records(s.clone(), &recs).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.to_records(), recs);
    }

    #[test]
    fn wire_size_matches_row_accounting() {
        let s = schema();
        let recs = records();
        let batch = Batch::from_records(s.clone(), &recs).unwrap();
        assert_eq!(batch.wire_size(), wire_size_of(&recs, &s));
    }

    #[test]
    fn wire_size_matches_row_accounting_with_nulls() {
        // The batch layout is the single source of truth: rows with Null
        // values must account identically through both paths.
        let s = schema();
        let recs = vec![
            Record::new(1, vec![Value::U64(7), Value::Null, Value::str("xy")]),
            Record::new(2, vec![Value::U64(8), Value::F64(1.0), Value::Null]),
        ];
        let batch = Batch::from_records(s.clone(), &recs).unwrap();
        assert_eq!(batch.wire_size(), wire_size_of(&recs, &s));
        assert_eq!(batch.to_records(), recs);
    }

    #[test]
    fn width_mismatch_is_an_error() {
        let s = schema();
        let bad = vec![Record::new(0, vec![Value::U64(1)])];
        assert!(Batch::from_records(s, &bad).is_err());
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let s = schema();
        let bad = vec![Record::new(
            0,
            vec![Value::str("not-u32"), Value::F64(0.0), Value::str("x")],
        )];
        assert!(matches!(
            Batch::from_records(s, &bad),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn empty_batch_round_trips() {
        let s = schema();
        let batch = Batch::from_records(s, &[]).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.to_records(), Vec::<Record>::new());
        assert_eq!(batch.wire_size(), 0);
    }

    #[test]
    fn column_is_empty_tracks_rows() {
        let empty = ColumnBuilder::new(DataType::Str, 0).finish();
        assert!(empty.is_empty());
        let mut b = ColumnBuilder::new(DataType::Str, 1);
        b.push(&Value::str("x")).unwrap();
        let col = b.finish();
        assert!(!col.is_empty());
        assert_eq!(col.len(), 1);
    }

    #[test]
    fn slice_copies_a_row_range() {
        let s = schema();
        let recs = records();
        let batch = Batch::from_records(s, &recs).unwrap();
        let mid = batch.slice(1..3);
        assert_eq!(mid.len(), 2);
        assert_eq!(mid.to_records(), recs[1..3].to_vec());
        let empty = batch.slice(2..2);
        assert!(empty.is_empty());
        // Slicing must not disturb string offsets of later rows.
        assert_eq!(mid.columns[2].str_at(0), Some("bc"));
        assert_eq!(mid.columns[2].str_at(1), Some(""));
    }

    #[test]
    fn select_gathers_masked_rows() {
        let s = schema();
        let recs = records();
        let batch = Batch::from_records(s, &recs).unwrap();
        let picked = batch.select(&[true, false, true]);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked.to_records(), vec![recs[0].clone(), recs[2].clone()]);
        assert!(batch.select(&[false, false, false]).is_empty());
    }

    #[test]
    fn slice_and_select_preserve_nulls() {
        let s = schema();
        let recs = vec![
            Record::new(1, vec![Value::U64(1), Value::Null, Value::str("a")]),
            Record::new(2, vec![Value::U64(2), Value::F64(2.0), Value::Null]),
            Record::new(3, vec![Value::Null, Value::F64(3.0), Value::str("c")]),
        ];
        let batch = Batch::from_records(s, &recs).unwrap();
        assert_eq!(batch.slice(1..3).to_records(), recs[1..3].to_vec());
        assert_eq!(
            batch.select(&[true, false, true]).to_records(),
            vec![recs[0].clone(), recs[2].clone()]
        );
    }

    #[test]
    fn relabel_requires_physical_compatibility() {
        let recs = records();
        let mut batch = Batch::from_records(schema(), &recs).unwrap();
        // Same storage classes, different declared widths: compatible.
        let wider = Schema::with_overhead(
            vec![
                Field::new("id", DataType::U64),
                Field::new("score", DataType::F64),
                Field::new("tag", DataType::Str),
            ],
            50,
        );
        assert!(batch.relabel(&wider));
        assert_eq!(batch.schema, wider);
        assert_eq!(
            batch.wire_size(),
            3 * (8 + 50 + 8 + 8) + (2 + 1) + (2 + 2) + 2
        );
        // Type-incompatible relabel is refused and leaves the batch alone.
        let wrong = Schema::new(vec![
            Field::new("a", DataType::Str),
            Field::new("b", DataType::F64),
            Field::new("c", DataType::Str),
        ]);
        assert!(!batch.relabel(&wrong));
        assert_eq!(batch.schema, wider);
        // Width mismatch is refused too.
        assert!(!batch.relabel(&Schema::new(vec![Field::new("x", DataType::U64)])));
    }

    #[test]
    fn chunks_cover_all_rows_in_order() {
        let s = schema();
        let recs = records();
        let batch = Batch::from_records(s, &recs).unwrap();
        let chunks: Vec<Batch> = batch.chunks(2).collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(chunks[1].len(), 1);
        let rows: Vec<Record> = chunks.iter().flat_map(Batch::to_records).collect();
        assert_eq!(rows, recs);
        // Whole batch in one chunk; empty batch yields no chunks.
        assert_eq!(batch.chunks(10).count(), 1);
        assert_eq!(batch.slice(0..0).chunks(4).count(), 0);
    }

    #[test]
    fn batch_builder_matches_from_records() {
        let s = schema();
        let recs = records();
        let mut b = BatchBuilder::new(s.clone(), recs.len());
        for r in &recs {
            b.push_record(r).unwrap();
        }
        assert_eq!(b.finish(), Batch::from_records(s, &recs).unwrap());
    }
}
