//! Wire encoding for batches.
//!
//! A compact, length-prefixed little-endian format standing in for the Kryo
//! serialisation the paper's implementation uses between MiNiFi and NiFi.
//! The encoded length is what links in `simnet` charge against bandwidth.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::batch::{Batch, Column};
use crate::error::{Error, Result};
use crate::schema::{DataType, SchemaRef};

const MAGIC: u32 = 0x4A52_5653; // "JRVS"

/// Encodes a batch. The receiver must know the schema (schemas are fixed per
/// query edge, as in the paper's deployments).
pub fn encode_batch(batch: &Batch) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + batch.wire_size());
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(batch.len() as u32);
    for ts in &batch.timestamps {
        buf.put_i64_le(*ts);
    }
    for col in &batch.columns {
        // Presence flag: 1 = a validity byte per row precedes the payload.
        let (col, valid) = match col {
            Column::Opt { valid, values } => (values.as_ref(), Some(valid)),
            dense => (dense, None),
        };
        match valid {
            Some(valid) => {
                buf.put_u8(1);
                for v in valid {
                    buf.put_u8(u8::from(*v));
                }
            }
            None => buf.put_u8(0),
        }
        match col {
            Column::Bool(v) => {
                for b in v {
                    buf.put_u8(u8::from(*b));
                }
            }
            Column::I64(v) => {
                for x in v {
                    buf.put_i64_le(*x);
                }
            }
            Column::U64(v) => {
                for x in v {
                    buf.put_u64_le(*x);
                }
            }
            Column::F64(v) => {
                for x in v {
                    buf.put_f64_le(*x);
                }
            }
            Column::Str { offsets, data } => {
                for w in offsets.windows(2) {
                    let (lo, hi) = (w[0] as usize, w[1] as usize);
                    buf.put_u16_le((hi - lo) as u16);
                    buf.put_slice(&data[lo..hi]);
                }
            }
            Column::Opt { .. } => unreachable!("validity unwrapped above"),
        }
    }
    buf.freeze()
}

/// Decodes a batch previously produced by [`encode_batch`] for `schema`.
pub fn decode_batch(schema: SchemaRef, mut buf: Bytes) -> Result<Batch> {
    let need = |buf: &Bytes, n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(Error::Decode(format!(
                "buffer underrun: need {n}, have {}",
                buf.remaining()
            )))
        } else {
            Ok(())
        }
    };
    need(&buf, 8)?;
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(Error::Decode(format!("bad magic {magic:#x}")));
    }
    let rows = buf.get_u32_le() as usize;
    need(&buf, rows * 8)?;
    let mut timestamps = Vec::with_capacity(rows);
    for _ in 0..rows {
        timestamps.push(buf.get_i64_le());
    }
    let mut columns = Vec::with_capacity(schema.width());
    for field in schema.fields() {
        need(&buf, 1)?;
        let valid = if buf.get_u8() != 0 {
            need(&buf, rows)?;
            Some((0..rows).map(|_| buf.get_u8() != 0).collect::<Vec<_>>())
        } else {
            None
        };
        let col = match field.dtype {
            DataType::Bool => {
                need(&buf, rows)?;
                Column::Bool((0..rows).map(|_| buf.get_u8() != 0).collect())
            }
            DataType::I32 | DataType::I64 => {
                need(&buf, rows * 8)?;
                Column::I64((0..rows).map(|_| buf.get_i64_le()).collect())
            }
            DataType::U32 | DataType::U64 => {
                need(&buf, rows * 8)?;
                Column::U64((0..rows).map(|_| buf.get_u64_le()).collect())
            }
            DataType::F64 => {
                need(&buf, rows * 8)?;
                Column::F64((0..rows).map(|_| buf.get_f64_le()).collect())
            }
            DataType::Str => {
                let mut offsets = Vec::with_capacity(rows + 1);
                offsets.push(0u32);
                let mut data = Vec::new();
                for _ in 0..rows {
                    need(&buf, 2)?;
                    let len = buf.get_u16_le() as usize;
                    need(&buf, len)?;
                    data.extend_from_slice(&buf.chunk()[..len]);
                    buf.advance(len);
                    offsets.push(data.len() as u32);
                }
                Column::Str {
                    offsets,
                    data: Bytes::from(data),
                }
            }
        };
        columns.push(match valid {
            Some(valid) => Column::Opt {
                valid,
                values: Box::new(col),
            },
            None => col,
        });
    }
    Ok(Batch {
        schema,
        timestamps,
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::{Field, Schema};
    use crate::value::Value;

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("ip", DataType::U32),
            Field::new("rtt", DataType::F64),
            Field::new("tenant", DataType::Str),
            Field::new("ok", DataType::Bool),
        ])
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = schema();
        let recs = vec![
            Record::new(
                100,
                vec![
                    Value::U64(1),
                    Value::F64(0.2),
                    Value::str("t0"),
                    Value::Bool(true),
                ],
            ),
            Record::new(
                200,
                vec![
                    Value::U64(2),
                    Value::F64(5.5),
                    Value::str(""),
                    Value::Bool(false),
                ],
            ),
        ];
        let batch = Batch::from_records(s.clone(), &recs).unwrap();
        let bytes = encode_batch(&batch);
        let back = decode_batch(s, bytes).unwrap();
        assert_eq!(back.to_records(), recs);
    }

    #[test]
    fn null_values_round_trip() {
        let s = schema();
        let recs = vec![
            Record::new(
                1,
                vec![
                    Value::U64(1),
                    Value::Null,
                    Value::str("t"),
                    Value::Bool(true),
                ],
            ),
            Record::new(
                2,
                vec![
                    Value::Null,
                    Value::F64(1.0),
                    Value::Null,
                    Value::Bool(false),
                ],
            ),
        ];
        let batch = Batch::from_records(s.clone(), &recs).unwrap();
        let back = decode_batch(s, encode_batch(&batch)).unwrap();
        assert_eq!(back.to_records(), recs);
    }

    #[test]
    fn bad_magic_rejected() {
        let s = schema();
        let err = decode_batch(s, Bytes::from_static(&[0u8; 16])).unwrap_err();
        assert!(matches!(err, Error::Decode(_)));
    }

    #[test]
    fn truncated_buffer_rejected() {
        let s = schema();
        let recs = vec![Record::new(
            1,
            vec![
                Value::U64(1),
                Value::F64(0.0),
                Value::str("abc"),
                Value::Bool(true),
            ],
        )];
        let batch = Batch::from_records(s.clone(), &recs).unwrap();
        let bytes = encode_batch(&batch);
        let cut = bytes.slice(0..bytes.len() - 2);
        assert!(decode_batch(s, cut).is_err());
    }
}
