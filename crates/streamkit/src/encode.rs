//! Wire encoding for batches.
//!
//! A compact, length-prefixed little-endian format standing in for the Kryo
//! serialisation the paper's implementation uses between MiNiFi and NiFi.
//! The encoded length is what links in `simnet` charge against bandwidth.

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::agg::AggState;
use crate::batch::{Batch, Column, DictDelta, DictRegistry, DictVersions, StrDict};
use crate::error::{Error, Result};
use crate::ops::GroupPartialEntry;
use crate::quantile::QuantileSketch;
use crate::schema::{DataType, SchemaRef};
use crate::value::Value;

const MAGIC: u32 = 0x4A52_5653; // "JRVS"

/// Page tag for a plain string column (per-row length-prefixed payloads).
const STR_PAGE_PLAIN: u8 = 0;
/// Page tag for a dictionary string column (dictionary page + u32 codes).
const STR_PAGE_DICT: u8 = 1;
/// Page tag for a persistent-dictionary delta page: dict id, base version,
/// newly appended entries (with checksum), then u32 codes. Ships only what
/// the receiver's mirror is missing; `base == 0` is the first-contact full
/// page.
const STR_PAGE_DICT_DELTA: u8 = 2;

/// Encodes a batch. The receiver must know the schema (schemas are fixed per
/// query edge, as in the paper's deployments).
///
/// Every dictionary column ships its full page — the frame is
/// self-contained, decodable by [`decode_batch`] with no link state. Use
/// [`encode_batch_with`] on established links to ship persistent-dictionary
/// deltas instead.
pub fn encode_batch(batch: &Batch) -> Bytes {
    encode_batch_impl(batch, None)
}

/// Encodes a batch for a specific link, shipping persistent dictionary
/// columns as delta pages: codes plus only the entries appended since the
/// link's last ship (tracked and advanced in `link`; drop an entry from the
/// map — or the whole map — to force a full re-handshake after recovery).
/// Batch-local dictionaries (id 0) still ship full pages. Decode with
/// [`decode_batch_with`] against the receiving end's [`DictRegistry`].
pub fn encode_batch_with(batch: &Batch, link: &mut DictVersions) -> Bytes {
    encode_batch_impl(batch, Some(link))
}

fn encode_batch_impl(batch: &Batch, mut link: Option<&mut DictVersions>) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + batch.wire_size());
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(batch.len() as u32);
    for ts in &batch.timestamps {
        buf.put_i64_le(*ts);
    }
    for col in &batch.columns {
        // Presence flag: 1 = a validity byte per row precedes the payload.
        let (col, valid) = match col {
            Column::Opt { valid, values } => (values.as_ref(), Some(valid)),
            dense => (dense, None),
        };
        match valid {
            Some(valid) => {
                buf.put_u8(1);
                for v in valid {
                    buf.put_u8(u8::from(*v));
                }
            }
            None => buf.put_u8(0),
        }
        match col {
            Column::Bool(v) => {
                for b in v {
                    buf.put_u8(u8::from(*b));
                }
            }
            Column::I64(v) => {
                for x in v {
                    buf.put_i64_le(*x);
                }
            }
            Column::U64(v) => {
                for x in v {
                    buf.put_u64_le(*x);
                }
            }
            Column::F64(v) => {
                for x in v {
                    buf.put_f64_le(*x);
                }
            }
            Column::Str { offsets, data } => {
                buf.put_u8(STR_PAGE_PLAIN);
                for w in offsets.windows(2) {
                    let (lo, hi) = (w[0] as usize, w[1] as usize);
                    buf.put_u16_le((hi - lo) as u16);
                    buf.put_slice(&data[lo..hi]);
                }
            }
            Column::Dict { codes, dict } => match link.as_deref_mut().filter(|_| dict.id() != 0) {
                Some(link) => {
                    // Persistent page on an established link: ship only the
                    // delta past the receiver's mirrored version — the wire
                    // shape `layout::dict_bytes_versioned` accounts for.
                    let sent = link.entry(dict.id()).or_insert(0);
                    let base = (*sent).min(dict.len() as u32);
                    let delta = if codes.is_empty() {
                        // An empty column ships no entries and must not
                        // advance the mirror (accounting charges nothing).
                        DictDelta {
                            dict_id: dict.id(),
                            base,
                            entries: Vec::new(),
                        }
                    } else {
                        *sent = (*sent).max(dict.len() as u32);
                        dict.delta_since(base)
                    };
                    buf.put_u8(STR_PAGE_DICT_DELTA);
                    buf.put_u64_le(delta.dict_id);
                    buf.put_u32_le(delta.base);
                    buf.put_u32_le(delta.entries.len() as u32);
                    buf.put_u64_le(delta.checksum());
                    for entry in &delta.entries {
                        debug_assert!(
                            entry.len() <= u16::MAX as usize,
                            "dict entry exceeds the u16 wire length prefix"
                        );
                        buf.put_u16_le(entry.len() as u16);
                        buf.put_slice(entry.as_bytes());
                    }
                    for c in codes {
                        buf.put_u32_le(*c);
                    }
                }
                None => {
                    // Dictionary page once, then one fixed-width code per
                    // row — the wire shape `layout::dict_bytes` accounts
                    // for. Self-contained: checkpoint/replay frames stay on
                    // this path even for persistent pages.
                    buf.put_u8(STR_PAGE_DICT);
                    buf.put_u32_le(dict.len() as u32);
                    for entry in dict.iter() {
                        // The u16 length prefix caps entries at 64 KiB;
                        // Column::dict_encode refuses longer values upstream.
                        debug_assert!(
                            entry.len() <= u16::MAX as usize,
                            "dict entry exceeds the u16 wire length prefix"
                        );
                        buf.put_u16_le(entry.len() as u16);
                        buf.put_slice(entry.as_bytes());
                    }
                    for c in codes {
                        buf.put_u32_le(*c);
                    }
                }
            },
            Column::Opt { .. } => unreachable!("validity unwrapped above"),
        }
    }
    buf.freeze()
}

/// Decodes a batch previously produced by [`encode_batch`] for `schema`.
/// Delta pages ([`encode_batch_with`]) are rejected with a typed error —
/// they need the link's [`DictRegistry`] (see [`decode_batch_with`]).
pub fn decode_batch(schema: SchemaRef, buf: Bytes) -> Result<Batch> {
    decode_batch_impl(schema, buf, None)
}

/// Decodes a batch from a link that ships persistent-dictionary deltas
/// ([`encode_batch_with`]), applying each delta page to `registry` (which
/// mirrors the sender's dictionaries for this link). Out-of-order deltas,
/// version mismatches, and checksum failures are typed decode errors.
pub fn decode_batch_with(
    schema: SchemaRef,
    buf: Bytes,
    registry: &mut DictRegistry,
) -> Result<Batch> {
    decode_batch_impl(schema, buf, Some(registry))
}

fn decode_batch_impl(
    schema: SchemaRef,
    mut buf: Bytes,
    mut registry: Option<&mut DictRegistry>,
) -> Result<Batch> {
    let need = |buf: &Bytes, n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(Error::Decode(format!(
                "buffer underrun: need {n}, have {}",
                buf.remaining()
            )))
        } else {
            Ok(())
        }
    };
    need(&buf, 8)?;
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(Error::Decode(format!("bad magic {magic:#x}")));
    }
    let rows = buf.get_u32_le() as usize;
    need(&buf, rows * 8)?;
    let mut timestamps = Vec::with_capacity(rows);
    for _ in 0..rows {
        timestamps.push(buf.get_i64_le());
    }
    let mut columns = Vec::with_capacity(schema.width());
    for field in schema.fields() {
        need(&buf, 1)?;
        let valid = if buf.get_u8() != 0 {
            need(&buf, rows)?;
            Some((0..rows).map(|_| buf.get_u8() != 0).collect::<Vec<_>>())
        } else {
            None
        };
        let col = match field.dtype {
            DataType::Bool => {
                need(&buf, rows)?;
                Column::Bool((0..rows).map(|_| buf.get_u8() != 0).collect())
            }
            DataType::I32 | DataType::I64 => {
                need(&buf, rows * 8)?;
                Column::I64((0..rows).map(|_| buf.get_i64_le()).collect())
            }
            DataType::U32 | DataType::U64 => {
                need(&buf, rows * 8)?;
                Column::U64((0..rows).map(|_| buf.get_u64_le()).collect())
            }
            DataType::F64 => {
                need(&buf, rows * 8)?;
                Column::F64((0..rows).map(|_| buf.get_f64_le()).collect())
            }
            DataType::Str => {
                need(&buf, 1)?;
                match buf.get_u8() {
                    STR_PAGE_PLAIN => {
                        let mut offsets = Vec::with_capacity(rows + 1);
                        offsets.push(0u32);
                        let mut data = Vec::new();
                        for _ in 0..rows {
                            need(&buf, 2)?;
                            let len = buf.get_u16_le() as usize;
                            need(&buf, len)?;
                            data.extend_from_slice(&buf.chunk()[..len]);
                            buf.advance(len);
                            offsets.push(data.len() as u32);
                        }
                        // Wire data is untrusted: enforce the Column::Str
                        // invariant per row — every payload must be valid
                        // UTF-8 on its own, not merely as a concatenation
                        // (split multi-byte sequences must be rejected).
                        for w in offsets.windows(2) {
                            std::str::from_utf8(&data[w[0] as usize..w[1] as usize]).map_err(
                                |e| Error::Decode(format!("invalid UTF-8 payload: {e}")),
                            )?;
                        }
                        Column::Str {
                            offsets,
                            data: Bytes::from(data),
                        }
                    }
                    STR_PAGE_DICT => {
                        need(&buf, 4)?;
                        let entries = buf.get_u32_le() as usize;
                        let mut dict = StrDict::new();
                        for _ in 0..entries {
                            need(&buf, 2)?;
                            let len = buf.get_u16_le() as usize;
                            need(&buf, len)?;
                            let entry = std::str::from_utf8(&buf.chunk()[..len])
                                .map_err(|e| {
                                    Error::Decode(format!("invalid UTF-8 dict entry: {e}"))
                                })?
                                .to_string();
                            buf.advance(len);
                            dict.push(&entry);
                        }
                        need(&buf, rows * 4)?;
                        let mut codes = Vec::with_capacity(rows);
                        for row in 0..rows {
                            let c = buf.get_u32_le();
                            // Null rows carry a code-0 filler that may point
                            // at an empty dictionary; every valid row's code
                            // must land inside it.
                            let null_filler = c == 0 && valid.as_ref().is_some_and(|v| !v[row]);
                            if c as usize >= entries && !null_filler {
                                return Err(Error::Decode(format!(
                                    "dict code {c} out of range ({entries} entries)"
                                )));
                            }
                            codes.push(c);
                        }
                        Column::Dict {
                            codes,
                            dict: Arc::new(dict),
                        }
                    }
                    STR_PAGE_DICT_DELTA => {
                        let Some(registry) = registry.as_deref_mut() else {
                            return Err(Error::Decode(
                                "dict delta page on a schema-only decode path \
                                 (no link registry to resolve it against)"
                                    .into(),
                            ));
                        };
                        need(&buf, 24)?;
                        let dict_id = buf.get_u64_le();
                        let base = buf.get_u32_le();
                        let n_entries = buf.get_u32_le() as usize;
                        let expected_sum = buf.get_u64_le();
                        let mut entries = Vec::with_capacity(n_entries.min(1024));
                        for _ in 0..n_entries {
                            need(&buf, 2)?;
                            let len = buf.get_u16_le() as usize;
                            need(&buf, len)?;
                            let entry = std::str::from_utf8(&buf.chunk()[..len])
                                .map_err(|e| {
                                    Error::Decode(format!("invalid UTF-8 dict entry: {e}"))
                                })?
                                .to_string();
                            buf.advance(len);
                            entries.push(entry);
                        }
                        let delta = DictDelta {
                            dict_id,
                            base,
                            entries,
                        };
                        if delta.checksum() != expected_sum {
                            return Err(Error::Decode(format!(
                                "dict delta checksum mismatch for dict {dict_id} \
                                 (base {base}, {n_entries} entries)"
                            )));
                        }
                        // Applies the delta to this link's mirror; rejects
                        // out-of-order / version-mismatched deltas.
                        let dict = registry.apply(&delta)?;
                        need(&buf, rows * 4)?;
                        let mut codes = Vec::with_capacity(rows);
                        let entries = dict.len();
                        for row in 0..rows {
                            let c = buf.get_u32_le();
                            let null_filler = c == 0 && valid.as_ref().is_some_and(|v| !v[row]);
                            if c as usize >= entries && !null_filler {
                                return Err(Error::Decode(format!(
                                    "dict code {c} out of range ({entries} mirrored entries)"
                                )));
                            }
                            codes.push(c);
                        }
                        Column::Dict { codes, dict }
                    }
                    tag => {
                        return Err(Error::Decode(format!("unknown string page tag {tag}")));
                    }
                }
            }
        };
        columns.push(match valid {
            Some(valid) => Column::Opt {
                valid,
                values: Box::new(col),
            },
            None => col,
        });
    }
    Ok(Batch {
        schema,
        timestamps,
        columns,
    })
}

/// Value tags for the group-state wire format.
const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_I64: u8 = 2;
const VAL_U64: u8 = 3;
const VAL_F64: u8 = 4;
const VAL_STR: u8 = 5;

/// Aggregate-state tags for the group-state wire format.
const AGG_COUNT: u8 = 0;
const AGG_SUM: u8 = 1;
const AGG_MIN: u8 = 2;
const AGG_MAX: u8 = 3;
const AGG_AVG: u8 = 4;
const AGG_QUANTILE: u8 = 5;

/// Encodes shipped group-aggregation state. Floats travel as raw bit
/// patterns, so non-finite accumulators — a `Min` that never saw a numeric
/// value is `+inf` — round-trip exactly (JSON-style encodings turn them
/// into `null` and lose the state).
pub fn encode_group_state(entries: &[GroupPartialEntry]) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 * entries.len());
    buf.put_u32_le(entries.len() as u32);
    for entry in entries {
        buf.put_i64_le(entry.window_start);
        buf.put_u16_le(entry.key.len() as u16);
        for v in &entry.key {
            match v {
                Value::Null => buf.put_u8(VAL_NULL),
                Value::Bool(b) => {
                    buf.put_u8(VAL_BOOL);
                    buf.put_u8(*b as u8);
                }
                Value::I64(x) => {
                    buf.put_u8(VAL_I64);
                    buf.put_i64_le(*x);
                }
                Value::U64(x) => {
                    buf.put_u8(VAL_U64);
                    buf.put_u64_le(*x);
                }
                Value::F64(x) => {
                    buf.put_u8(VAL_F64);
                    buf.put_u64_le(x.to_bits());
                }
                Value::Str(s) => {
                    buf.put_u8(VAL_STR);
                    buf.put_u16_le(s.len() as u16);
                    buf.put_slice(s.as_bytes());
                }
            }
        }
        buf.put_u16_le(entry.states.len() as u16);
        for state in &entry.states {
            match state {
                AggState::Count(c) => {
                    buf.put_u8(AGG_COUNT);
                    buf.put_u64_le(*c);
                }
                AggState::Sum(s) => {
                    buf.put_u8(AGG_SUM);
                    buf.put_u64_le(s.to_bits());
                }
                AggState::Min(m) => {
                    buf.put_u8(AGG_MIN);
                    buf.put_u64_le(m.to_bits());
                }
                AggState::Max(m) => {
                    buf.put_u8(AGG_MAX);
                    buf.put_u64_le(m.to_bits());
                }
                AggState::Avg { sum, count } => {
                    buf.put_u8(AGG_AVG);
                    buf.put_u64_le(sum.to_bits());
                    buf.put_u64_le(*count);
                }
                AggState::Quantile { q, sketch } => {
                    let (lo, hi, counts, underflow, overflow, total) = sketch.to_parts();
                    buf.put_u8(AGG_QUANTILE);
                    buf.put_u64_le(q.to_bits());
                    buf.put_u64_le(lo.to_bits());
                    buf.put_u64_le(hi.to_bits());
                    buf.put_u32_le(counts.len() as u32);
                    for c in counts {
                        buf.put_u64_le(*c);
                    }
                    buf.put_u64_le(underflow);
                    buf.put_u64_le(overflow);
                    buf.put_u64_le(total);
                }
            }
        }
    }
    buf.freeze()
}

/// Decodes group-aggregation state produced by [`encode_group_state`].
pub fn decode_group_state(mut buf: Bytes) -> Result<Vec<GroupPartialEntry>> {
    let need = |buf: &Bytes, n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(Error::Decode(format!(
                "state underrun: need {n}, have {}",
                buf.remaining()
            )))
        } else {
            Ok(())
        }
    };
    need(&buf, 4)?;
    let n_entries = buf.get_u32_le() as usize;
    let mut entries = Vec::with_capacity(n_entries.min(1024));
    for _ in 0..n_entries {
        need(&buf, 10)?;
        let window_start = buf.get_i64_le();
        let key_len = buf.get_u16_le() as usize;
        let mut key = Vec::with_capacity(key_len);
        for _ in 0..key_len {
            need(&buf, 1)?;
            key.push(match buf.get_u8() {
                VAL_NULL => Value::Null,
                VAL_BOOL => {
                    need(&buf, 1)?;
                    Value::Bool(buf.get_u8() != 0)
                }
                VAL_I64 => {
                    need(&buf, 8)?;
                    Value::I64(buf.get_i64_le())
                }
                VAL_U64 => {
                    need(&buf, 8)?;
                    Value::U64(buf.get_u64_le())
                }
                VAL_F64 => {
                    need(&buf, 8)?;
                    Value::F64(f64::from_bits(buf.get_u64_le()))
                }
                VAL_STR => {
                    need(&buf, 2)?;
                    let len = buf.get_u16_le() as usize;
                    need(&buf, len)?;
                    let s = std::str::from_utf8(&buf.chunk()[..len])
                        .map_err(|e| Error::Decode(format!("invalid UTF-8 key: {e}")))?
                        .into();
                    buf.advance(len);
                    Value::Str(s)
                }
                tag => return Err(Error::Decode(format!("unknown value tag {tag}"))),
            });
        }
        need(&buf, 2)?;
        let n_states = buf.get_u16_le() as usize;
        let mut states = Vec::with_capacity(n_states);
        for _ in 0..n_states {
            need(&buf, 1)?;
            states.push(match buf.get_u8() {
                AGG_COUNT => {
                    need(&buf, 8)?;
                    AggState::Count(buf.get_u64_le())
                }
                AGG_SUM => {
                    need(&buf, 8)?;
                    AggState::Sum(f64::from_bits(buf.get_u64_le()))
                }
                AGG_MIN => {
                    need(&buf, 8)?;
                    AggState::Min(f64::from_bits(buf.get_u64_le()))
                }
                AGG_MAX => {
                    need(&buf, 8)?;
                    AggState::Max(f64::from_bits(buf.get_u64_le()))
                }
                AGG_AVG => {
                    need(&buf, 16)?;
                    AggState::Avg {
                        sum: f64::from_bits(buf.get_u64_le()),
                        count: buf.get_u64_le(),
                    }
                }
                AGG_QUANTILE => {
                    need(&buf, 28)?;
                    let q = f64::from_bits(buf.get_u64_le());
                    let lo = f64::from_bits(buf.get_u64_le());
                    let hi = f64::from_bits(buf.get_u64_le());
                    let buckets = buf.get_u32_le() as usize;
                    // NaN bounds compare as incomparable and must be
                    // rejected along with an empty or inverted range.
                    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) || buckets == 0 {
                        return Err(Error::Decode(format!(
                            "bad sketch geometry: lo {lo}, hi {hi}, {buckets} buckets"
                        )));
                    }
                    need(&buf, 8 * (buckets + 3))?;
                    let counts = (0..buckets).map(|_| buf.get_u64_le()).collect();
                    AggState::Quantile {
                        q,
                        sketch: QuantileSketch::from_parts(
                            lo,
                            hi,
                            counts,
                            buf.get_u64_le(),
                            buf.get_u64_le(),
                            buf.get_u64_le(),
                        ),
                    }
                }
                tag => return Err(Error::Decode(format!("unknown agg-state tag {tag}"))),
            });
        }
        entries.push(GroupPartialEntry {
            window_start,
            key,
            states,
        });
    }
    if buf.remaining() > 0 {
        return Err(Error::Decode(format!(
            "{} trailing bytes after group state",
            buf.remaining()
        )));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::{Field, Schema};
    use crate::value::Value;

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("ip", DataType::U32),
            Field::new("rtt", DataType::F64),
            Field::new("tenant", DataType::Str),
            Field::new("ok", DataType::Bool),
        ])
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = schema();
        let recs = vec![
            Record::new(
                100,
                vec![
                    Value::U64(1),
                    Value::F64(0.2),
                    Value::str("t0"),
                    Value::Bool(true),
                ],
            ),
            Record::new(
                200,
                vec![
                    Value::U64(2),
                    Value::F64(5.5),
                    Value::str(""),
                    Value::Bool(false),
                ],
            ),
        ];
        let batch = Batch::from_records(s.clone(), &recs).unwrap();
        let bytes = encode_batch(&batch);
        let back = decode_batch(s, bytes).unwrap();
        assert_eq!(back.to_records(), recs);
    }

    #[test]
    fn null_values_round_trip() {
        let s = schema();
        let recs = vec![
            Record::new(
                1,
                vec![
                    Value::U64(1),
                    Value::Null,
                    Value::str("t"),
                    Value::Bool(true),
                ],
            ),
            Record::new(
                2,
                vec![
                    Value::Null,
                    Value::F64(1.0),
                    Value::Null,
                    Value::Bool(false),
                ],
            ),
        ];
        let batch = Batch::from_records(s.clone(), &recs).unwrap();
        let back = decode_batch(s, encode_batch(&batch)).unwrap();
        assert_eq!(back.to_records(), recs);
    }

    #[test]
    fn dict_column_round_trips_and_ships_fewer_bytes() {
        let s = Schema::new(vec![Field::new("tenant", DataType::Str)]);
        let recs: Vec<Record> = (0..100)
            .map(|i| Record::new(i, vec![Value::str(format!("tenant-{}", i % 3))]))
            .collect();
        let plain = Batch::from_records(s.clone(), &recs).unwrap();
        let mut dict = plain.clone();
        assert!(dict.dict_encode(16));
        let plain_bytes = encode_batch(&plain);
        let dict_bytes = encode_batch(&dict);
        assert!(
            dict_bytes.len() < plain_bytes.len(),
            "dict page {} must beat plain {}",
            dict_bytes.len(),
            plain_bytes.len()
        );
        let back = decode_batch(s, dict_bytes).unwrap();
        assert_eq!(back, dict, "dict round-trips structurally");
        assert_eq!(back.to_records(), recs);
    }

    #[test]
    fn opt_wrapped_dict_round_trips() {
        use crate::batch::DictBuilder;
        let s = Schema::new(vec![Field::new("tag", DataType::Str)]);
        let mut b = DictBuilder::new(4);
        b.push("a");
        b.push_null();
        b.push("b");
        b.push("a");
        let batch = Batch {
            schema: s.clone(),
            timestamps: vec![0, 1, 2, 3],
            columns: vec![b.finish()],
        };
        let back = decode_batch(s, encode_batch(&batch)).unwrap();
        assert_eq!(back, batch);
        assert_eq!(back.columns[0].value(1), Value::Null);
    }

    #[test]
    fn invalid_utf8_payload_rejected_at_decode() {
        let s = Schema::new(vec![Field::new("t", DataType::Str)]);
        let recs = vec![Record::new(0, vec![Value::str("ok")])];
        let batch = Batch::from_records(s.clone(), &recs).unwrap();
        let mut raw = encode_batch(&batch).to_vec();
        // Corrupt the string payload ("ok" sits at the tail) with a lone
        // continuation byte.
        let n = raw.len();
        raw[n - 1] = 0xFF;
        assert!(matches!(
            decode_batch(s, Bytes::from(raw)),
            Err(Error::Decode(_))
        ));
    }

    #[test]
    fn split_multibyte_sequence_rejected_per_row() {
        // Two rows whose payloads concatenate to valid UTF-8 ("é" split
        // across rows) must still be rejected: each row's slice has to be
        // valid on its own.
        let s = Schema::new(vec![Field::new("t", DataType::Str)]);
        let mut raw = BytesMut::with_capacity(64);
        raw.put_u32_le(super::MAGIC);
        raw.put_u32_le(2); // rows
        raw.put_i64_le(0);
        raw.put_i64_le(1);
        raw.put_u8(0); // dense
        raw.put_u8(super::STR_PAGE_PLAIN);
        raw.put_u16_le(1);
        raw.put_u8(0xC3);
        raw.put_u16_le(1);
        raw.put_u8(0xA9);
        assert!(matches!(
            decode_batch(s, raw.freeze()),
            Err(Error::Decode(_))
        ));
    }

    #[test]
    fn all_null_dict_round_trips_but_dense_empty_dict_is_rejected() {
        use crate::batch::DictBuilder;
        let s = Schema::new(vec![Field::new("t", DataType::Str)]);
        // All-null column: empty dictionary, code-0 fillers behind validity.
        let mut b = DictBuilder::new(2);
        b.push_null();
        b.push_null();
        let batch = Batch {
            schema: s.clone(),
            timestamps: vec![0, 1],
            columns: vec![b.finish()],
        };
        let raw = encode_batch(&batch);
        let back = decode_batch(s.clone(), raw.clone()).unwrap();
        assert_eq!(back, batch);
        assert_eq!(back.columns[0].value(0), Value::Null);
        // The same bytes with the validity flag cleared describe a *dense*
        // column whose codes point into an empty dictionary: reject, or the
        // first read would index out of bounds.
        let mut dense = raw.to_vec();
        let flag_at = 4 + 4 + 2 * 8; // magic + rows + timestamps
        assert_eq!(dense[flag_at], 1, "validity flag expected here");
        dense[flag_at] = 0;
        // Drop the two validity bytes that followed the flag.
        dense.remove(flag_at + 1);
        dense.remove(flag_at + 1);
        assert!(matches!(
            decode_batch(s, Bytes::from(dense)),
            Err(Error::Decode(_))
        ));
    }

    #[test]
    fn out_of_range_dict_code_rejected() {
        let s = Schema::new(vec![Field::new("t", DataType::Str)]);
        let mut b = crate::batch::DictBuilder::new(1);
        b.push("x");
        let batch = Batch {
            schema: s.clone(),
            timestamps: vec![0],
            columns: vec![b.finish()],
        };
        let mut raw = encode_batch(&batch).to_vec();
        // The final u32 is the row's code; point it past the dictionary.
        let n = raw.len();
        raw[n - 4] = 9;
        assert!(matches!(
            decode_batch(s, Bytes::from(raw)),
            Err(Error::Decode(_))
        ));
    }

    #[test]
    fn delta_pages_ship_once_and_round_trip_across_batches() {
        use crate::batch::{DictVersions, StreamDict};
        let s = Schema::new(vec![Field::new("tenant", DataType::Str)]);
        let mut stream = StreamDict::new();
        let make = |stream: &mut StreamDict, names: &[&str]| {
            let codes: Vec<u32> = names.iter().map(|n| stream.intern(n)).collect();
            Batch {
                schema: s.clone(),
                timestamps: (0..names.len() as i64).collect(),
                columns: vec![Column::Dict {
                    codes,
                    dict: stream.snapshot(),
                }],
            }
        };
        let b1 = make(&mut stream, &["tenant-00", "tenant-01", "tenant-00"]);
        let b2 = make(&mut stream, &["tenant-01", "tenant-02"]);
        let mut link = DictVersions::new();
        let w1 = encode_batch_with(&b1, &mut link);
        let w2 = encode_batch_with(&b2, &mut link);
        // The second frame carries only the novel entry "tenant-02".
        let full2 = encode_batch(&b2);
        assert!(
            w2.len() < full2.len(),
            "delta frame {} must beat full-page frame {}",
            w2.len(),
            full2.len()
        );
        let mut reg = crate::batch::DictRegistry::new();
        let r1 = decode_batch_with(s.clone(), w1, &mut reg).unwrap();
        let r2 = decode_batch_with(s.clone(), w2, &mut reg).unwrap();
        assert_eq!(r1.to_records(), b1.to_records());
        assert_eq!(r2.to_records(), b2.to_records());
        // Receiver-side pages share one mirror and its persistent id.
        let (d1, _) = r1.columns[0].as_dict().unwrap();
        let (d2, _) = r2.columns[0].as_dict().unwrap();
        assert_ne!(d1.id(), 0, "mirror snapshots carry a receiver-local id");
        assert_eq!(d1.id(), d2.id());
        assert_eq!(d2.len(), 3);
    }

    #[test]
    fn chunked_batch_ships_its_dict_page_exactly_once() {
        use crate::batch::{DictRegistry, DictVersions, StreamDict};
        // The PR-3 waste: slicing one batch into N chunks re-carried the
        // full dict page N times. With a persistent stream and a delta-aware
        // link, the entries cross once — every later chunk ships a
        // zero-entry delta header.
        let s = Schema::new(vec![Field::new("tenant", DataType::Str)]);
        let mut stream = StreamDict::new();
        let codes: Vec<u32> = (0..60)
            .map(|i| stream.intern(&format!("tenant-{}", i % 8)))
            .collect();
        let batch = Batch {
            schema: s.clone(),
            timestamps: (0..60).collect(),
            columns: vec![Column::Dict {
                codes,
                dict: stream.snapshot(),
            }],
        };
        let chunks: Vec<Batch> = batch.chunks(15).collect();
        assert_eq!(chunks.len(), 4);

        let mut link = DictVersions::new();
        let wires: Vec<Bytes> = chunks
            .iter()
            .map(|c| encode_batch_with(c, &mut link))
            .collect();
        // After the first chunk the link has seen the whole page...
        assert_eq!(link[&stream.id()], stream.version());
        // ...so later chunks are codes plus an empty delta: all the same
        // size (equal row counts), strictly below the entry-carrying first
        // chunk and below a full-page re-ship.
        for (chunk, wire) in chunks.iter().zip(&wires).skip(1) {
            assert_eq!(wire.len(), wires[1].len());
            assert!(wire.len() < wires[0].len());
            assert!(
                wire.len() < encode_batch(chunk).len(),
                "a delta chunk must beat re-shipping the page"
            );
        }

        // The receiver reassembles the rows bit-identically through one
        // mirror.
        let mut reg = DictRegistry::new();
        let rows: Vec<_> = wires
            .into_iter()
            .flat_map(|w| {
                decode_batch_with(s.clone(), w, &mut reg)
                    .expect("chunks decode in order")
                    .to_records()
            })
            .collect();
        assert_eq!(rows, batch.to_records());
    }

    #[test]
    fn delta_page_on_plain_decode_path_is_a_typed_error() {
        use crate::batch::{DictVersions, StreamDict};
        let s = Schema::new(vec![Field::new("t", DataType::Str)]);
        let mut stream = StreamDict::new();
        let codes = vec![stream.intern("x")];
        let batch = Batch {
            schema: s.clone(),
            timestamps: vec![0],
            columns: vec![Column::Dict {
                codes,
                dict: stream.snapshot(),
            }],
        };
        let wire = encode_batch_with(&batch, &mut DictVersions::new());
        assert!(matches!(decode_batch(s, wire), Err(Error::Decode(_))));
    }

    #[test]
    fn out_of_order_and_corrupt_deltas_are_typed_errors() {
        use crate::batch::{DictRegistry, DictVersions, StreamDict};
        let s = Schema::new(vec![Field::new("t", DataType::Str)]);
        let mut stream = StreamDict::new();
        let codes: Vec<u32> = ["a", "b"].iter().map(|n| stream.intern(n)).collect();
        let b1 = Batch {
            schema: s.clone(),
            timestamps: vec![0, 1],
            columns: vec![Column::Dict {
                codes,
                dict: stream.snapshot(),
            }],
        };
        let mut link = DictVersions::new();
        let w1 = encode_batch_with(&b1, &mut link);
        stream.intern("c");
        let b2 = Batch {
            columns: vec![Column::Dict {
                codes: vec![2, 0],
                dict: stream.snapshot(),
            }],
            ..b1.clone()
        };
        let w2 = encode_batch_with(&b2, &mut link);
        // Skipping the first frame: the second delta's base (2) mismatches
        // an empty mirror.
        let mut skipped = DictRegistry::new();
        assert!(matches!(
            decode_batch_with(s.clone(), w2.clone(), &mut skipped),
            Err(Error::Decode(_))
        ));
        // Replaying the first frame after it already applied.
        let mut reg = DictRegistry::new();
        decode_batch_with(s.clone(), w1.clone(), &mut reg).unwrap();
        assert!(matches!(
            decode_batch_with(s.clone(), w1.clone(), &mut reg),
            Err(Error::Decode(_))
        ));
        // A bit flip inside a delta entry fails the checksum instead of
        // silently poisoning the mirror.
        let mut raw = w1.to_vec();
        let n = raw.len();
        // Entries sit between the 24-byte delta header and the trailing
        // codes; flip a bit in the entry payload region.
        raw[n - 4 * 2 - 1] ^= 0x01;
        let mut fresh = DictRegistry::new();
        assert!(matches!(
            decode_batch_with(s, Bytes::from(raw), &mut fresh),
            Err(Error::Decode(_))
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let s = schema();
        let err = decode_batch(s, Bytes::from_static(&[0u8; 16])).unwrap_err();
        assert!(matches!(err, Error::Decode(_)));
    }

    #[test]
    fn truncated_buffer_rejected() {
        let s = schema();
        let recs = vec![Record::new(
            1,
            vec![
                Value::U64(1),
                Value::F64(0.0),
                Value::str("abc"),
                Value::Bool(true),
            ],
        )];
        let batch = Batch::from_records(s.clone(), &recs).unwrap();
        let bytes = encode_batch(&batch);
        let cut = bytes.slice(0..bytes.len() - 2);
        assert!(decode_batch(s, cut).is_err());
    }
}
