//! Dynamically-typed scalar values.
//!
//! Monitoring records are narrow (a handful of fixed-width fields plus the
//! occasional string), so a small enum with cheap clones (`Arc<str>` for
//! strings) is sufficient and keeps group keys hashable.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A scalar value flowing through a query pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absent value (e.g. outer-join miss).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (also carries I32/U32-typed columns; width for wire
    /// accounting comes from the schema, not the in-memory repr).
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// UTF-8 string, reference counted so clones are cheap.
    Str(Arc<str>),
}

impl Value {
    /// Short name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) => "i64",
            Value::U64(_) => "u64",
            Value::F64(_) => "f64",
            Value::Str(_) => "str",
        }
    }

    /// Returns the value as `f64` when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Returns the value as `i64` when it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Returns the value as `bool` when it is boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as `&str` when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True when the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Numeric comparison helper used by comparison expressions. Integers are
    /// compared exactly when both sides are integral; otherwise via `f64`.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::I64(a), Value::I64(b)) => Some(a.cmp(b)),
            (Value::U64(a), Value::U64(b)) => Some(a.cmp(b)),
            (Value::Null, Value::Null) => Some(Ordering::Equal),
            (Value::Null, _) | (_, Value::Null) => None,
            (a, b) => a.as_f64()?.partial_cmp(&b.as_f64()?),
        }
    }
}

/// Equality treats `F64` via bit patterns so values can serve as group keys.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::I64(a), Value::I64(b)) => a == b,
            (Value::U64(a), Value::U64(b)) => a == b,
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::I64(v) => v.hash(state),
            Value::U64(v) => v.hash(state),
            Value::F64(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::I64(3).as_f64(), Some(3.0));
        assert_eq!(Value::U64(7).as_i64(), Some(7));
        assert_eq!(Value::F64(1.5).as_i64(), None);
        assert_eq!(Value::str("x").as_f64(), None);
    }

    #[test]
    fn f64_keys_are_hash_consistent() {
        let a = Value::F64(0.25);
        let b = Value::F64(0.25);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn nan_is_self_equal_for_grouping() {
        let a = Value::F64(f64::NAN);
        let b = Value::F64(f64::NAN);
        assert_eq!(a, b);
    }

    #[test]
    fn cross_type_numeric_compare() {
        assert_eq!(
            Value::I64(2).compare(&Value::F64(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.compare(&Value::I64(1)), None);
        assert_eq!(
            Value::str("a").compare(&Value::str("b")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn display_round_trip_is_readable() {
        assert_eq!(Value::str("tenant-a").to_string(), "tenant-a");
        assert_eq!(Value::I64(-4).to_string(), "-4");
    }
}
