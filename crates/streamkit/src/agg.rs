//! Incrementally-updatable, mergeable aggregates.
//!
//! Rule R-1 (paper §IV-B) admits only aggregations whose partial states can be
//! merged: the data source accumulates partial state for the fraction of
//! records it processes locally, drains the state to the stream processor, and
//! the SP merges it with its own partials. `merge` must therefore be
//! associative and commutative with `update` — property-tested in this module.

use serde::{Deserialize, Serialize};

use crate::quantile::QuantileSketch;
use crate::value::Value;

/// Supported aggregate functions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AggKind {
    /// Number of records.
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Minimum of a numeric column.
    Min,
    /// Maximum of a numeric column.
    Max,
    /// Arithmetic mean of a numeric column.
    Avg,
    /// Approximate quantile `q` over a bounded numeric range (rule R-1:
    /// the *approximate* version is incrementally updatable).
    ApproxQuantile {
        /// Quantile in `[0, 1]`.
        q: f64,
        /// Lower bound of the sketch range.
        lo: f64,
        /// Upper bound of the sketch range.
        hi: f64,
    },
}

/// An aggregate applied to one input column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggSpec {
    /// Which aggregate.
    pub kind: AggKind,
    /// Input column index (ignored by `Count`).
    pub col: usize,
    /// Output column name.
    pub name: String,
}

impl AggSpec {
    /// Creates a spec with a derived output name.
    pub fn new(kind: AggKind, col: usize, name: impl Into<String>) -> AggSpec {
        AggSpec {
            kind,
            col,
            name: name.into(),
        }
    }

    /// Fresh accumulator state for this aggregate.
    pub fn init(&self) -> AggState {
        match &self.kind {
            AggKind::Count => AggState::Count(0),
            AggKind::Sum => AggState::Sum(0.0),
            AggKind::Min => AggState::Min(f64::INFINITY),
            AggKind::Max => AggState::Max(f64::NEG_INFINITY),
            AggKind::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggKind::ApproxQuantile { q, lo, hi } => AggState::Quantile {
                q: *q,
                sketch: QuantileSketch::new(*lo, *hi, 64),
            },
        }
    }
}

/// Mergeable partial aggregate state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AggState {
    /// Count accumulator.
    Count(u64),
    /// Sum accumulator.
    Sum(f64),
    /// Min accumulator.
    Min(f64),
    /// Max accumulator.
    Max(f64),
    /// Average accumulator.
    Avg {
        /// Running sum.
        sum: f64,
        /// Running count.
        count: u64,
    },
    /// Approximate-quantile accumulator.
    Quantile {
        /// Quantile to report.
        q: f64,
        /// Mergeable histogram sketch.
        sketch: QuantileSketch,
    },
}

impl AggState {
    /// Folds one value into the state. Non-numeric values are ignored except
    /// by `Count`, which counts every record.
    pub fn update(&mut self, value: &Value) {
        match self {
            AggState::Count(c) => *c += 1,
            AggState::Sum(s) => {
                if let Some(v) = value.as_f64() {
                    *s += v;
                }
            }
            AggState::Min(m) => {
                if let Some(v) = value.as_f64() {
                    if v < *m {
                        *m = v;
                    }
                }
            }
            AggState::Max(m) => {
                if let Some(v) = value.as_f64() {
                    if v > *m {
                        *m = v;
                    }
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(v) = value.as_f64() {
                    *sum += v;
                    *count += 1;
                }
            }
            AggState::Quantile { sketch, .. } => {
                if let Some(v) = value.as_f64() {
                    sketch.insert(v);
                }
            }
        }
    }

    /// Columnar fast path: folds one numeric value without boxing it in a
    /// [`Value`]. Identical to [`AggState::update`] with a numeric value.
    #[inline]
    pub fn update_f64(&mut self, v: f64) {
        match self {
            AggState::Count(c) => *c += 1,
            AggState::Sum(s) => *s += v,
            AggState::Min(m) => {
                if v < *m {
                    *m = v;
                }
            }
            AggState::Max(m) => {
                if v > *m {
                    *m = v;
                }
            }
            AggState::Avg { sum, count } => {
                *sum += v;
                *count += 1;
            }
            AggState::Quantile { sketch, .. } => sketch.insert(v),
        }
    }

    /// Merges another partial state of the same kind into this one.
    /// Mismatched kinds are a plan-construction bug and panic in debug builds;
    /// in release they are ignored to keep the pipeline alive.
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => *a += b,
            (AggState::Min(a), AggState::Min(b)) => {
                if b < a {
                    *a = *b;
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if b > a {
                    *a = *b;
                }
            }
            (AggState::Avg { sum: s1, count: c1 }, AggState::Avg { sum: s2, count: c2 }) => {
                *s1 += s2;
                *c1 += c2;
            }
            (AggState::Quantile { sketch: s1, .. }, AggState::Quantile { sketch: s2, .. }) => {
                s1.merge(s2);
            }
            _ => debug_assert!(false, "merging mismatched aggregate states"),
        }
    }

    /// Finalises the state into an output value.
    pub fn finalize(&self) -> Value {
        match self {
            AggState::Count(c) => Value::U64(*c),
            AggState::Sum(s) => Value::F64(*s),
            AggState::Min(m) => {
                if m.is_finite() {
                    Value::F64(*m)
                } else {
                    Value::Null
                }
            }
            AggState::Max(m) => {
                if m.is_finite() {
                    Value::F64(*m)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::F64(sum / *count as f64)
                }
            }
            AggState::Quantile { q, sketch } => match sketch.quantile(*q) {
                Some(v) => Value::F64(v),
                None => Value::Null,
            },
        }
    }

    /// Approximate in-memory/wire size of the partial state in bytes, used
    /// when accounting for drained state transfers.
    pub fn state_bytes(&self) -> usize {
        match self {
            AggState::Count(_) | AggState::Sum(_) | AggState::Min(_) | AggState::Max(_) => 8,
            AggState::Avg { .. } => 16,
            AggState::Quantile { sketch, .. } => sketch.state_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(spec: &AggSpec, values: &[f64]) -> AggState {
        let mut st = spec.init();
        for v in values {
            st.update(&Value::F64(*v));
        }
        st
    }

    #[test]
    fn avg_matches_definition() {
        let spec = AggSpec::new(AggKind::Avg, 0, "avg");
        let st = run(&spec, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(st.finalize(), Value::F64(2.5));
    }

    #[test]
    fn empty_aggregates_finalize_to_null_or_zero() {
        assert_eq!(
            AggSpec::new(AggKind::Count, 0, "c").init().finalize(),
            Value::U64(0)
        );
        assert_eq!(
            AggSpec::new(AggKind::Min, 0, "m").init().finalize(),
            Value::Null
        );
        assert_eq!(
            AggSpec::new(AggKind::Avg, 0, "a").init().finalize(),
            Value::Null
        );
    }

    #[test]
    fn merge_equals_union_for_all_kinds() {
        let specs = [
            AggSpec::new(AggKind::Count, 0, "c"),
            AggSpec::new(AggKind::Sum, 0, "s"),
            AggSpec::new(AggKind::Min, 0, "mn"),
            AggSpec::new(AggKind::Max, 0, "mx"),
            AggSpec::new(AggKind::Avg, 0, "av"),
        ];
        let left = [5.0, 1.0, 3.5];
        let right = [9.0, -2.0];
        let all: Vec<f64> = left.iter().chain(right.iter()).copied().collect();
        for spec in &specs {
            let mut a = run(spec, &left);
            let b = run(spec, &right);
            a.merge(&b);
            assert_eq!(
                a.finalize(),
                run(spec, &all).finalize(),
                "kind {:?}",
                spec.kind
            );
        }
    }

    #[test]
    fn count_counts_non_numeric_records() {
        let spec = AggSpec::new(AggKind::Count, 0, "c");
        let mut st = spec.init();
        st.update(&Value::str("not a number"));
        st.update(&Value::Null);
        assert_eq!(st.finalize(), Value::U64(2));
    }

    #[test]
    fn sum_ignores_non_numeric() {
        let spec = AggSpec::new(AggKind::Sum, 0, "s");
        let mut st = spec.init();
        st.update(&Value::F64(2.0));
        st.update(&Value::str("skip"));
        assert_eq!(st.finalize(), Value::F64(2.0));
    }

    #[test]
    fn quantile_state_is_mergeable() {
        let spec = AggSpec::new(
            AggKind::ApproxQuantile {
                q: 0.5,
                lo: 0.0,
                hi: 100.0,
            },
            0,
            "p50",
        );
        let mut a = spec.init();
        let mut b = spec.init();
        for v in 0..50 {
            a.update(&Value::F64(v as f64));
        }
        for v in 50..100 {
            b.update(&Value::F64(v as f64));
        }
        a.merge(&b);
        let Value::F64(est) = a.finalize() else {
            panic!("expected f64")
        };
        assert!(
            (est - 50.0).abs() < 5.0,
            "p50 estimate {est} too far from 50"
        );
    }
}
