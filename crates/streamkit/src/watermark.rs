//! Watermarks and min-merging across input streams.
//!
//! The paper (§V, "Accurate query processing") merges watermarks at the stream
//! processor: every operator advances its clock to the *minimum* event time
//! across incoming streams, and control proxies replicate watermarks onto the
//! drain path so SP-side windows still close.

use crate::time::{Ts, TS_MIN};

/// Tracks the merged watermark over `n` input streams.
#[derive(Debug, Clone)]
pub struct WatermarkMerger {
    inputs: Vec<Ts>,
    emitted: Ts,
}

impl WatermarkMerger {
    /// Creates a merger over `inputs` streams, all starting at `TS_MIN`.
    pub fn new(inputs: usize) -> WatermarkMerger {
        WatermarkMerger {
            inputs: vec![TS_MIN; inputs],
            emitted: TS_MIN,
        }
    }

    /// Number of input streams.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Advances stream `i`'s watermark to `wm` (ignores regressions, as the
    /// merged output must stay monotone) and returns the new merged watermark
    /// if it advanced.
    pub fn observe(&mut self, i: usize, wm: Ts) -> Option<Ts> {
        if wm > self.inputs[i] {
            self.inputs[i] = wm;
        }
        let merged = self.merged();
        if merged > self.emitted {
            self.emitted = merged;
            Some(merged)
        } else {
            None
        }
    }

    /// Current merged (minimum) watermark across all inputs.
    pub fn merged(&self) -> Ts {
        self.inputs.iter().copied().min().unwrap_or(TS_MIN)
    }

    /// The last watermark actually emitted downstream.
    pub fn emitted(&self) -> Ts {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_is_minimum() {
        let mut m = WatermarkMerger::new(2);
        assert_eq!(m.observe(0, 100), None); // other stream still at TS_MIN
        assert_eq!(m.observe(1, 50), Some(50));
        assert_eq!(m.observe(1, 150), Some(100));
    }

    #[test]
    fn regressions_are_ignored() {
        let mut m = WatermarkMerger::new(1);
        assert_eq!(m.observe(0, 10), Some(10));
        assert_eq!(m.observe(0, 5), None);
        assert_eq!(m.merged(), 10);
    }

    #[test]
    fn emitted_is_monotone() {
        let mut m = WatermarkMerger::new(3);
        let mut last = TS_MIN;
        for (i, wm) in [(0, 5), (1, 3), (2, 9), (0, 2), (1, 10), (2, 1)] {
            if let Some(e) = m.observe(i, wm) {
                assert!(e > last);
                last = e;
            }
        }
    }
}
