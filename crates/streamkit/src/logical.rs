//! Logical query plans.
//!
//! After the planner applies the paper's eligibility rules, queries deployed
//! on data sources are *chains* of operators (paper §IV-B), so the logical
//! plan is an ordered `Vec<LogicalOp>` over a source schema. Schema
//! propagation is validated eagerly so malformed plans fail at build time,
//! not mid-stream.

use std::sync::Arc;

use crate::agg::AggSpec;
use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::ops::{EmitMode, GroupAggregateOp, JoinMiss, JoinOp, MapFn, OpKind, StaticTable};
use crate::schema::SchemaRef;
use crate::time::Ts;

/// One logical operator in a chain.
#[derive(Debug, Clone)]
pub enum LogicalOp {
    /// Declares the tumbling window for downstream stateful operators.
    Window {
        /// Window size in µs.
        size: Ts,
    },
    /// Predicate filter.
    Filter {
        /// Row predicate.
        predicate: Expr,
    },
    /// Record transformation.
    Map {
        /// The transformation.
        f: MapFn,
    },
    /// Column projection.
    Project {
        /// Columns (into the input schema) to keep, in order.
        cols: Vec<usize>,
    },
    /// Keyed windowed aggregation.
    GroupAggregate {
        /// Key columns.
        keys: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
        /// Emission mode (for Final-role instances).
        emit: EmitMode,
    },
    /// Stream-table join.
    Join {
        /// Lookup table.
        table: Arc<StaticTable>,
        /// Stream-side key column.
        key_col: usize,
        /// Miss policy.
        miss: JoinMiss,
        /// True when the right side is a co-stream snapshot rather than a
        /// static table. Execution is identical (the snapshot is joined like
        /// a table), but the operator is *stateful across sources*, so the
        /// planner's rule R-3 keeps it SP-only.
        streaming: bool,
    },
}

impl LogicalOp {
    /// The operator kind.
    pub fn kind(&self) -> OpKind {
        match self {
            LogicalOp::Window { .. } => OpKind::Window,
            LogicalOp::Filter { .. } => OpKind::Filter,
            LogicalOp::Map { .. } => OpKind::Map,
            LogicalOp::Project { .. } => OpKind::Project,
            LogicalOp::GroupAggregate { .. } => OpKind::GroupAggregate,
            LogicalOp::Join { .. } => OpKind::Join,
        }
    }

    /// Output schema given the input schema.
    pub fn output_schema(&self, input: &SchemaRef) -> Result<SchemaRef> {
        match self {
            LogicalOp::Window { .. } => Ok(input.clone()),
            LogicalOp::Filter { predicate } => {
                // Validate column references.
                let mut refs = std::collections::BTreeSet::new();
                predicate.column_refs(&mut refs);
                for r in refs {
                    input.field(r)?;
                }
                Ok(input.clone())
            }
            LogicalOp::Map { f } => f.output_schema(input),
            LogicalOp::Project { cols } => input.project(cols),
            LogicalOp::GroupAggregate { keys, aggs, .. } => {
                for &k in keys {
                    input.field(k)?;
                }
                for a in aggs {
                    input.field(a.col)?;
                }
                Ok(GroupAggregateOp::output_schema_for(keys, aggs, input))
            }
            LogicalOp::Join { table, key_col, .. } => {
                input.field(*key_col)?;
                Ok(JoinOp::output_schema_for(table, input))
            }
        }
    }
}

/// An ordered operator chain with a source schema.
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    /// Query name (for traces, plans, and experiment output).
    pub name: String,
    /// Schema of the raw input stream.
    pub source_schema: SchemaRef,
    /// The operator chain.
    pub ops: Vec<LogicalOp>,
    /// Requested physical instances per operator, aligned with `ops`
    /// (1 = no intra-operator parallelism). Intermediate SPs may honour
    /// wider hints; the planner's rule R-4 keeps such operators off the
    /// constrained data sources.
    pub parallel: Vec<u32>,
}

impl LogicalPlan {
    /// Builds a plan with default parallelism (one physical instance per
    /// operator).
    pub fn new(name: impl Into<String>, source_schema: SchemaRef, ops: Vec<LogicalOp>) -> Self {
        let parallel = vec![1; ops.len()];
        LogicalPlan {
            name: name.into(),
            source_schema,
            ops,
            parallel,
        }
    }

    /// The parallelism hint for op `index` (missing entries read as 1).
    pub fn parallel_for(&self, index: usize) -> u32 {
        self.parallel.get(index).copied().unwrap_or(1)
    }

    /// Validates schema propagation and returns the schema at every edge:
    /// `schemas[0]` is the source schema and `schemas[i+1]` is op `i`'s
    /// output.
    pub fn edge_schemas(&self) -> Result<Vec<SchemaRef>> {
        let mut schemas = Vec::with_capacity(self.ops.len() + 1);
        schemas.push(self.source_schema.clone());
        for op in &self.ops {
            let next = op.output_schema(schemas.last().unwrap())?;
            schemas.push(next);
        }
        Ok(schemas)
    }

    /// The window size in effect for op `index` (size of the closest
    /// preceding `Window` op).
    pub fn window_for(&self, index: usize) -> Option<Ts> {
        self.ops[..index].iter().rev().find_map(|op| match op {
            LogicalOp::Window { size } => Some(*size),
            _ => None,
        })
    }

    /// Validates the plan: schemas propagate, parallelism hints align with
    /// the chain, and every stateful op has a window in scope.
    pub fn validate(&self) -> Result<()> {
        self.edge_schemas()?;
        if self.parallel.len() != self.ops.len() {
            return Err(Error::InvalidPlan(format!(
                "{} parallelism hints for {} operators",
                self.parallel.len(),
                self.ops.len()
            )));
        }
        for (i, op) in self.ops.iter().enumerate() {
            if matches!(op, LogicalOp::GroupAggregate { .. }) && self.window_for(i).is_none() {
                return Err(Error::InvalidPlan(format!(
                    "GroupAggregate at position {i} has no Window upstream"
                )));
            }
        }
        Ok(())
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the plan has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The keyed shard boundary: index of the first stateful (keyed)
    /// operator and its group-key columns, given as indices into that
    /// operator's *input* edge schema. Sharded runtimes run the stateless
    /// prefix anywhere, then partition by these columns so each key's whole
    /// lifetime stays on one shard. `None` when the chain has no keyed
    /// operator (sharding degenerates to a single pipeline).
    pub fn shard_boundary(&self) -> Option<(usize, Vec<usize>)> {
        self.ops.iter().enumerate().find_map(|(i, op)| match op {
            LogicalOp::GroupAggregate { keys, .. } => Some((i, keys.clone())),
            _ => None,
        })
    }

    /// Compact plan string, e.g. `W -> F -> G+R`.
    pub fn display_chain(&self) -> String {
        self.ops
            .iter()
            .map(|op| op.kind().letter())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggKind;
    use crate::schema::{DataType, Field, Schema};
    use crate::time::secs;

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("ip", DataType::U32),
            Field::new("rtt", DataType::U32),
            Field::new("err", DataType::U32),
        ])
    }

    fn plan() -> LogicalPlan {
        LogicalPlan::new(
            "t",
            schema(),
            vec![
                LogicalOp::Window { size: secs(10.0) },
                LogicalOp::Filter {
                    predicate: Expr::col(2).eq(Expr::lit(0u64)),
                },
                LogicalOp::GroupAggregate {
                    keys: vec![0],
                    aggs: vec![AggSpec::new(AggKind::Avg, 1, "avg_rtt")],
                    emit: EmitMode::OnWindowClose,
                },
            ],
        )
    }

    #[test]
    fn edge_schemas_propagate() {
        let p = plan();
        let schemas = p.edge_schemas().unwrap();
        assert_eq!(schemas.len(), 4);
        assert_eq!(schemas[3].fields()[0].name, "window_start");
        assert_eq!(schemas[3].fields()[1].name, "ip");
        assert_eq!(schemas[3].fields()[2].name, "avg_rtt");
        assert!(p.validate().is_ok());
    }

    #[test]
    fn group_without_window_is_invalid() {
        let mut p = plan();
        p.ops.remove(0);
        p.parallel.remove(0);
        assert!(matches!(p.validate(), Err(Error::InvalidPlan(_))));
    }

    #[test]
    fn bad_column_reference_fails_validation() {
        let p = LogicalPlan::new(
            "bad",
            schema(),
            vec![LogicalOp::Filter {
                predicate: Expr::col(9).eq(Expr::lit(0u64)),
            }],
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn misaligned_parallel_hints_fail_validation() {
        let mut p = plan();
        p.parallel.pop();
        assert!(matches!(p.validate(), Err(Error::InvalidPlan(_))));
    }

    #[test]
    fn display_chain_matches_paper_notation() {
        assert_eq!(plan().display_chain(), "W -> F -> G+R");
    }
}
