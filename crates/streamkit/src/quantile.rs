//! A small mergeable quantile sketch.
//!
//! The paper's rule R-1 excludes exact quantiles from near-data execution but
//! admits approximate, incrementally-updatable versions (citing \[41\], \[42\] —
//! histogram-based estimation as in Prometheus). This sketch is an equi-width
//! histogram over a configured range with linear interpolation inside a
//! bucket: mergeable, bounded-size, and adequate for telemetry value domains
//! whose range is known (latencies, utilisation percentages).

use serde::{Deserialize, Serialize};

/// Mergeable equi-width histogram sketch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Values below `lo`.
    underflow: u64,
    /// Values at or above `hi`.
    overflow: u64,
    total: u64,
}

impl QuantileSketch {
    /// Creates a sketch over `[lo, hi)` with `buckets` equal-width bins.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> QuantileSketch {
        assert!(hi > lo, "sketch range must be non-empty");
        assert!(buckets > 0, "sketch needs at least one bucket");
        QuantileSketch {
            lo,
            hi,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Inserts one value.
    pub fn insert(&mut self, v: f64) {
        self.total += 1;
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((v - self.lo) / width) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of inserted values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Merges another sketch with the same configuration.
    pub fn merge(&mut self, other: &QuantileSketch) {
        debug_assert_eq!(self.lo.to_bits(), other.lo.to_bits());
        debug_assert_eq!(self.hi.to_bits(), other.hi.to_bits());
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Estimates quantile `q ∈ [0, 1]` with linear interpolation within the
    /// containing bucket. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if target <= seen {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, c) in self.counts.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            if seen + c >= target {
                let into = (target - seen) as f64 / *c as f64;
                return Some(self.lo + (i as f64 + into) * width);
            }
            seen += c;
        }
        Some(self.hi)
    }

    /// Wire size of the sketch state in bytes.
    pub fn state_bytes(&self) -> usize {
        8 * (self.counts.len() + 4)
    }

    /// The sketch's raw state `(lo, hi, counts, underflow, overflow,
    /// total)`, for wire codecs.
    pub fn to_parts(&self) -> (f64, f64, &[u64], u64, u64, u64) {
        (
            self.lo,
            self.hi,
            &self.counts,
            self.underflow,
            self.overflow,
            self.total,
        )
    }

    /// Rebuilds a sketch from [`QuantileSketch::to_parts`] state. The range
    /// and bucket invariants are the constructor's; callers decoding
    /// untrusted bytes must validate `hi > lo` and `!counts.is_empty()`
    /// first.
    pub fn from_parts(
        lo: f64,
        hi: f64,
        counts: Vec<u64>,
        underflow: u64,
        overflow: u64,
        total: u64,
    ) -> QuantileSketch {
        assert!(hi > lo, "sketch range must be non-empty");
        assert!(!counts.is_empty(), "sketch needs at least one bucket");
        QuantileSketch {
            lo,
            hi,
            counts,
            underflow,
            overflow,
            total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_median_is_near_midpoint() {
        let mut s = QuantileSketch::new(0.0, 1000.0, 100);
        for v in 0..1000 {
            s.insert(v as f64);
        }
        let p50 = s.quantile(0.5).unwrap();
        assert!((p50 - 500.0).abs() <= 10.0, "p50={p50}");
        let p99 = s.quantile(0.99).unwrap();
        assert!((p99 - 990.0).abs() <= 10.0, "p99={p99}");
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let mut s = QuantileSketch::new(0.0, 10.0, 10);
        s.insert(-5.0);
        s.insert(100.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.quantile(0.0).unwrap(), 0.0);
        assert_eq!(s.quantile(1.0).unwrap(), 10.0);
    }

    #[test]
    fn empty_sketch_has_no_quantile() {
        let s = QuantileSketch::new(0.0, 1.0, 4);
        assert!(s.quantile(0.5).is_none());
    }

    #[test]
    fn merge_matches_combined_insertions() {
        let mut a = QuantileSketch::new(0.0, 100.0, 50);
        let mut b = QuantileSketch::new(0.0, 100.0, 50);
        let mut full = QuantileSketch::new(0.0, 100.0, 50);
        for v in 0..60 {
            a.insert(v as f64);
            full.insert(v as f64);
        }
        for v in 60..100 {
            b.insert(v as f64);
            full.insert(v as f64);
        }
        a.merge(&b);
        assert_eq!(a, full);
    }
}
