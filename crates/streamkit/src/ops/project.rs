//! Column projection operator.
//!
//! Byte-level data reduction: T2TProbe's join output is projected down to
//! `(srcToR, dstToR, rtt)` before aggregation (paper §VI-B), which is what
//! makes the join stage net-reducing in byte terms.

use crate::ops::{CostModel, OpKind, Operator};
use crate::record::Record;
use crate::schema::SchemaRef;

/// Keeps a subset/reordering of input columns.
pub struct ProjectOp {
    cols: Vec<usize>,
    schema: SchemaRef,
    cost: CostModel,
}

impl ProjectOp {
    /// Creates a projection; `schema` must be the projected schema.
    pub fn new(cols: Vec<usize>, schema: SchemaRef, cost: CostModel) -> ProjectOp {
        ProjectOp { cols, schema, cost }
    }

    /// The projected column indices (into the input schema).
    pub fn columns(&self) -> &[usize] {
        &self.cols
    }
}

impl Operator for ProjectOp {
    fn kind(&self) -> OpKind {
        OpKind::Project
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process(&mut self, rec: Record, out: &mut Vec<Record>) {
        let values = self.cols.iter().map(|&c| rec.values[c].clone()).collect();
        out.push(Record::new(rec.ts, values));
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(0)
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};
    use crate::value::Value;

    #[test]
    fn projects_and_reorders() {
        let input = Schema::new(vec![
            Field::new("a", DataType::I64),
            Field::new("b", DataType::I64),
            Field::new("c", DataType::I64),
        ]);
        let out_schema = input.project(&[2, 0]).unwrap();
        let mut p = ProjectOp::new(vec![2, 0], out_schema.clone(), CostModel::fixed(0.2));
        let mut out = Vec::new();
        p.process(
            Record::new(1, vec![Value::I64(10), Value::I64(20), Value::I64(30)]),
            &mut out,
        );
        assert_eq!(out[0].values, vec![Value::I64(30), Value::I64(10)]);
        // Projection shrinks the wire size.
        assert!(out[0].wire_size(&out_schema) < 8 + 24);
    }
}
