//! Column projection operator, vectorized.
//!
//! Byte-level data reduction: T2TProbe's join output is projected down to
//! `(srcToR, dstToR, rtt)` before aggregation (paper §VI-B), which is what
//! makes the join stage net-reducing in byte terms. Columnar batches make
//! this a whole-column gather — no per-row work at all.

use crate::batch::Batch;
use crate::ops::{CostModel, OpKind, Operator};
use crate::schema::SchemaRef;

/// Keeps a subset/reordering of input columns.
pub struct ProjectOp {
    cols: Vec<usize>,
    schema: SchemaRef,
    cost: CostModel,
}

impl ProjectOp {
    /// Creates a projection; `schema` must be the projected schema.
    pub fn new(cols: Vec<usize>, schema: SchemaRef, cost: CostModel) -> ProjectOp {
        ProjectOp { cols, schema, cost }
    }

    /// The projected column indices (into the input schema).
    pub fn columns(&self) -> &[usize] {
        &self.cols
    }
}

impl Operator for ProjectOp {
    fn kind(&self) -> OpKind {
        OpKind::Project
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process_batch(&mut self, batch: Batch, out: &mut Vec<Batch>) {
        if batch.is_empty() {
            return;
        }
        let columns = self
            .cols
            .iter()
            .map(|&c| batch.columns[c].clone())
            .collect();
        out.push(Batch {
            schema: self.schema.clone(),
            timestamps: batch.timestamps,
            columns,
        });
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(0)
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::{DataType, Field, Schema};
    use crate::value::Value;

    #[test]
    fn projects_and_reorders() {
        let input = Schema::new(vec![
            Field::new("a", DataType::I64),
            Field::new("b", DataType::I64),
            Field::new("c", DataType::I64),
        ]);
        let out_schema = input.project(&[2, 0]).unwrap();
        let mut p = ProjectOp::new(vec![2, 0], out_schema.clone(), CostModel::fixed(0.2));
        let recs = vec![Record::new(
            1,
            vec![Value::I64(10), Value::I64(20), Value::I64(30)],
        )];
        let batch = Batch::from_records(input, &recs).unwrap();
        let mut out = Vec::new();
        p.process_batch(batch, &mut out);
        let rows = out[0].to_records();
        assert_eq!(rows[0].values, vec![Value::I64(30), Value::I64(10)]);
        // Projection shrinks the wire size.
        assert!(rows[0].wire_size(&out_schema) < 8 + 24);
        assert_eq!(out[0].wire_size(), rows[0].wire_size(&out_schema));
    }
}
