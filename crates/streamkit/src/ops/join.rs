//! Stream-table join (the paper's `J`).
//!
//! Joins the input stream against a static lookup table (e.g. server IP →
//! ToR switch id in T2TProbe). Cost is state-dependent: the paper grows the
//! table 10× at runtime to drive the join into congestion (Fig. 8b), so the
//! per-record cost model must respond to `table.len()`.

use std::collections::HashMap;
use std::sync::Arc;

use crate::batch::{Batch, Column, ColumnBuilder};
use crate::error::Result;
use crate::ops::{CostModel, OpKind, Operator};
use crate::schema::{Field, Schema, SchemaRef};
use crate::value::Value;

/// Cardinality bound for dictionary-encoding a string extension column: a
/// static table whose string values exceed this many distinct entries would
/// ship a dictionary page that no longer pays for itself.
const EXT_DICT_BOUND: usize = 1 << 12;

/// An immutable lookup table: key → extension columns.
///
/// Extension values are stored *columnar* (one dense [`Column`] per field,
/// string fields dictionary-encoded) so the join can build its output by
/// [`Column::gather`] over matched row indices — dictionary-typed tables
/// (ToR names, cluster names) then flow as `Column::Dict` straight into
/// downstream group keys, keeping the whole query on the code fast path.
#[derive(Debug, Clone)]
pub struct StaticTable {
    /// Fields appended to matched records.
    ext_fields: Vec<Field>,
    /// Key → dense row index (last occurrence of a duplicate key wins).
    index: HashMap<Value, u32>,
    /// Dense extension columns, positionally matching `ext_fields`.
    ext_columns: Vec<Column>,
}

impl StaticTable {
    /// Builds a table from `(key, extension values)` pairs (last occurrence
    /// of a duplicate key wins, like the map the table used to be).
    pub fn new(
        ext_fields: Vec<Field>,
        rows: impl IntoIterator<Item = (Value, Vec<Value>)>,
    ) -> StaticTable {
        // Dedup before building the dense columns: a duplicate key replaces
        // its earlier row in place, so the columnar storage holds exactly
        // one row per key (no dead rows inflating memory or the dictionary
        // cardinality check below).
        let mut index: HashMap<Value, u32> = HashMap::new();
        let mut dense: Vec<Vec<Value>> = Vec::new();
        for (key, values) in rows {
            match index.get(&key) {
                Some(&row) => dense[row as usize] = values,
                None => {
                    index.insert(key, dense.len() as u32);
                    dense.push(values);
                }
            }
        }
        let mut builders: Vec<ColumnBuilder> = ext_fields
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype, dense.len()))
            .collect();
        for values in &dense {
            for (builder, value) in builders.iter_mut().zip(values) {
                builder.push(value).expect("table rows match ext fields");
            }
        }
        let ext_columns = builders
            .into_iter()
            .map(|b| {
                let col = b.finish();
                col.dict_encode(EXT_DICT_BOUND).unwrap_or(col)
            })
            .collect();
        StaticTable {
            ext_fields,
            index,
            ext_columns,
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Extension fields appended on match.
    pub fn ext_fields(&self) -> &[Field] {
        &self.ext_fields
    }

    /// The dense extension columns (positionally matching
    /// [`StaticTable::ext_fields`]); probe with [`StaticTable::row_of`] and
    /// gather.
    pub fn ext_columns(&self) -> &[Column] {
        &self.ext_columns
    }

    /// Dense row index of a key.
    pub fn row_of(&self, key: &Value) -> Option<u32> {
        self.index.get(key).copied()
    }

    /// Looks up a key, materialising its extension values.
    pub fn get(&self, key: &Value) -> Option<Vec<Value>> {
        self.row_of(key).map(|row| {
            self.ext_columns
                .iter()
                .map(|c| c.value(row as usize))
                .collect()
        })
    }
}

/// Wraps a gathered column in an outer-join validity mask, intersecting
/// with any validity the table column already carried (a table row may
/// itself hold `Null` extension values).
fn with_validity(col: Column, valid: &[bool]) -> Column {
    match col {
        Column::Opt {
            valid: inner,
            values,
        } => Column::Opt {
            valid: inner.iter().zip(valid).map(|(&a, &b)| a && b).collect(),
            values,
        },
        dense => Column::Opt {
            valid: valid.to_vec(),
            values: Box::new(dense),
        },
    }
}

/// Behaviour on lookup miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinMiss {
    /// Drop the record (inner join).
    Drop,
    /// Emit with `Null` extension values (left outer join).
    Null,
}

/// The join operator.
pub struct JoinOp {
    table: Arc<StaticTable>,
    key_col: usize,
    miss: JoinMiss,
    out_schema: SchemaRef,
    cost: CostModel,
    probes: u64,
    hits: u64,
}

impl JoinOp {
    /// Creates a join of the input stream with `table` on `key_col`.
    pub fn new(
        table: Arc<StaticTable>,
        key_col: usize,
        miss: JoinMiss,
        input_schema: &SchemaRef,
        cost: CostModel,
    ) -> Result<JoinOp> {
        input_schema.field(key_col)?;
        let out_schema = Self::output_schema_for(&table, input_schema);
        Ok(JoinOp {
            table,
            key_col,
            miss,
            out_schema,
            cost,
            probes: 0,
            hits: 0,
        })
    }

    /// Output schema: input fields followed by the table's extension fields.
    /// The per-record envelope is inherited (joined records still cross the
    /// wire in the same framing), so a join *grows* each record's wire size —
    /// which is why T2TProbe needs the projection before aggregation.
    pub fn output_schema_for(table: &StaticTable, input_schema: &SchemaRef) -> SchemaRef {
        let mut fields = input_schema.fields().to_vec();
        fields.extend(table.ext_fields().iter().cloned());
        Schema::with_overhead(fields, input_schema.record_overhead())
    }

    /// Fraction of probes that matched so far (1.0 before any probe).
    pub fn hit_rate(&self) -> f64 {
        if self.probes == 0 {
            1.0
        } else {
            self.hits as f64 / self.probes as f64
        }
    }

    /// Swaps the lookup table at runtime (Fig. 8b's 10× table growth).
    pub fn set_table(&mut self, table: Arc<StaticTable>) {
        self.table = table;
    }
}

impl Operator for JoinOp {
    fn kind(&self) -> OpKind {
        OpKind::Join
    }

    fn output_schema(&self) -> SchemaRef {
        self.out_schema.clone()
    }

    fn process_batch(&mut self, batch: Batch, out: &mut Vec<Batch>) {
        let n = batch.len();
        if n == 0 {
            return;
        }
        self.probes += n as u64;
        let key_col = &batch.columns[self.key_col];
        // Probe to table-row indices; ext columns are then whole-column
        // gathers over the table's dense storage (dictionary pages shared),
        // not row-wise builders.
        let mut mask = vec![false; n];
        let mut take: Vec<u32> = Vec::with_capacity(n);
        let mut valid: Vec<bool> = Vec::with_capacity(n);
        let mut misses_kept = false;
        for row in 0..n {
            // Probe without allocating for the common integer key columns.
            let hit = match key_col {
                Column::U64(v) => self.table.row_of(&Value::U64(v[row])),
                Column::I64(v) => self.table.row_of(&Value::I64(v[row])),
                col => self.table.row_of(&col.value(row)),
            };
            match hit {
                Some(idx) => {
                    self.hits += 1;
                    mask[row] = true;
                    take.push(idx);
                    valid.push(true);
                }
                None => match self.miss {
                    JoinMiss::Drop => {}
                    JoinMiss::Null => {
                        mask[row] = true;
                        // Row 0 as a filler behind the validity mask (an
                        // empty table takes the all-null path below and
                        // never gathers).
                        take.push(0);
                        valid.push(false);
                        misses_kept = true;
                    }
                },
            }
        }
        let kept = take.len();
        if kept == 0 {
            return;
        }
        let base = if kept == n {
            batch
        } else {
            batch.select(&mask)
        };
        let mut columns = base.columns;
        if self.table.is_empty() {
            // Every kept row is an outer-join miss: all-null ext columns.
            columns.extend(self.table.ext_fields().iter().map(|f| {
                let mut b = ColumnBuilder::new(f.dtype, kept);
                for _ in 0..kept {
                    b.push_null();
                }
                b.finish()
            }));
        } else {
            columns.extend(self.table.ext_columns().iter().map(|col| {
                let gathered = col.gather(&take);
                if misses_kept {
                    with_validity(gathered, &valid)
                } else {
                    gathered
                }
            }));
        }
        out.push(Batch {
            schema: self.out_schema.clone(),
            timestamps: base.timestamps,
            columns,
        });
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(self.table.len())
    }

    fn state_size(&self) -> usize {
        self.table.len()
    }

    fn reset(&mut self) {
        self.probes = 0;
        self.hits = 0;
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn ip_to_tor(n: u64) -> Arc<StaticTable> {
        Arc::new(StaticTable::new(
            vec![Field::new("torId", DataType::U32)],
            (0..n).map(|ip| (Value::U64(ip), vec![Value::U64(ip / 40)])),
        ))
    }

    fn input_schema() -> SchemaRef {
        Schema::new(vec![Field::new("srcIp", DataType::U32)])
    }

    fn batch(schema: &SchemaRef, ips: &[u64]) -> Batch {
        let recs: Vec<crate::record::Record> = ips
            .iter()
            .map(|&ip| crate::record::Record::new(0, vec![Value::U64(ip)]))
            .collect();
        Batch::from_records(schema.clone(), &recs).unwrap()
    }

    #[test]
    fn inner_join_appends_and_drops() {
        let schema = input_schema();
        let mut j = JoinOp::new(
            ip_to_tor(100),
            0,
            JoinMiss::Drop,
            &schema,
            CostModel::fixed(5.0),
        )
        .unwrap();
        let mut out = Vec::new();
        j.process_batch(batch(&schema, &[80, 500]), &mut out);
        let rows: Vec<_> = out.iter().flat_map(Batch::to_records).collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values, vec![Value::U64(80), Value::U64(2)]);
        assert_eq!(j.hit_rate(), 0.5);
    }

    #[test]
    fn outer_join_emits_nulls() {
        let schema = input_schema();
        let mut j = JoinOp::new(
            ip_to_tor(10),
            0,
            JoinMiss::Null,
            &schema,
            CostModel::fixed(5.0),
        )
        .unwrap();
        let mut out = Vec::new();
        j.process_batch(batch(&schema, &[999, 5]), &mut out);
        let rows: Vec<_> = out.iter().flat_map(Batch::to_records).collect();
        assert_eq!(rows[0].values, vec![Value::U64(999), Value::Null]);
        assert_eq!(rows[1].values, vec![Value::U64(5), Value::U64(0)]);
    }

    #[test]
    fn cost_tracks_table_size() {
        let schema = input_schema();
        let cost = CostModel::state_dependent(5.0, 0.3, 500.0);
        let mut j = JoinOp::new(ip_to_tor(50), 0, JoinMiss::Drop, &schema, cost).unwrap();
        let small = j.cost_us();
        j.set_table(ip_to_tor(5000));
        assert!(j.cost_us() > small, "10x table must cost more per record");
    }

    #[test]
    fn bad_key_column_is_an_error() {
        let schema = input_schema();
        assert!(JoinOp::new(
            ip_to_tor(1),
            3,
            JoinMiss::Drop,
            &schema,
            CostModel::fixed(1.0)
        )
        .is_err());
    }

    #[test]
    fn duplicate_keys_overwrite_in_place() {
        // Last occurrence wins and the dense storage holds one row per key
        // (no dead rows behind the index).
        let t = StaticTable::new(
            vec![Field::new("v", DataType::U32)],
            [
                (Value::U64(1), vec![Value::U64(10)]),
                (Value::U64(2), vec![Value::U64(20)]),
                (Value::U64(1), vec![Value::U64(99)]),
            ],
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.ext_columns()[0].len(), 2, "one dense row per key");
        assert_eq!(t.get(&Value::U64(1)), Some(vec![Value::U64(99)]));
        assert_eq!(t.get(&Value::U64(2)), Some(vec![Value::U64(20)]));
    }

    #[test]
    fn string_tables_emit_dict_ext_columns() {
        // A dictionary-typed static table (ToR/cluster names) must extend
        // matched batches with `Column::Dict` via gather — the layout that
        // keeps downstream group keys on the code fast path — sharing one
        // page across output batches.
        let schema = input_schema();
        let table = Arc::new(StaticTable::new(
            vec![Field::new("torName", DataType::Str)],
            (0..100u64).map(|ip| (Value::U64(ip), vec![Value::str(format!("tor-{}", ip / 40))])),
        ));
        let mut j = JoinOp::new(table, 0, JoinMiss::Drop, &schema, CostModel::fixed(5.0)).unwrap();
        let mut out = Vec::new();
        j.process_batch(batch(&schema, &[0, 45, 99]), &mut out);
        j.process_batch(batch(&schema, &[80]), &mut out);
        let (da, codes) = out[0].columns[1].as_dict().expect("dict ext column");
        assert_eq!(codes.len(), 3);
        assert_eq!(out[0].columns[1].str_at(1), Some("tor-1"));
        let (db, _) = out[1].columns[1].as_dict().expect("dict ext column");
        assert!(std::ptr::eq(da, db), "page shared across output batches");

        // Outer-join misses wrap the gathered dict in a validity mask.
        let table = Arc::new(StaticTable::new(
            vec![Field::new("torName", DataType::Str)],
            (0..10u64).map(|ip| (Value::U64(ip), vec![Value::str("tor-0")])),
        ));
        let mut j = JoinOp::new(table, 0, JoinMiss::Null, &schema, CostModel::fixed(5.0)).unwrap();
        let mut out = Vec::new();
        j.process_batch(batch(&schema, &[999, 5]), &mut out);
        let rows: Vec<_> = out.iter().flat_map(Batch::to_records).collect();
        assert_eq!(rows[0].values[1], Value::Null);
        assert_eq!(rows[1].values[1], Value::str("tor-0"));
    }

    #[test]
    fn output_schema_appends_ext_fields() {
        let schema = input_schema();
        let out = JoinOp::output_schema_for(&ip_to_tor(1), &schema);
        assert_eq!(out.width(), 2);
        assert_eq!(out.fields()[1].name, "torId");
    }
}
