//! Stream-table join (the paper's `J`).
//!
//! Joins the input stream against a static lookup table (e.g. server IP →
//! ToR switch id in T2TProbe). Cost is state-dependent: the paper grows the
//! table 10× at runtime to drive the join into congestion (Fig. 8b), so the
//! per-record cost model must respond to `table.len()`.

use std::collections::HashMap;
use std::sync::Arc;

use crate::batch::{Batch, Column, ColumnBuilder};
use crate::error::Result;
use crate::ops::{CostModel, OpKind, Operator};
use crate::schema::{Field, Schema, SchemaRef};
use crate::value::Value;

/// An immutable lookup table: key → extension columns.
#[derive(Debug, Clone)]
pub struct StaticTable {
    /// Fields appended to matched records.
    ext_fields: Vec<Field>,
    map: HashMap<Value, Vec<Value>>,
}

impl StaticTable {
    /// Builds a table from `(key, extension values)` pairs.
    pub fn new(
        ext_fields: Vec<Field>,
        rows: impl IntoIterator<Item = (Value, Vec<Value>)>,
    ) -> StaticTable {
        let map = rows.into_iter().collect();
        StaticTable { ext_fields, map }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Extension fields appended on match.
    pub fn ext_fields(&self) -> &[Field] {
        &self.ext_fields
    }

    /// Looks up a key.
    pub fn get(&self, key: &Value) -> Option<&Vec<Value>> {
        self.map.get(key)
    }
}

/// Behaviour on lookup miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinMiss {
    /// Drop the record (inner join).
    Drop,
    /// Emit with `Null` extension values (left outer join).
    Null,
}

/// The join operator.
pub struct JoinOp {
    table: Arc<StaticTable>,
    key_col: usize,
    miss: JoinMiss,
    out_schema: SchemaRef,
    cost: CostModel,
    probes: u64,
    hits: u64,
}

impl JoinOp {
    /// Creates a join of the input stream with `table` on `key_col`.
    pub fn new(
        table: Arc<StaticTable>,
        key_col: usize,
        miss: JoinMiss,
        input_schema: &SchemaRef,
        cost: CostModel,
    ) -> Result<JoinOp> {
        input_schema.field(key_col)?;
        let out_schema = Self::output_schema_for(&table, input_schema);
        Ok(JoinOp {
            table,
            key_col,
            miss,
            out_schema,
            cost,
            probes: 0,
            hits: 0,
        })
    }

    /// Output schema: input fields followed by the table's extension fields.
    /// The per-record envelope is inherited (joined records still cross the
    /// wire in the same framing), so a join *grows* each record's wire size —
    /// which is why T2TProbe needs the projection before aggregation.
    pub fn output_schema_for(table: &StaticTable, input_schema: &SchemaRef) -> SchemaRef {
        let mut fields = input_schema.fields().to_vec();
        fields.extend(table.ext_fields().iter().cloned());
        Schema::with_overhead(fields, input_schema.record_overhead())
    }

    /// Fraction of probes that matched so far (1.0 before any probe).
    pub fn hit_rate(&self) -> f64 {
        if self.probes == 0 {
            1.0
        } else {
            self.hits as f64 / self.probes as f64
        }
    }

    /// Swaps the lookup table at runtime (Fig. 8b's 10× table growth).
    pub fn set_table(&mut self, table: Arc<StaticTable>) {
        self.table = table;
    }
}

impl Operator for JoinOp {
    fn kind(&self) -> OpKind {
        OpKind::Join
    }

    fn output_schema(&self) -> SchemaRef {
        self.out_schema.clone()
    }

    fn process_batch(&mut self, batch: Batch, out: &mut Vec<Batch>) {
        let n = batch.len();
        if n == 0 {
            return;
        }
        self.probes += n as u64;
        let key_col = &batch.columns[self.key_col];
        let ext_fields = self.table.ext_fields();
        let mut ext_builders: Vec<ColumnBuilder> = ext_fields
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype, n))
            .collect();
        let mut mask = vec![false; n];
        let mut kept = 0usize;
        for row in 0..n {
            // Probe without allocating for the common integer key columns.
            let hit = match key_col {
                Column::U64(v) => self.table.get(&Value::U64(v[row])),
                Column::I64(v) => self.table.get(&Value::I64(v[row])),
                col => self.table.get(&col.value(row)),
            };
            match hit {
                Some(ext) => {
                    self.hits += 1;
                    mask[row] = true;
                    kept += 1;
                    for (builder, value) in ext_builders.iter_mut().zip(ext) {
                        builder.push(value).expect("table rows match ext fields");
                    }
                }
                None => match self.miss {
                    JoinMiss::Drop => {}
                    JoinMiss::Null => {
                        mask[row] = true;
                        kept += 1;
                        for builder in &mut ext_builders {
                            builder.push_null();
                        }
                    }
                },
            }
        }
        if kept == 0 {
            return;
        }
        let base = if kept == n {
            batch
        } else {
            batch.select(&mask)
        };
        let mut columns = base.columns;
        columns.extend(ext_builders.into_iter().map(ColumnBuilder::finish));
        out.push(Batch {
            schema: self.out_schema.clone(),
            timestamps: base.timestamps,
            columns,
        });
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(self.table.len())
    }

    fn state_size(&self) -> usize {
        self.table.len()
    }

    fn reset(&mut self) {
        self.probes = 0;
        self.hits = 0;
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn ip_to_tor(n: u64) -> Arc<StaticTable> {
        Arc::new(StaticTable::new(
            vec![Field::new("torId", DataType::U32)],
            (0..n).map(|ip| (Value::U64(ip), vec![Value::U64(ip / 40)])),
        ))
    }

    fn input_schema() -> SchemaRef {
        Schema::new(vec![Field::new("srcIp", DataType::U32)])
    }

    fn batch(schema: &SchemaRef, ips: &[u64]) -> Batch {
        let recs: Vec<crate::record::Record> = ips
            .iter()
            .map(|&ip| crate::record::Record::new(0, vec![Value::U64(ip)]))
            .collect();
        Batch::from_records(schema.clone(), &recs).unwrap()
    }

    #[test]
    fn inner_join_appends_and_drops() {
        let schema = input_schema();
        let mut j = JoinOp::new(
            ip_to_tor(100),
            0,
            JoinMiss::Drop,
            &schema,
            CostModel::fixed(5.0),
        )
        .unwrap();
        let mut out = Vec::new();
        j.process_batch(batch(&schema, &[80, 500]), &mut out);
        let rows: Vec<_> = out.iter().flat_map(Batch::to_records).collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values, vec![Value::U64(80), Value::U64(2)]);
        assert_eq!(j.hit_rate(), 0.5);
    }

    #[test]
    fn outer_join_emits_nulls() {
        let schema = input_schema();
        let mut j = JoinOp::new(
            ip_to_tor(10),
            0,
            JoinMiss::Null,
            &schema,
            CostModel::fixed(5.0),
        )
        .unwrap();
        let mut out = Vec::new();
        j.process_batch(batch(&schema, &[999, 5]), &mut out);
        let rows: Vec<_> = out.iter().flat_map(Batch::to_records).collect();
        assert_eq!(rows[0].values, vec![Value::U64(999), Value::Null]);
        assert_eq!(rows[1].values, vec![Value::U64(5), Value::U64(0)]);
    }

    #[test]
    fn cost_tracks_table_size() {
        let schema = input_schema();
        let cost = CostModel::state_dependent(5.0, 0.3, 500.0);
        let mut j = JoinOp::new(ip_to_tor(50), 0, JoinMiss::Drop, &schema, cost).unwrap();
        let small = j.cost_us();
        j.set_table(ip_to_tor(5000));
        assert!(j.cost_us() > small, "10x table must cost more per record");
    }

    #[test]
    fn bad_key_column_is_an_error() {
        let schema = input_schema();
        assert!(JoinOp::new(
            ip_to_tor(1),
            3,
            JoinMiss::Drop,
            &schema,
            CostModel::fixed(1.0)
        )
        .is_err());
    }

    #[test]
    fn output_schema_appends_ext_fields() {
        let schema = input_schema();
        let out = JoinOp::output_schema_for(&ip_to_tor(1), &schema);
        assert_eq!(out.width(), 2);
        assert_eq!(out.fields()[1].name, "torId");
    }
}
