//! Map (user-defined transformation) operator.
//!
//! The paper's text query (Listing 3) uses three maps: normalise the log line,
//! parse it into a `JobStats` object, and bucketise the statistic. Map
//! functions are described as data (`MapFn`) so the optimiser can reason about
//! them (schema effects, fusion, filter pushdown) — with a `Custom` escape
//! hatch for arbitrary user logic.

use std::sync::Arc;

use crate::batch::{Batch, Column, ColumnBuilder, DictBuilder, StreamDict};
use crate::error::{Error, Result};
use crate::ops::{CostModel, OpKind, Operator};
use crate::record::Record;
use crate::schema::{DataType, Field, Schema, SchemaRef};
use crate::time::Ts;
use crate::value::Value;

/// A describable record transformation.
#[derive(Clone)]
pub enum MapFn {
    /// Trim + lowercase a string column in place (schema preserving).
    TrimLower(usize),
    /// Parse a `key=value`-style log line into `(tenant, stat_name, stat)`.
    /// Lines are expected to contain `tenant name=<t>` and one
    /// `<stat name>=<number>` pair; anything else yields no output.
    ParseJobStats {
        /// Column holding the raw log line.
        col: usize,
        /// Recognised stat names (e.g. "job running time", "cpu util").
        stats: Vec<String>,
    },
    /// Replace a numeric column with its histogram bucket index:
    /// `width_bucket(v, lo, hi, buckets)` (schema type becomes I64).
    WidthBucket {
        /// Column to bucketise.
        col: usize,
        /// Range lower bound.
        lo: f64,
        /// Range upper bound.
        hi: f64,
        /// Number of buckets.
        buckets: u32,
    },
    /// Arbitrary user transformation with an explicit output schema.
    Custom {
        /// Name for plans/traces.
        name: &'static str,
        /// Output schema.
        schema: SchemaRef,
        /// The transformation; returning `None` drops the record.
        #[allow(clippy::type_complexity)]
        f: Arc<dyn Fn(&Record) -> Option<Record> + Send + Sync>,
    },
}

impl std::fmt::Debug for MapFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapFn::TrimLower(c) => write!(f, "TrimLower({c})"),
            MapFn::ParseJobStats { col, .. } => write!(f, "ParseJobStats({col})"),
            MapFn::WidthBucket {
                col,
                lo,
                hi,
                buckets,
            } => {
                write!(f, "WidthBucket({col}, {lo}, {hi}, {buckets})")
            }
            MapFn::Custom { name, .. } => write!(f, "Custom({name})"),
        }
    }
}

impl MapFn {
    /// Output schema given the input schema.
    pub fn output_schema(&self, input: &SchemaRef) -> Result<SchemaRef> {
        match self {
            MapFn::TrimLower(col) => {
                let field = input.field(*col)?;
                if field.dtype != DataType::Str {
                    return Err(Error::TypeMismatch {
                        expected: "str",
                        got: "non-str",
                    });
                }
                Ok(input.clone())
            }
            MapFn::ParseJobStats { col, .. } => {
                input.field(*col)?;
                Ok(Schema::with_overhead(
                    vec![
                        Field::new("tenant", DataType::Str),
                        Field::new("stat_name", DataType::Str),
                        Field::new("stat", DataType::F64),
                    ],
                    input.record_overhead(),
                ))
            }
            MapFn::WidthBucket { col, .. } => {
                let mut fields = input.fields().to_vec();
                let field = fields.get_mut(*col).ok_or(Error::ColumnIndex {
                    index: *col,
                    width: input.width(),
                })?;
                field.dtype = DataType::I64;
                Ok(Schema::with_overhead(fields, input.record_overhead()))
            }
            MapFn::Custom { schema, .. } => Ok(schema.clone()),
        }
    }

    /// True when the function preserves the input schema and only rewrites
    /// the listed columns — the condition for pushing a filter below it.
    pub fn schema_preserving_rewrites(&self) -> Option<Vec<usize>> {
        match self {
            MapFn::TrimLower(c) => Some(vec![*c]),
            MapFn::WidthBucket { .. } => None, // changes a column's type
            _ => None,
        }
    }

    /// Applies the transformation.
    pub fn apply(&self, rec: &Record) -> Option<Record> {
        match self {
            MapFn::TrimLower(col) => {
                let mut rec = rec.clone();
                if let Some(Value::Str(s)) = rec.values.get(*col) {
                    let cleaned = s.trim().to_lowercase();
                    rec.values[*col] = Value::str(cleaned);
                }
                Some(rec)
            }
            MapFn::ParseJobStats { col, stats } => {
                let line = rec.values.get(*col)?.as_str()?;
                let tenant = extract_kv(line, "tenant name")?;
                for stat in stats {
                    if let Some(v) = extract_kv(line, stat) {
                        let value: f64 = v.trim().parse().ok()?;
                        return Some(Record::new(
                            rec.ts,
                            vec![
                                Value::str(tenant.trim()),
                                Value::str(stat.as_str()),
                                Value::F64(value),
                            ],
                        ));
                    }
                }
                None
            }
            MapFn::WidthBucket {
                col,
                lo,
                hi,
                buckets,
            } => {
                let mut rec = rec.clone();
                let v = rec.values.get(*col)?.as_f64()?;
                let b = width_bucket(v, *lo, *hi, *buckets);
                rec.values[*col] = Value::I64(b);
                Some(rec)
            }
            MapFn::Custom { f, .. } => f(rec),
        }
    }

    /// Applies the transformation over a whole batch, column-wise where the
    /// function shape allows it. Row-identical to mapping [`MapFn::apply`]
    /// over the batch's records.
    pub fn apply_batch(&self, batch: &Batch, out_schema: &SchemaRef) -> Option<Batch> {
        if batch.is_empty() {
            return None;
        }
        match self {
            MapFn::TrimLower(col) => {
                let source = &batch.columns[*col];
                let mut cleaned = ColumnBuilder::new(DataType::Str, source.len());
                for row in 0..source.len() {
                    match source.str_at(row) {
                        Some(s) => cleaned
                            .push_str(&s.trim().to_lowercase())
                            .expect("str builder"),
                        // Row path leaves non-string values untouched.
                        None => cleaned.push(&source.value(row)).ok()?,
                    }
                }
                let mut columns = batch.columns.clone();
                columns[*col] = cleaned.finish();
                Some(Batch {
                    schema: out_schema.clone(),
                    timestamps: batch.timestamps.clone(),
                    columns,
                })
            }
            MapFn::ParseJobStats { col, stats } => {
                let source = &batch.columns[*col];
                let n = source.len();
                let mut timestamps: Vec<Ts> = Vec::with_capacity(n);
                // Tenant and stat names are low-cardinality: emit them as
                // native dictionary columns so downstream grouping and
                // predicate kernels run on codes.
                let mut tenants = DictBuilder::new(n);
                let mut names = DictBuilder::new(n);
                let mut values = ColumnBuilder::new(DataType::F64, n);
                for row in 0..n {
                    let Some(line) = source.str_at(row) else {
                        continue;
                    };
                    let Some(tenant) = extract_kv(line, "tenant name") else {
                        continue;
                    };
                    for stat in stats {
                        if let Some(v) = extract_kv(line, stat) {
                            if let Ok(value) = v.trim().parse::<f64>() {
                                timestamps.push(batch.timestamps[row]);
                                tenants.push(tenant.trim());
                                names.push(stat);
                                values.push(&Value::F64(value)).expect("f64 builder");
                            }
                            break;
                        }
                    }
                }
                if timestamps.is_empty() {
                    return None;
                }
                Some(Batch {
                    schema: out_schema.clone(),
                    timestamps,
                    columns: vec![tenants.finish(), names.finish(), values.finish()],
                })
            }
            MapFn::WidthBucket {
                col,
                lo,
                hi,
                buckets,
            } => {
                let source = &batch.columns[*col];
                let n = source.len();
                // Rows whose value is non-numeric are dropped, as in the row
                // path (`apply` returns None).
                let mask: Vec<bool> = (0..n).map(|r| source.f64_at(r).is_some()).collect();
                let kept = mask.iter().filter(|&&k| k).count();
                if kept == 0 {
                    return None;
                }
                let mut bucketed: Vec<i64> = Vec::with_capacity(kept);
                for row in 0..n {
                    if let Some(v) = source.f64_at(row) {
                        bucketed.push(width_bucket(v, *lo, *hi, *buckets));
                    }
                }
                let mut out = if kept == n {
                    batch.clone()
                } else {
                    batch.select(&mask)
                };
                out.schema = out_schema.clone();
                out.columns[*col] = Column::I64(bucketed);
                Some(out)
            }
            MapFn::Custom { f, .. } => {
                let mut rows = Vec::with_capacity(batch.len());
                for rec in batch.to_records() {
                    if let Some(mapped) = f(&rec) {
                        rows.push(mapped);
                    }
                }
                if rows.is_empty() {
                    return None;
                }
                Some(
                    Batch::from_records(out_schema.clone(), &rows)
                        .expect("custom map output must match its declared schema"),
                )
            }
        }
    }
}

/// SQL-style `width_bucket`: 0 below range, `buckets+1` above, else 1-based
/// bucket index.
pub fn width_bucket(v: f64, lo: f64, hi: f64, buckets: u32) -> i64 {
    if v < lo {
        0
    } else if v >= hi {
        i64::from(buckets) + 1
    } else {
        ((v - lo) / (hi - lo) * f64::from(buckets)) as i64 + 1
    }
}

/// Extracts the value following `key=` up to the next recognised delimiter.
fn extract_kv<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = line.get(start..)?.strip_prefix('=')?;
    let end = rest.find([',', ';']).unwrap_or(rest.len());
    // A value runs until a delimiter; embedded spaces are allowed for tenant
    // names but numeric stats are parsed with trim.
    Some(&rest[..end])
}

/// The map operator.
pub struct MapOp {
    f: MapFn,
    schema: SchemaRef,
    cost: CostModel,
    /// Persistent parse-stage dictionaries (`ParseJobStats` only): the
    /// tenant and stat-name streams live in the operator, not the batch, so
    /// parsed columns carry codes that stay valid across batches *and*
    /// epochs and each page is a monotone snapshot of one stream — which is
    /// what lets the wire ship dictionary deltas instead of a full page per
    /// frame.
    parse_dicts: Option<(StreamDict, StreamDict)>,
}

impl MapOp {
    /// Creates a map operator; `schema` must equal `f.output_schema(input)`.
    pub fn new(f: MapFn, schema: SchemaRef, cost: CostModel) -> MapOp {
        let parse_dicts = matches!(f, MapFn::ParseJobStats { .. })
            .then(|| (StreamDict::new(), StreamDict::new()));
        MapOp {
            f,
            schema,
            cost,
            parse_dicts,
        }
    }

    /// The map function.
    pub fn map_fn(&self) -> &MapFn {
        &self.f
    }
}

impl Operator for MapOp {
    fn kind(&self) -> OpKind {
        OpKind::Map
    }

    fn name(&self) -> String {
        format!("M[{:?}]", self.f)
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process_batch(&mut self, batch: Batch, out: &mut Vec<Batch>) {
        let mapped = match (&self.f, &mut self.parse_dicts) {
            (MapFn::ParseJobStats { col, stats }, Some((tenants, names))) => {
                parse_job_stats_persistent(&batch, &self.schema, *col, stats, tenants, names)
            }
            _ => self.f.apply_batch(&batch, &self.schema),
        };
        if let Some(mapped) = mapped {
            out.push(mapped);
        }
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(0)
    }

    fn reset(&mut self) {
        // Fresh streams (fresh dict ids) for a fresh run: receivers must
        // never confuse a reset stream's codes with the old assignment.
        if let Some(dicts) = &mut self.parse_dicts {
            *dicts = (StreamDict::new(), StreamDict::new());
        }
    }
}

/// Column-wise [`MapFn::ParseJobStats`] against the operator's persistent
/// stream dictionaries. Row-identical to [`MapFn::apply_batch`] — same
/// lines kept, same strings, same values — but tenant / stat codes are
/// interned once per stream rather than once per batch, so downstream
/// grouping and shard hashing stay code-native across epochs.
fn parse_job_stats_persistent(
    batch: &Batch,
    out_schema: &SchemaRef,
    col: usize,
    stats: &[String],
    tenants: &mut StreamDict,
    names: &mut StreamDict,
) -> Option<Batch> {
    if batch.is_empty() {
        return None;
    }
    let source = &batch.columns[col];
    let n = source.len();
    let mut timestamps: Vec<Ts> = Vec::with_capacity(n);
    let mut tenant_codes: Vec<u32> = Vec::with_capacity(n);
    let mut name_codes: Vec<u32> = Vec::with_capacity(n);
    let mut values = ColumnBuilder::new(DataType::F64, n);
    for row in 0..n {
        let Some(line) = source.str_at(row) else {
            continue;
        };
        let Some(tenant) = extract_kv(line, "tenant name") else {
            continue;
        };
        for stat in stats {
            if let Some(v) = extract_kv(line, stat) {
                if let Ok(value) = v.trim().parse::<f64>() {
                    timestamps.push(batch.timestamps[row]);
                    tenant_codes.push(tenants.intern(tenant.trim()));
                    name_codes.push(names.intern(stat));
                    values.push(&Value::F64(value)).expect("f64 builder");
                }
                break;
            }
        }
    }
    if timestamps.is_empty() {
        return None;
    }
    Some(Batch {
        schema: out_schema.clone(),
        timestamps,
        columns: vec![
            Column::Dict {
                codes: tenant_codes,
                dict: tenants.snapshot(),
            },
            Column::Dict {
                codes: name_codes,
                dict: names.snapshot(),
            },
            values.finish(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_schema() -> SchemaRef {
        Schema::new(vec![Field::new("line", DataType::Str)])
    }

    #[test]
    fn trim_lower_normalises() {
        let f = MapFn::TrimLower(0);
        let rec = Record::new(0, vec![Value::str("  Tenant Name=Acme  ")]);
        let out = f.apply(&rec).unwrap();
        assert_eq!(out.values[0], Value::str("tenant name=acme"));
        assert_eq!(f.output_schema(&log_schema()).unwrap(), log_schema());
    }

    #[test]
    fn parse_job_stats_extracts_tenant_and_stat() {
        let f = MapFn::ParseJobStats {
            col: 0,
            stats: vec!["job running time".into(), "cpu util".into()],
        };
        let rec = Record::new(7, vec![Value::str("tenant name=acme, cpu util=62.5")]);
        let out = f.apply(&rec).unwrap();
        assert_eq!(out.ts, 7);
        assert_eq!(out.values[0], Value::str("acme"));
        assert_eq!(out.values[1], Value::str("cpu util"));
        assert_eq!(out.values[2], Value::F64(62.5));
    }

    #[test]
    fn parse_job_stats_drops_unparseable_lines() {
        let f = MapFn::ParseJobStats {
            col: 0,
            stats: vec!["cpu util".into()],
        };
        assert!(f
            .apply(&Record::new(0, vec![Value::str("heartbeat ok")]))
            .is_none());
        assert!(f
            .apply(&Record::new(
                0,
                vec![Value::str("tenant name=acme, cpu util=NaNopenope")]
            ))
            .is_none());
    }

    #[test]
    fn width_bucket_matches_sql_semantics() {
        assert_eq!(width_bucket(-1.0, 0.0, 100.0, 10), 0);
        assert_eq!(width_bucket(0.0, 0.0, 100.0, 10), 1);
        assert_eq!(width_bucket(55.0, 0.0, 100.0, 10), 6);
        assert_eq!(width_bucket(100.0, 0.0, 100.0, 10), 11);
    }

    #[test]
    fn width_bucket_map_changes_schema_type() {
        let schema = Schema::new(vec![
            Field::new("tenant", DataType::Str),
            Field::new("stat", DataType::F64),
        ]);
        let f = MapFn::WidthBucket {
            col: 1,
            lo: 0.0,
            hi: 100.0,
            buckets: 10,
        };
        let out_schema = f.output_schema(&schema).unwrap();
        assert_eq!(out_schema.fields()[1].dtype, DataType::I64);
        let rec = Record::new(0, vec![Value::str("t"), Value::F64(31.0)]);
        assert_eq!(f.apply(&rec).unwrap().values[1], Value::I64(4));
    }

    #[test]
    fn map_op_drops_when_fn_returns_none() {
        let f = MapFn::ParseJobStats {
            col: 0,
            stats: vec!["cpu util".into()],
        };
        let out_schema = f.output_schema(&log_schema()).unwrap();
        let mut op = MapOp::new(f, out_schema, CostModel::fixed(1.0));
        let recs = vec![
            Record::new(0, vec![Value::str("noise")]),
            Record::new(0, vec![Value::str("tenant name=a, cpu util=5")]),
        ];
        let batch = Batch::from_records(log_schema(), &recs).unwrap();
        let mut out = Vec::new();
        op.process_batch(batch, &mut out);
        assert_eq!(out.iter().map(Batch::len).sum::<usize>(), 1);
    }

    #[test]
    fn parse_op_dicts_are_persistent_across_batches() {
        // The operator path (not the bare MapFn) interns into stream
        // dictionaries: two epochs of lines must come back with the same
        // dict id and stable codes, row-identical to the batch-local path.
        let f = MapFn::ParseJobStats {
            col: 0,
            stats: vec!["cpu util".into()],
        };
        let out_schema = f.output_schema(&log_schema()).unwrap();
        let mut op = MapOp::new(f.clone(), out_schema.clone(), CostModel::fixed(1.0));
        let epoch = |base: i64| -> Batch {
            let recs: Vec<Record> = (0..6)
                .map(|i| {
                    let t = ["acme", "zed", "ora"][i % 3];
                    Record::new(
                        base + i as i64,
                        vec![Value::str(format!("tenant name={t}, cpu util={i}.5"))],
                    )
                })
                .collect();
            Batch::from_records(log_schema(), &recs).unwrap()
        };
        let mut out = Vec::new();
        op.process_batch(epoch(0), &mut out);
        op.process_batch(epoch(1_000_000), &mut out);
        let (d0, c0) = out[0].columns[0].as_dict().unwrap();
        let (d1, c1) = out[1].columns[0].as_dict().unwrap();
        assert_ne!(d0.id(), 0, "parse dicts are persistent streams");
        assert_eq!(d0.id(), d1.id(), "one stream across batches");
        assert_eq!(d0.get(c0[0]), d1.get(c1[0]), "codes are stable identity");

        // Row contents equal the stateless batch-local path.
        for (e, batch) in out.iter().enumerate() {
            let plain = f
                .apply_batch(&epoch(e as i64 * 1_000_000), &out_schema)
                .unwrap();
            assert_eq!(batch.to_records(), plain.to_records());
        }

        // A reset starts a fresh stream: new id, so stale mirrors can never
        // misread re-interned codes.
        op.reset();
        let mut fresh = Vec::new();
        op.process_batch(epoch(0), &mut fresh);
        let (d2, _) = fresh[0].columns[0].as_dict().unwrap();
        assert_ne!(d2.id(), d0.id(), "reset must mint a new stream id");
    }

    #[test]
    fn batch_apply_matches_row_apply() {
        // Every MapFn shape must produce, row for row, what the scalar
        // `apply` path produces.
        let lines = [
            "  Tenant Name=Acme, CPU Util=62.5  ",
            "heartbeat ok",
            "tenant name=zed, job running time=250.0, host=h7",
            "tenant name=bad, cpu util=NaNope",
        ];
        let recs: Vec<Record> = lines
            .iter()
            .enumerate()
            .map(|(i, l)| Record::new(i as i64, vec![Value::str(*l)]))
            .collect();
        let schema = log_schema();
        let fns = [
            MapFn::TrimLower(0),
            MapFn::ParseJobStats {
                col: 0,
                stats: vec!["job running time".into(), "cpu util".into()],
            },
        ];
        for f in fns {
            let out_schema = f.output_schema(&schema).unwrap();
            let row_out: Vec<Record> = recs.iter().filter_map(|r| f.apply(r)).collect();
            let batch = Batch::from_records(schema.clone(), &recs).unwrap();
            let batch_out = f
                .apply_batch(&batch, &out_schema)
                .map(|b| b.to_records())
                .unwrap_or_default();
            assert_eq!(batch_out, row_out, "mismatch for {f:?}");
        }

        // WidthBucket over a numeric column (needs the parsed schema).
        let parsed = Schema::new(vec![
            Field::new("tenant", DataType::Str),
            Field::new("stat", DataType::F64),
        ]);
        let f = MapFn::WidthBucket {
            col: 1,
            lo: 0.0,
            hi: 100.0,
            buckets: 10,
        };
        let out_schema = f.output_schema(&parsed).unwrap();
        let precs = vec![
            Record::new(0, vec![Value::str("a"), Value::F64(31.0)]),
            Record::new(1, vec![Value::str("b"), Value::Null]),
            Record::new(2, vec![Value::str("c"), Value::F64(99.0)]),
        ];
        let row_out: Vec<Record> = precs.iter().filter_map(|r| f.apply(r)).collect();
        let batch = Batch::from_records(parsed, &precs).unwrap();
        let batch_out = f.apply_batch(&batch, &out_schema).unwrap().to_records();
        assert_eq!(batch_out, row_out);
    }
}
