//! Keyed, windowed, incrementally-updatable aggregation (the paper's `G+R`).
//!
//! The operator supports two *roles*:
//!
//! * [`AggRole::Final`] — the authoritative instance (stream processor, or a
//!   data source running the whole query): emits finalised results when a
//!   window closes, and optionally per-epoch deltas for live dashboards.
//! * [`AggRole::Partial`] — a source-side pre-aggregator under data-level
//!   partitioning: accumulates mergeable state for the records its control
//!   proxy forwarded locally and ships *state increments* to the replica via
//!   [`Operator::take_state_delta`]; it never emits result records itself, so
//!   merged results are exact regardless of how records were split.
//!
//! Group state is kept in insertion order (vector + hash index) so emission is
//! deterministic — a requirement for reproducible experiments.

use std::collections::HashMap;

use crate::agg::{AggKind, AggSpec, AggState};
use crate::ops::{CostModel, GroupPartialEntry, OpKind, Operator, StatePartial};
use crate::record::Record;
use crate::schema::{DataType, Field, Schema, SchemaRef};
use crate::time::Ts;
use crate::value::Value;
use crate::window::TumblingWindow;

/// When results are emitted (Final role only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitMode {
    /// Emit each window's results once, when the watermark closes it.
    OnWindowClose,
    /// Additionally emit updated aggregates for changed groups every epoch
    /// (live-dashboard mode; this is the continuous result stream whose
    /// volume Fig. 3 accounts as G+R output).
    PerEpochDelta,
}

/// Whether this instance is authoritative or a source-side pre-aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggRole {
    /// Emits finalised results.
    Final,
    /// Accumulates mergeable partial state only.
    Partial,
}

type GroupKey = (Ts, Vec<Value>);

/// Insertion-ordered group table: deterministic iteration + O(1) lookup.
#[derive(Default)]
struct GroupTable {
    index: HashMap<GroupKey, usize>,
    entries: Vec<(GroupKey, Vec<AggState>, bool)>,
}

impl GroupTable {
    fn upsert(
        &mut self,
        key: GroupKey,
        init: impl FnOnce() -> Vec<AggState>,
    ) -> &mut Vec<AggState> {
        let idx = match self.index.get(&key) {
            Some(&i) => {
                self.entries[i].2 = true;
                i
            }
            None => {
                let i = self.entries.len();
                self.entries.push((key.clone(), init(), true));
                self.index.insert(key, i);
                i
            }
        };
        &mut self.entries[idx].1
    }

    /// Merges `incoming` into an existing entry, or adopts it as a new entry.
    fn insert_or_merge(&mut self, key: GroupKey, incoming: Vec<AggState>) {
        match self.index.get(&key) {
            Some(&i) => {
                self.entries[i].2 = true;
                for (s, inc) in self.entries[i].1.iter_mut().zip(&incoming) {
                    s.merge(inc);
                }
            }
            None => {
                let i = self.entries.len();
                self.entries.push((key.clone(), incoming, true));
                self.index.insert(key, i);
            }
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Removes and returns entries whose window is closed by `wm`, preserving
    /// insertion order in both partitions.
    fn split_closed(&mut self, window: TumblingWindow, wm: Ts) -> Vec<(GroupKey, Vec<AggState>)> {
        let mut closed = Vec::new();
        let mut kept = Vec::with_capacity(self.entries.len());
        for (key, states, changed) in self.entries.drain(..) {
            if window.is_closed(key.0, wm) {
                closed.push((key, states));
            } else {
                kept.push((key, states, changed));
            }
        }
        self.entries = kept;
        self.index.clear();
        for (i, (key, _, _)) in self.entries.iter().enumerate() {
            self.index.insert(key.clone(), i);
        }
        closed
    }

    fn drain_all(&mut self) -> Vec<(GroupKey, Vec<AggState>)> {
        self.index.clear();
        self.entries.drain(..).map(|(k, s, _)| (k, s)).collect()
    }

    fn take_changed(&mut self) -> Vec<(GroupKey, Vec<AggState>)> {
        let mut out = Vec::new();
        for (key, states, changed) in self.entries.iter_mut() {
            if *changed {
                out.push((key.clone(), states.clone()));
                *changed = false;
            }
        }
        out
    }

    fn clear(&mut self) {
        self.index.clear();
        self.entries.clear();
    }
}

/// The `G+R` operator.
pub struct GroupAggregateOp {
    keys: Vec<usize>,
    aggs: Vec<AggSpec>,
    window: TumblingWindow,
    emit: EmitMode,
    role: AggRole,
    table: GroupTable,
    out_schema: SchemaRef,
    cost: CostModel,
}

impl GroupAggregateOp {
    /// Creates the operator. The output schema is
    /// `[window_start: I64, <key fields>, <agg fields>]`.
    pub fn new(
        keys: Vec<usize>,
        aggs: Vec<AggSpec>,
        input_schema: &SchemaRef,
        window: TumblingWindow,
        emit: EmitMode,
        role: AggRole,
        cost: CostModel,
    ) -> GroupAggregateOp {
        let out_schema = Self::output_schema_for(&keys, &aggs, input_schema);
        GroupAggregateOp {
            keys,
            aggs,
            window,
            emit,
            role,
            table: GroupTable::default(),
            out_schema,
            cost,
        }
    }

    /// Computes the output schema without constructing the operator.
    pub fn output_schema_for(
        keys: &[usize],
        aggs: &[AggSpec],
        input_schema: &SchemaRef,
    ) -> SchemaRef {
        let mut fields = vec![Field::new("window_start", DataType::I64)];
        for &k in keys {
            fields.push(
                input_schema
                    .field(k)
                    .cloned()
                    .unwrap_or_else(|_| Field::new(format!("key{k}"), DataType::I64)),
            );
        }
        for spec in aggs {
            let dtype = match spec.kind {
                AggKind::Count => DataType::U64,
                _ => DataType::F64,
            };
            fields.push(Field::new(spec.name.clone(), dtype));
        }
        Schema::with_overhead(fields, input_schema.record_overhead())
    }

    /// Live group count.
    pub fn group_count(&self) -> usize {
        self.table.len()
    }

    /// This instance's role.
    pub fn role(&self) -> AggRole {
        self.role
    }

    fn emit_row(&self, key: &GroupKey, states: &[AggState], out: &mut Vec<Record>) {
        let mut values = Vec::with_capacity(1 + key.1.len() + states.len());
        values.push(Value::I64(key.0));
        values.extend(key.1.iter().cloned());
        values.extend(states.iter().map(AggState::finalize));
        // Result timestamp is the window end, the event-time point at which
        // the result is complete.
        out.push(Record::new(key.0 + self.window.size, values));
    }
}

impl Operator for GroupAggregateOp {
    fn kind(&self) -> OpKind {
        OpKind::GroupAggregate
    }

    fn output_schema(&self) -> SchemaRef {
        self.out_schema.clone()
    }

    fn process(&mut self, rec: Record, _out: &mut Vec<Record>) {
        let window_start = self.window.start_of(rec.ts);
        let key: Vec<Value> = self.keys.iter().map(|&k| rec.values[k].clone()).collect();
        let aggs = &self.aggs;
        let states = self.table.upsert((window_start, key), || {
            aggs.iter().map(AggSpec::init).collect()
        });
        for (state, spec) in states.iter_mut().zip(aggs) {
            let value = rec.values.get(spec.col).unwrap_or(&Value::Null);
            state.update(value);
        }
    }

    fn on_watermark(&mut self, wm: Ts, out: &mut Vec<Record>) {
        // Partial role never emits: its state (including closed windows) is
        // shipped wholesale by take_state_delta at the ship interval.
        if self.role != AggRole::Final {
            return;
        }
        let closed = self.table.split_closed(self.window, wm);
        for (key, states) in &closed {
            self.emit_row(key, states, out);
        }
    }

    fn on_epoch(&mut self, out: &mut Vec<Record>) {
        if self.role == AggRole::Final && self.emit == EmitMode::PerEpochDelta {
            for (key, states) in self.table.take_changed() {
                self.emit_row(&key, &states, out);
            }
        }
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(self.table.len())
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn state_size(&self) -> usize {
        self.table.len()
    }

    fn take_state_delta(&mut self) -> Option<StatePartial> {
        if self.role != AggRole::Partial || self.table.len() == 0 {
            return None;
        }
        let entries = self
            .table
            .drain_all()
            .into_iter()
            .map(|((window_start, key), states)| GroupPartialEntry {
                window_start,
                key,
                states,
            })
            .collect();
        Some(StatePartial::Group(entries))
    }

    fn merge_state(&mut self, state: StatePartial) {
        let StatePartial::Group(entries) = state;
        for entry in entries {
            self.table
                .insert_or_merge((entry.window_start, entry.key), entry.states);
        }
    }

    fn reset(&mut self) {
        self.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggKind;
    use crate::time::secs;

    fn input_schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("src", DataType::U32),
            Field::new("dst", DataType::U32),
            Field::new("rtt", DataType::U32),
        ])
    }

    fn rtt_aggs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(AggKind::Avg, 2, "avg_rtt"),
            AggSpec::new(AggKind::Max, 2, "max_rtt"),
            AggSpec::new(AggKind::Min, 2, "min_rtt"),
        ]
    }

    fn op(role: AggRole, emit: EmitMode) -> GroupAggregateOp {
        GroupAggregateOp::new(
            vec![0, 1],
            rtt_aggs(),
            &input_schema(),
            TumblingWindow::new(secs(10.0)),
            emit,
            role,
            CostModel::fixed(20.0),
        )
    }

    fn rec(ts_s: f64, src: u64, dst: u64, rtt: u64) -> Record {
        Record::new(
            secs(ts_s),
            vec![Value::U64(src), Value::U64(dst), Value::U64(rtt)],
        )
    }

    #[test]
    fn final_role_emits_on_window_close() {
        let mut g = op(AggRole::Final, EmitMode::OnWindowClose);
        let mut out = Vec::new();
        g.process(rec(1.0, 1, 2, 100), &mut out);
        g.process(rec(2.0, 1, 2, 300), &mut out);
        g.process(rec(3.0, 9, 9, 50), &mut out);
        assert!(out.is_empty());
        g.on_watermark(secs(9.0), &mut out);
        assert!(out.is_empty(), "window not closed yet");
        g.on_watermark(secs(10.0), &mut out);
        assert_eq!(out.len(), 2);
        // Insertion-ordered emission: group (1,2) first.
        assert_eq!(out[0].values[1], Value::U64(1));
        assert_eq!(out[0].values[3], Value::F64(200.0)); // avg
        assert_eq!(out[0].values[4], Value::F64(300.0)); // max
        assert_eq!(out[0].values[5], Value::F64(100.0)); // min
        assert_eq!(out[0].ts, secs(10.0));
        assert_eq!(g.group_count(), 0);
    }

    #[test]
    fn per_epoch_delta_emits_only_changed_groups() {
        let mut g = op(AggRole::Final, EmitMode::PerEpochDelta);
        let mut out = Vec::new();
        g.process(rec(1.0, 1, 2, 100), &mut out);
        g.on_epoch(&mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        g.on_epoch(&mut out);
        assert!(out.is_empty(), "no change since last epoch");
        g.process(rec(2.0, 1, 2, 900), &mut out);
        g.on_epoch(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values[4], Value::F64(900.0));
    }

    #[test]
    fn partial_role_ships_state_and_merge_is_exact() {
        // Split a stream arbitrarily between a partial-role source op and a
        // final-role SP op; merged results must equal unpartitioned results.
        let records = [
            rec(1.0, 1, 2, 100),
            rec(2.0, 1, 2, 300),
            rec(3.0, 1, 2, 50),
            rec(4.0, 7, 8, 400),
            rec(5.0, 1, 2, 250),
        ];

        // Reference: all records through one final op.
        let mut reference = op(AggRole::Final, EmitMode::OnWindowClose);
        let mut ref_out = Vec::new();
        for r in &records {
            reference.process(r.clone(), &mut ref_out);
        }
        reference.on_watermark(secs(10.0), &mut ref_out);

        // Partitioned: records 0,2,4 locally; 1,3 drained to SP.
        let mut local = op(AggRole::Partial, EmitMode::OnWindowClose);
        let mut sp = op(AggRole::Final, EmitMode::OnWindowClose);
        let mut sink = Vec::new();
        for (i, r) in records.iter().enumerate() {
            if i % 2 == 0 {
                local.process(r.clone(), &mut sink);
            } else {
                sp.process(r.clone(), &mut sink);
            }
        }
        assert!(sink.is_empty());
        let delta = local.take_state_delta().expect("partial state");
        assert!(delta.wire_bytes() > 0);
        sp.merge_state(delta);
        let mut sp_out = Vec::new();
        sp.on_watermark(secs(10.0), &mut sp_out);

        // Compare as sets (emission order differs by arrival order).
        let key = |r: &Record| (r.values[1].clone(), r.values[2].clone());
        ref_out.sort_by_key(|r| format!("{:?}", key(r)));
        sp_out.sort_by_key(|r| format!("{:?}", key(r)));
        assert_eq!(ref_out, sp_out);
        assert!(local.take_state_delta().is_none(), "state already drained");
    }

    #[test]
    fn partial_role_emits_nothing_on_close() {
        let mut g = op(AggRole::Partial, EmitMode::OnWindowClose);
        let mut out = Vec::new();
        g.process(rec(1.0, 1, 2, 100), &mut out);
        g.on_watermark(secs(20.0), &mut out);
        assert!(out.is_empty());
        // Closed state still retrievable for shipping.
        let delta = g.take_state_delta().unwrap();
        assert_eq!(delta.entry_count(), 1);
    }

    #[test]
    fn cost_grows_with_group_count() {
        let mut g = GroupAggregateOp::new(
            vec![0, 1],
            rtt_aggs(),
            &input_schema(),
            TumblingWindow::new(secs(10.0)),
            EmitMode::OnWindowClose,
            AggRole::Final,
            CostModel::state_dependent(20.0, 0.2, 1000.0),
        );
        let c0 = g.cost_us();
        let mut out = Vec::new();
        for i in 0..5000 {
            g.process(rec(1.0, i, i, 10), &mut out);
        }
        assert!(g.cost_us() > c0);
    }

    #[test]
    fn count_aggregate_schema_is_u64() {
        let schema = GroupAggregateOp::output_schema_for(
            &[0],
            &[AggSpec::new(AggKind::Count, 0, "n")],
            &input_schema(),
        );
        assert_eq!(schema.fields()[2].dtype, DataType::U64);
        assert_eq!(schema.fields()[0].name, "window_start");
    }
}
