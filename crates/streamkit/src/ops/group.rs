//! Keyed, windowed, incrementally-updatable aggregation (the paper's `G+R`),
//! vectorized.
//!
//! The operator supports two *roles*:
//!
//! * [`AggRole::Final`] — the authoritative instance (stream processor, or a
//!   data source running the whole query): emits finalised result batches
//!   when a window closes, and optionally per-epoch deltas for live
//!   dashboards.
//! * [`AggRole::Partial`] — a source-side pre-aggregator under data-level
//!   partitioning: accumulates mergeable state for the records its control
//!   proxy forwarded locally and ships *state increments* to the replica via
//!   [`Operator::take_state_delta`]; it never emits result rows itself, so
//!   merged results are exact regardless of how records were split.
//!
//! Group state is kept in insertion order (vector + hash index) so emission
//! is deterministic — a requirement for reproducible experiments. The hash
//! index keys off a canonical *byte encoding* of `(window, key columns)`
//! built directly from column slices, so the batch hot path materializes a
//! `Value` key only once per distinct group, and aggregate updates read
//! numeric columns natively ([`AggState::update_f64`]).

use std::collections::HashMap;

use crate::agg::{AggKind, AggSpec, AggState};
use crate::batch::{Batch, BatchBuilder, Column, StrDict};
use crate::ops::{CostModel, GroupPartialEntry, OpKind, Operator, StatePartial};
use crate::schema::{DataType, Field, Schema, SchemaRef};
use crate::time::Ts;
use crate::value::Value;
use crate::window::TumblingWindow;

/// When results are emitted (Final role only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitMode {
    /// Emit each window's results once, when the watermark closes it.
    OnWindowClose,
    /// Additionally emit updated aggregates for changed groups every epoch
    /// (live-dashboard mode; this is the continuous result stream whose
    /// volume Fig. 3 accounts as G+R output).
    PerEpochDelta,
}

/// Whether this instance is authoritative or a source-side pre-aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggRole {
    /// Emits finalised results.
    Final,
    /// Accumulates mergeable partial state only.
    Partial,
}

pub(crate) type GroupKey = (Ts, Vec<Value>);

// The canonical key encoding lives in `crate::shard`: the shard router and
// the group-table index hash the same bytes, which is what lets a sharded
// runtime route rows and shipped `StatePartial` entries to the shard owning
// their group key.
use crate::shard::{encode_col_value, encode_value};

fn encode_key(buf: &mut Vec<u8>, key: &GroupKey) {
    buf.extend_from_slice(&key.0.to_le_bytes());
    for v in &key.1 {
        encode_value(buf, v);
    }
}

/// Insertion-ordered group table: deterministic iteration + O(1) lookup via
/// the canonical key encoding.
#[derive(Default)]
pub(crate) struct GroupTable {
    index: HashMap<Box<[u8]>, usize>,
    entries: Vec<(GroupKey, Vec<AggState>, bool)>,
    /// Shared key-encode buffer for the value-keyed entry points, so neither
    /// `upsert` nor `insert_or_merge` allocates per call.
    scratch: Vec<u8>,
}

impl GroupTable {
    /// Looks up the group slot for an already-encoded key, creating it (via
    /// `make_key` + `init`) on first sight and marking it changed either
    /// way. The key bytes are copied into an owned index entry exactly once,
    /// on first insert.
    fn upsert_slot(
        &mut self,
        encoded: &[u8],
        make_key: impl FnOnce() -> GroupKey,
        init: impl FnOnce() -> Vec<AggState>,
    ) -> usize {
        match self.index.get(encoded) {
            Some(&i) => {
                self.entries[i].2 = true;
                i
            }
            None => {
                let i = self.entries.len();
                self.entries.push((make_key(), init(), true));
                self.index.insert(Box::from(encoded), i);
                i
            }
        }
    }

    /// Merges `incoming` into an existing entry, or adopts it as a new entry.
    pub(crate) fn insert_or_merge(&mut self, key: GroupKey, incoming: Vec<AggState>) {
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        encode_key(&mut buf, &key);
        match self.index.get(buf.as_slice()) {
            Some(&i) => {
                self.entries[i].2 = true;
                for (s, inc) in self.entries[i].1.iter_mut().zip(&incoming) {
                    s.merge(inc);
                }
            }
            None => {
                let i = self.entries.len();
                self.index.insert(Box::from(buf.as_slice()), i);
                self.entries.push((key, incoming, true));
            }
        }
        self.scratch = buf;
    }

    /// The live entries, slot-indexed (vectorized aggregation kernels).
    fn entries_mut(&mut self) -> &mut [(GroupKey, Vec<AggState>, bool)] {
        &mut self.entries
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Removes and returns entries whose window is closed by `wm`, preserving
    /// insertion order in both partitions.
    pub(crate) fn split_closed(
        &mut self,
        window: TumblingWindow,
        wm: Ts,
    ) -> Vec<(GroupKey, Vec<AggState>)> {
        let mut closed = Vec::new();
        let mut kept = Vec::with_capacity(self.entries.len());
        for (key, states, changed) in self.entries.drain(..) {
            if window.is_closed(key.0, wm) {
                closed.push((key, states));
            } else {
                kept.push((key, states, changed));
            }
        }
        self.entries = kept;
        self.index.clear();
        let mut buf = Vec::with_capacity(24);
        for (i, (key, _, _)) in self.entries.iter().enumerate() {
            buf.clear();
            encode_key(&mut buf, key);
            self.index.insert(buf.as_slice().into(), i);
        }
        closed
    }

    pub(crate) fn drain_all(&mut self) -> Vec<(GroupKey, Vec<AggState>)> {
        self.index.clear();
        self.entries.drain(..).map(|(k, s, _)| (k, s)).collect()
    }

    /// Clones every live entry in insertion order, leaving the table (and
    /// its change tracking) untouched — checkpoint snapshots.
    pub(crate) fn snapshot_all(&self) -> Vec<(GroupKey, Vec<AggState>)> {
        self.entries
            .iter()
            .map(|(k, s, _)| (k.clone(), s.clone()))
            .collect()
    }

    pub(crate) fn take_changed(&mut self) -> Vec<(GroupKey, Vec<AggState>)> {
        let mut out = Vec::new();
        for (key, states, changed) in &mut self.entries {
            if *changed {
                out.push((key.clone(), states.clone()));
                *changed = false;
            }
        }
        out
    }

    pub(crate) fn clear(&mut self) {
        self.index.clear();
        self.entries.clear();
    }
}

/// The `G+R` operator.
pub struct GroupAggregateOp {
    keys: Vec<usize>,
    aggs: Vec<AggSpec>,
    window: TumblingWindow,
    emit: EmitMode,
    role: AggRole,
    table: GroupTable,
    out_schema: SchemaRef,
    cost: CostModel,
    /// Scratch buffer for key encoding (reused across rows).
    scratch: Vec<u8>,
    /// Per-batch row → group-slot resolution (reused across batches).
    slots: Vec<u32>,
    /// Canonical fragments per persistent dict id, extended append-only.
    frag_cache: HashMap<u64, KeyFrags>,
    /// Cross-batch dense slot caches for all-persistent-dict key sets.
    combo: ComboCache,
}

impl GroupAggregateOp {
    /// Creates the operator. The output schema is
    /// `[window_start: I64, <key fields>, <agg fields>]`.
    pub fn new(
        keys: Vec<usize>,
        aggs: Vec<AggSpec>,
        input_schema: &SchemaRef,
        window: TumblingWindow,
        emit: EmitMode,
        role: AggRole,
        cost: CostModel,
    ) -> GroupAggregateOp {
        let out_schema = Self::output_schema_for(&keys, &aggs, input_schema);
        GroupAggregateOp {
            keys,
            aggs,
            window,
            emit,
            role,
            table: GroupTable::default(),
            out_schema,
            cost,
            scratch: Vec::with_capacity(64),
            slots: Vec::new(),
            frag_cache: HashMap::new(),
            combo: ComboCache::default(),
        }
    }

    /// Computes the output schema without constructing the operator.
    pub fn output_schema_for(
        keys: &[usize],
        aggs: &[AggSpec],
        input_schema: &SchemaRef,
    ) -> SchemaRef {
        let mut fields = vec![Field::new("window_start", DataType::I64)];
        for &k in keys {
            fields.push(
                input_schema
                    .field(k)
                    .cloned()
                    .unwrap_or_else(|_| Field::new(format!("key{k}"), DataType::I64)),
            );
        }
        for spec in aggs {
            let dtype = match spec.kind {
                AggKind::Count => DataType::U64,
                _ => DataType::F64,
            };
            fields.push(Field::new(spec.name.clone(), dtype));
        }
        Schema::with_overhead(fields, input_schema.record_overhead())
    }

    /// Live group count.
    pub fn group_count(&self) -> usize {
        self.table.len()
    }

    /// This instance's role.
    pub fn role(&self) -> AggRole {
        self.role
    }

    /// Number of live cross-batch combo caches (test observability).
    #[cfg(test)]
    fn cached_combo_windows(&self) -> usize {
        self.combo.windows.len()
    }

    /// Builds one result batch from finalised group rows.
    fn emit_batch(&self, rows: &[(GroupKey, Vec<AggState>)], out: &mut Vec<Batch>) {
        if rows.is_empty() {
            return;
        }
        let mut builder = BatchBuilder::new(self.out_schema.clone(), rows.len());
        let mut values: Vec<Value> = Vec::with_capacity(self.out_schema.width());
        for (key, states) in rows {
            values.clear();
            values.push(Value::I64(key.0));
            values.extend(key.1.iter().cloned());
            values.extend(states.iter().map(AggState::finalize));
            // Result timestamp is the window end, the event-time point at
            // which the result is complete.
            builder
                .push_row(key.0 + self.window.size, &values)
                .expect("result rows match the output schema");
        }
        out.push(builder.finish());
    }
}

/// Canonical key fragments for one dictionary: the byte encoding of each
/// entry, so every row is a bounds-free memcpy. Batch-local dictionaries
/// (id 0) build these once per batch; persistent dictionaries keep one
/// `KeyFrags` per dict id in the operator and extend it append-only as the
/// dictionary grows, so steady-state batches skip the rebuild entirely.
struct KeyFrags {
    arena: Vec<u8>,
    bounds: Vec<u32>,
}

impl KeyFrags {
    fn new() -> KeyFrags {
        KeyFrags {
            arena: Vec::new(),
            bounds: vec![0u32],
        }
    }

    fn for_dict(dict: &StrDict) -> KeyFrags {
        let mut frags = KeyFrags::new();
        frags.extend_to(dict);
        frags
    }

    /// Number of entries encoded so far.
    fn len(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Appends fragments for any dictionary entries beyond the ones already
    /// encoded. Persistent dictionaries are append-only, so the existing
    /// prefix stays canonical; a snapshot older than the cache is a no-op
    /// (its codes all index the valid prefix).
    fn extend_to(&mut self, dict: &StrDict) {
        for entry in dict.iter().skip(self.len()) {
            self.arena.push(5);
            self.arena
                .extend_from_slice(&(entry.len() as u32).to_le_bytes());
            self.arena.extend_from_slice(entry.as_bytes());
            self.bounds.push(self.arena.len() as u32);
        }
    }

    #[inline]
    fn append(&self, buf: &mut Vec<u8>, code: u32) {
        let lo = self.bounds[code as usize] as usize;
        let hi = self.bounds[code as usize + 1] as usize;
        buf.extend_from_slice(&self.arena[lo..hi]);
    }
}

/// Per-batch encoder for one group-key column. Dict columns key by code —
/// the code indexes a precomputed canonical fragment, so the bytes stay
/// identical to the same string in a plain column (the group table persists
/// across batches whose dictionaries may differ).
enum KeyEnc<'a> {
    Dict {
        codes: &'a [u32],
        frags: &'a KeyFrags,
    },
    Generic(&'a Column),
}

impl KeyEnc<'_> {
    #[inline]
    fn encode_row(&self, buf: &mut Vec<u8>, row: usize) {
        match self {
            KeyEnc::Dict { codes, frags } => frags.append(buf, codes[row]),
            KeyEnc::Generic(col) => encode_col_value(buf, col, row),
        }
    }
}

/// When every key column is dense and *code-able* — a dictionary (codes are
/// page indexes) or an integer column whose batch-local value range is
/// bounded (codes are offsets from the batch minimum) — and the combined
/// key space is at most this many slots, rows resolve through a dense
/// per-window `(combined code) → slot` cache instead of hashing byte keys.
const MAX_COMBO_CACHE: usize = 1 << 16;

/// One dimension of the dense combined code: yields a per-row code in
/// `0..card`. The code is a cache key only — on a cache miss the canonical
/// byte encoding (via [`KeyEnc`]) still decides group identity, so the
/// cache can never conflate distinct keys.
enum ComboDim<'a> {
    /// Dictionary column: the code is the page index.
    Dict {
        /// Per-row dictionary codes.
        codes: &'a [u32],
        /// Page entry count (≥ 1 so empty pages keep the product sane).
        card: usize,
    },
    /// Bounded-range signed integers: the code is `value - lo`.
    I64 {
        /// Per-row values.
        vals: &'a [i64],
        /// Batch-local minimum.
        lo: i64,
        /// `hi - lo + 1`.
        card: usize,
    },
    /// Bounded-range unsigned integers: the code is `value - lo`.
    U64 {
        /// Per-row values.
        vals: &'a [u64],
        /// Batch-local minimum.
        lo: u64,
        /// `hi - lo + 1`.
        card: usize,
    },
}

impl ComboDim<'_> {
    fn card(&self) -> usize {
        match self {
            ComboDim::Dict { card, .. }
            | ComboDim::I64 { card, .. }
            | ComboDim::U64 { card, .. } => *card,
        }
    }

    #[inline]
    fn code(&self, row: usize) -> usize {
        match self {
            ComboDim::Dict { codes, .. } => codes[row] as usize,
            ComboDim::I64 { vals, lo, .. } => (vals[row] - lo) as usize,
            ComboDim::U64 { vals, lo, .. } => (vals[row] - lo) as usize,
        }
    }
}

/// Builds the combined-code dimensions when every key column qualifies and
/// the combined cardinality stays within [`MAX_COMBO_CACHE`]. Integer
/// columns qualify by a bounded batch-local value range (the LogAnalytics
/// `stat` bucket is a handful of small integers); anything else — floats,
/// plain strings, nullable columns — falls back to byte hashing.
fn combo_dims<'a>(key_cols: &[&'a Column]) -> Option<Vec<ComboDim<'a>>> {
    if key_cols.is_empty() {
        return None;
    }
    let mut dims = Vec::with_capacity(key_cols.len());
    let mut product = 1usize;
    for col in key_cols {
        let dim = match col {
            Column::Dict { codes, dict } => ComboDim::Dict {
                codes,
                card: dict.len().max(1),
            },
            Column::I64(vals) => {
                let (lo, hi) = (vals.iter().min()?, vals.iter().max()?);
                let span = (*hi as i128 - *lo as i128) as u128;
                if span >= MAX_COMBO_CACHE as u128 {
                    return None;
                }
                ComboDim::I64 {
                    vals,
                    lo: *lo,
                    card: span as usize + 1,
                }
            }
            Column::U64(vals) => {
                let (lo, hi) = (vals.iter().min()?, vals.iter().max()?);
                let span = (hi - lo) as u128;
                if span >= MAX_COMBO_CACHE as u128 {
                    return None;
                }
                ComboDim::U64 {
                    vals,
                    lo: *lo,
                    card: (hi - lo) as usize + 1,
                }
            }
            _ => return None,
        };
        product = product.checked_mul(dim.card())?;
        if product > MAX_COMBO_CACHE {
            return None;
        }
        dims.push(dim);
    }
    Some(dims)
}

/// At most this many per-window caches per batch; rows in further windows
/// fall back to byte-keyed resolution (bounds memory and the per-row window
/// scan for batches that span many windows).
const MAX_WINDOW_CACHES: usize = 8;

/// Keeps per-operator [`KeyFrags`] caches bounded: an operator normally sees
/// one persistent dictionary per key column, so hitting this means dict ids
/// are churning (e.g. streams being recreated) and caching stopped paying.
const MAX_FRAG_CACHE: usize = 1024;

/// Cross-batch, cross-epoch dense `(window, combined code) → slot` caches.
///
/// Valid only while every key column is a *persistent* dictionary (id ≠ 0):
/// persistent codes are stable across batches and epochs, so a combined
/// code observed in one batch names the same group in the next — a cache
/// hit resolves group identity from codes alone, with no canonical-bytes
/// work. The caches are dropped whenever the signature changes (different
/// dict ids, or a dictionary grew and shifted the mixing radix) and
/// whenever the table compacts slots (`split_closed` with closed entries,
/// `drain_all`, `clear`), since the cached values are slot indexes. A miss
/// always falls back to the canonical byte encoding, so mixed layouts and
/// batch-local dictionaries stay exact.
#[derive(Default)]
struct ComboCache {
    /// `(dict id, cardinality)` per key column the caches were built under.
    dims: Vec<(u64, usize)>,
    /// Per-window dense `combined code → slot` maps (`u32::MAX` = empty).
    windows: Vec<(Ts, Vec<u32>)>,
}

impl ComboCache {
    /// Returns the live window caches for this batch's signature, clearing
    /// stale ones if the signature moved.
    fn windows_for(&mut self, sig: Vec<(u64, usize)>) -> &mut Vec<(Ts, Vec<u32>)> {
        if self.dims != sig {
            self.windows.clear();
            self.dims = sig;
        }
        &mut self.windows
    }

    /// Slot indexes are about to be compacted or the table emptied; every
    /// cached resolution is invalid.
    fn invalidate(&mut self) {
        self.windows.clear();
    }
}

/// Borrowed numeric view of an aggregate input column, hoisted out of the
/// row loop so fold kernels run over contiguous slices.
enum NumView<'a> {
    F64(&'a [f64]),
    I64(&'a [i64]),
    U64(&'a [u64]),
    Bool(&'a [bool]),
    /// String / dict / missing column: no numeric values.
    None,
}

/// An aggregate input: dense numeric view + optional validity slice
/// (null-aware: invalid rows are skipped, as the scalar path skips `Null`).
struct AggInput<'a> {
    view: NumView<'a>,
    valid: Option<&'a [bool]>,
}

fn agg_input(col: Option<&Column>) -> AggInput<'_> {
    match col {
        Some(Column::F64(v)) => AggInput {
            view: NumView::F64(v),
            valid: None,
        },
        Some(Column::I64(v)) => AggInput {
            view: NumView::I64(v),
            valid: None,
        },
        Some(Column::U64(v)) => AggInput {
            view: NumView::U64(v),
            valid: None,
        },
        Some(Column::Bool(v)) => AggInput {
            view: NumView::Bool(v),
            valid: None,
        },
        Some(Column::Opt { valid, values }) => AggInput {
            view: agg_input(Some(values)).view,
            valid: Some(valid),
        },
        Some(Column::Str { .. } | Column::Dict { .. }) | None => AggInput {
            view: NumView::None,
            valid: None,
        },
    }
}

/// Runs `f(slot, value)` for every row whose input value is numeric and
/// valid, one tight loop per storage class.
#[inline]
fn for_each_value(input: &AggInput, slots: &[u32], mut f: impl FnMut(usize, f64)) {
    macro_rules! run {
        ($v:expr, $conv:expr) => {{
            match input.valid {
                Some(va) => {
                    for (i, &slot) in slots.iter().enumerate() {
                        if va[i] {
                            f(slot as usize, $conv($v[i]));
                        }
                    }
                }
                None => {
                    for (i, &slot) in slots.iter().enumerate() {
                        f(slot as usize, $conv($v[i]));
                    }
                }
            }
        }};
    }
    match input.view {
        NumView::F64(v) => run!(v, |x: f64| x),
        NumView::I64(v) => run!(v, |x: i64| x as f64),
        NumView::U64(v) => run!(v, |x: u64| x as f64),
        NumView::Bool(v) => run!(v, |x: bool| if x { 1.0 } else { 0.0 }),
        NumView::None => {}
    }
}

/// Folds one batch of resolved rows into the group states, one aggregate
/// column at a time. Semantics match the scalar path exactly: `Count`
/// counts every record; the other aggregates ignore non-numeric and `Null`
/// values.
fn fold_aggregates(
    entries: &mut [(GroupKey, Vec<AggState>, bool)],
    slots: &[u32],
    aggs: &[AggSpec],
    agg_cols: &[Option<&Column>],
) {
    for (j, spec) in aggs.iter().enumerate() {
        match spec.kind {
            AggKind::Count => {
                for &slot in slots {
                    if let AggState::Count(c) = &mut entries[slot as usize].1[j] {
                        *c += 1;
                    }
                }
            }
            AggKind::Sum => {
                for_each_value(&agg_input(agg_cols[j]), slots, |slot, v| {
                    if let AggState::Sum(s) = &mut entries[slot].1[j] {
                        *s += v;
                    }
                });
            }
            AggKind::Min => {
                for_each_value(&agg_input(agg_cols[j]), slots, |slot, v| {
                    if let AggState::Min(m) = &mut entries[slot].1[j] {
                        if v < *m {
                            *m = v;
                        }
                    }
                });
            }
            AggKind::Max => {
                for_each_value(&agg_input(agg_cols[j]), slots, |slot, v| {
                    if let AggState::Max(m) = &mut entries[slot].1[j] {
                        if v > *m {
                            *m = v;
                        }
                    }
                });
            }
            AggKind::Avg => {
                for_each_value(&agg_input(agg_cols[j]), slots, |slot, v| {
                    if let AggState::Avg { sum, count } = &mut entries[slot].1[j] {
                        *sum += v;
                        *count += 1;
                    }
                });
            }
            AggKind::ApproxQuantile { .. } => {
                for_each_value(&agg_input(agg_cols[j]), slots, |slot, v| {
                    entries[slot].1[j].update_f64(v);
                });
            }
        }
    }
}

impl Operator for GroupAggregateOp {
    fn kind(&self) -> OpKind {
        OpKind::GroupAggregate
    }

    fn output_schema(&self) -> SchemaRef {
        self.out_schema.clone()
    }

    fn process_batch(&mut self, batch: Batch, _out: &mut Vec<Batch>) {
        let n = batch.len();
        if n == 0 {
            return;
        }
        let GroupAggregateOp {
            keys,
            aggs,
            window,
            table,
            scratch,
            slots,
            frag_cache,
            combo,
            ..
        } = self;
        // Hoist key/aggregate column bindings out of the row loop; dict key
        // columns additionally need their per-code canonical fragments.
        // Persistent dictionaries (id ≠ 0) keep those in the operator and
        // extend them append-only; batch-local pages rebuild per batch.
        let key_cols: Vec<&Column> = keys.iter().map(|&k| &batch.columns[k]).collect();
        if frag_cache.len() > MAX_FRAG_CACHE {
            frag_cache.clear();
        }
        for col in &key_cols {
            if let Column::Dict { dict, .. } = col {
                if dict.id() != 0 {
                    frag_cache
                        .entry(dict.id())
                        .or_insert_with(KeyFrags::new)
                        .extend_to(dict);
                }
            }
        }
        let local_frags: Vec<KeyFrags> = key_cols
            .iter()
            .filter_map(|c| match c {
                Column::Dict { dict, .. } if dict.id() == 0 => Some(KeyFrags::for_dict(dict)),
                _ => None,
            })
            .collect();
        let mut next_local = local_frags.iter();
        let encs: Vec<KeyEnc> = key_cols
            .iter()
            .map(|c| match c {
                Column::Dict { codes, dict } => KeyEnc::Dict {
                    codes,
                    frags: if dict.id() != 0 {
                        &frag_cache[&dict.id()]
                    } else {
                        next_local.next().expect("one local frag per id-0 dict")
                    },
                },
                other => KeyEnc::Generic(other),
            })
            .collect();
        slots.clear();
        slots.reserve(n);

        // Pass 1 — resolve every row to its group slot.
        if let Some(dims) = combo_dims(&key_cols) {
            let card: usize = dims.iter().map(ComboDim::card).product();
            // All keys are dense code-able columns (dictionaries or
            // bounded-range integers) with a small combined key space:
            // resolve through a per-window dense cache, hashing each
            // distinct (window, key) combination only once. When every key
            // column is a *persistent* dictionary the caches live in the
            // operator and survive across batches and epochs (codes are
            // stable identity); otherwise they are batch-local.
            let persist_sig: Option<Vec<(u64, usize)>> = key_cols
                .iter()
                .map(|c| match c {
                    Column::Dict { dict, .. } if dict.id() != 0 => {
                        Some((dict.id(), dict.len().max(1)))
                    }
                    _ => None,
                })
                .collect();
            let mut batch_caches: Vec<(Ts, Vec<u32>)> = Vec::with_capacity(2);
            let caches: &mut Vec<(Ts, Vec<u32>)> = match persist_sig {
                Some(sig) => combo.windows_for(sig),
                None => &mut batch_caches,
            };
            for row in 0..n {
                let ws = window.start_of(batch.timestamps[row]);
                let mut combo = 0usize;
                let mut mul = 1usize;
                for d in &dims {
                    combo += d.code(row) * mul;
                    mul *= d.card();
                }
                // Batches normally span one or two windows; a pathological
                // batch covering many (e.g. an unsorted replay) must not
                // allocate a card-sized cache per window or scan a long
                // cache list per row, so later windows bypass the cache.
                let cache = match caches.iter().position(|(w, _)| *w == ws) {
                    Some(i) => Some(&mut caches[i].1),
                    None if caches.len() < MAX_WINDOW_CACHES => {
                        caches.push((ws, vec![u32::MAX; card]));
                        Some(&mut caches.last_mut().expect("just pushed").1)
                    }
                    None => None,
                };
                let cached = cache.as_ref().map(|c| c[combo]);
                let slot = match cached {
                    Some(slot) if slot != u32::MAX => {
                        table.entries[slot as usize].2 = true;
                        slot
                    }
                    _ => {
                        scratch.clear();
                        scratch.extend_from_slice(&ws.to_le_bytes());
                        for e in &encs {
                            e.encode_row(scratch, row);
                        }
                        let slot = table.upsert_slot(
                            scratch,
                            || (ws, key_cols.iter().map(|c| c.value(row)).collect()),
                            || aggs.iter().map(AggSpec::init).collect(),
                        ) as u32;
                        if let Some(cache) = cache {
                            cache[combo] = slot;
                        }
                        slot
                    }
                };
                slots.push(slot);
            }
        } else {
            for row in 0..n {
                let ws = window.start_of(batch.timestamps[row]);
                scratch.clear();
                scratch.extend_from_slice(&ws.to_le_bytes());
                for e in &encs {
                    e.encode_row(scratch, row);
                }
                let slot = table.upsert_slot(
                    scratch,
                    || (ws, key_cols.iter().map(|c| c.value(row)).collect()),
                    || aggs.iter().map(AggSpec::init).collect(),
                ) as u32;
                slots.push(slot);
            }
        }

        // Pass 2 — fold each aggregate column with a contiguous kernel.
        let agg_cols: Vec<Option<&Column>> = aggs
            .iter()
            .map(|spec| batch.columns.get(spec.col))
            .collect();
        fold_aggregates(table.entries_mut(), slots, aggs, &agg_cols);
    }

    fn on_watermark(&mut self, wm: Ts, out: &mut Vec<Batch>) {
        // Partial role never emits: its state (including closed windows) is
        // shipped wholesale by take_state_delta at the ship interval.
        if self.role != AggRole::Final {
            return;
        }
        let closed = self.table.split_closed(self.window, wm);
        if !closed.is_empty() {
            // Surviving entries shifted down: cached slot indexes are stale.
            self.combo.invalidate();
        }
        self.emit_batch(&closed, out);
    }

    fn on_epoch(&mut self, out: &mut Vec<Batch>) {
        if self.role == AggRole::Final && self.emit == EmitMode::PerEpochDelta {
            let changed = self.table.take_changed();
            self.emit_batch(&changed, out);
        }
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(self.table.len())
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn state_size(&self) -> usize {
        self.table.len()
    }

    fn take_state_delta(&mut self) -> Option<StatePartial> {
        if self.role != AggRole::Partial || self.table.len() == 0 {
            return None;
        }
        self.combo.invalidate();
        let entries = self
            .table
            .drain_all()
            .into_iter()
            .map(|((window_start, key), states)| GroupPartialEntry {
                window_start,
                key,
                states,
            })
            .collect();
        Some(StatePartial::Group(entries))
    }

    fn checkpoint_state(&self) -> Option<StatePartial> {
        if self.table.len() == 0 {
            return None;
        }
        let entries = self
            .table
            .snapshot_all()
            .into_iter()
            .map(|((window_start, key), states)| GroupPartialEntry {
                window_start,
                key,
                states,
            })
            .collect();
        Some(StatePartial::Group(entries))
    }

    fn merge_state(&mut self, state: StatePartial) {
        let StatePartial::Group(entries) = state;
        for entry in entries {
            self.table
                .insert_or_merge((entry.window_start, entry.key), entry.states);
        }
    }

    fn reset(&mut self) {
        self.table.clear();
        self.combo.invalidate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggKind;
    use crate::record::Record;
    use crate::time::secs;

    fn input_schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("src", DataType::U32),
            Field::new("dst", DataType::U32),
            Field::new("rtt", DataType::U32),
        ])
    }

    fn rtt_aggs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(AggKind::Avg, 2, "avg_rtt"),
            AggSpec::new(AggKind::Max, 2, "max_rtt"),
            AggSpec::new(AggKind::Min, 2, "min_rtt"),
        ]
    }

    fn op(role: AggRole, emit: EmitMode) -> GroupAggregateOp {
        GroupAggregateOp::new(
            vec![0, 1],
            rtt_aggs(),
            &input_schema(),
            TumblingWindow::new(secs(10.0)),
            emit,
            role,
            CostModel::fixed(20.0),
        )
    }

    fn rec(ts_s: f64, src: u64, dst: u64, rtt: u64) -> Record {
        Record::new(
            secs(ts_s),
            vec![Value::U64(src), Value::U64(dst), Value::U64(rtt)],
        )
    }

    fn feed(g: &mut GroupAggregateOp, recs: &[Record]) {
        let batch = Batch::from_records(input_schema(), recs).unwrap();
        let mut sink = Vec::new();
        g.process_batch(batch, &mut sink);
        assert!(sink.is_empty(), "aggregation emits only on watermark/epoch");
    }

    fn rows(out: &[Batch]) -> Vec<Record> {
        out.iter().flat_map(Batch::to_records).collect()
    }

    #[test]
    fn final_role_emits_on_window_close() {
        let mut g = op(AggRole::Final, EmitMode::OnWindowClose);
        feed(
            &mut g,
            &[rec(1.0, 1, 2, 100), rec(2.0, 1, 2, 300), rec(3.0, 9, 9, 50)],
        );
        let mut out = Vec::new();
        g.on_watermark(secs(9.0), &mut out);
        assert!(rows(&out).is_empty(), "window not closed yet");
        g.on_watermark(secs(10.0), &mut out);
        let emitted = rows(&out);
        assert_eq!(emitted.len(), 2);
        // Insertion-ordered emission: group (1,2) first.
        assert_eq!(emitted[0].values[1], Value::U64(1));
        assert_eq!(emitted[0].values[3], Value::F64(200.0)); // avg
        assert_eq!(emitted[0].values[4], Value::F64(300.0)); // max
        assert_eq!(emitted[0].values[5], Value::F64(100.0)); // min
        assert_eq!(emitted[0].ts, secs(10.0));
        assert_eq!(g.group_count(), 0);
    }

    #[test]
    fn per_epoch_delta_emits_only_changed_groups() {
        let mut g = op(AggRole::Final, EmitMode::PerEpochDelta);
        feed(&mut g, &[rec(1.0, 1, 2, 100)]);
        let mut out = Vec::new();
        g.on_epoch(&mut out);
        assert_eq!(rows(&out).len(), 1);
        out.clear();
        g.on_epoch(&mut out);
        assert!(rows(&out).is_empty(), "no change since last epoch");
        feed(&mut g, &[rec(2.0, 1, 2, 900)]);
        g.on_epoch(&mut out);
        let emitted = rows(&out);
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].values[4], Value::F64(900.0));
    }

    #[test]
    fn partial_role_ships_state_and_merge_is_exact() {
        // Split a stream arbitrarily between a partial-role source op and a
        // final-role SP op; merged results must equal unpartitioned results.
        let records = [
            rec(1.0, 1, 2, 100),
            rec(2.0, 1, 2, 300),
            rec(3.0, 1, 2, 50),
            rec(4.0, 7, 8, 400),
            rec(5.0, 1, 2, 250),
        ];

        // Reference: all records through one final op.
        let mut reference = op(AggRole::Final, EmitMode::OnWindowClose);
        feed(&mut reference, &records);
        let mut ref_out = Vec::new();
        reference.on_watermark(secs(10.0), &mut ref_out);

        // Partitioned: records 0,2,4 locally; 1,3 drained to SP.
        let mut local = op(AggRole::Partial, EmitMode::OnWindowClose);
        let mut sp = op(AggRole::Final, EmitMode::OnWindowClose);
        let local_recs: Vec<Record> = records.iter().step_by(2).cloned().collect();
        let sp_recs: Vec<Record> = records.iter().skip(1).step_by(2).cloned().collect();
        feed(&mut local, &local_recs);
        feed(&mut sp, &sp_recs);
        let delta = local.take_state_delta().expect("partial state");
        assert!(delta.wire_bytes() > 0);
        sp.merge_state(delta);
        let mut sp_out = Vec::new();
        sp.on_watermark(secs(10.0), &mut sp_out);

        // Compare as sets (emission order differs by arrival order).
        let mut ref_rows = rows(&ref_out);
        let mut sp_rows = rows(&sp_out);
        let key = |r: &Record| format!("{:?}", (r.values[1].clone(), r.values[2].clone()));
        ref_rows.sort_by_key(key);
        sp_rows.sort_by_key(key);
        assert_eq!(ref_rows, sp_rows);
        assert!(local.take_state_delta().is_none(), "state already drained");
    }

    #[test]
    fn partial_role_emits_nothing_on_close() {
        let mut g = op(AggRole::Partial, EmitMode::OnWindowClose);
        feed(&mut g, &[rec(1.0, 1, 2, 100)]);
        let mut out = Vec::new();
        g.on_watermark(secs(20.0), &mut out);
        assert!(out.is_empty());
        // Closed state still retrievable for shipping.
        let delta = g.take_state_delta().unwrap();
        assert_eq!(delta.entry_count(), 1);
    }

    #[test]
    fn dict_keys_group_correctly_across_many_windows() {
        // A batch spanning more windows than the combo cache will track:
        // rows beyond MAX_WINDOW_CACHES windows resolve through the
        // byte-keyed fallback and must land in the same groups.
        use crate::batch::{Batch, StrDict};
        use std::sync::Arc;

        let schema = Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::U32),
        ]);
        let windows = 20usize;
        let per_window = 3usize;
        let n = windows * per_window;
        let timestamps: Vec<Ts> = (0..n)
            .map(|i| (i / per_window) as Ts * secs(10.0) + 1)
            .collect();
        let codes: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let batch = Batch {
            schema: schema.clone(),
            timestamps,
            columns: vec![
                Column::Dict {
                    codes,
                    dict: Arc::new(StrDict::from_entries(["a", "b"])),
                },
                Column::U64(vec![1; n]),
            ],
        };
        let mut g = GroupAggregateOp::new(
            vec![0],
            vec![AggSpec::new(AggKind::Count, 1, "n")],
            &schema,
            TumblingWindow::new(secs(10.0)),
            EmitMode::OnWindowClose,
            AggRole::Final,
            CostModel::fixed(1.0),
        );
        let mut sink = Vec::new();
        g.process_batch(batch, &mut sink);
        // Two keys per window, every window distinct.
        assert_eq!(g.group_count(), windows * 2);
        let mut out = Vec::new();
        g.on_watermark(Ts::MAX, &mut out);
        let rows = rows(&out);
        assert_eq!(rows.len(), windows * 2);
        let total: u64 = rows
            .iter()
            .map(|r| match r.values[2] {
                Value::U64(c) => c,
                _ => 0,
            })
            .sum();
        assert_eq!(total as usize, n, "every row must be counted exactly once");
    }

    #[test]
    fn small_int_keys_take_the_combo_cache_and_stay_exact() {
        // A (dict, small-int) key pair — the LogAnalytics (tenant, stat
        // bucket) shape — must resolve through the dense combined-code
        // cache and produce exactly the groups the byte-hash path would.
        use crate::batch::{Batch, StrDict};
        use std::sync::Arc;

        let schema = Schema::new(vec![
            Field::new("tenant", DataType::Str),
            Field::new("bucket", DataType::I64),
            Field::new("v", DataType::U32),
        ]);
        let n = 600usize;
        let codes: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let buckets: Vec<i64> = (0..n).map(|i| 100 + (i % 5) as i64).collect();
        let dict_batch = Batch {
            schema: schema.clone(),
            timestamps: vec![1; n],
            columns: vec![
                Column::Dict {
                    codes,
                    dict: Arc::new(StrDict::from_entries(["t0", "t1", "t2"])),
                },
                Column::I64(buckets.clone()),
                Column::U64(vec![1; n]),
            ],
        };
        let mk = || {
            GroupAggregateOp::new(
                vec![0, 1],
                vec![AggSpec::new(AggKind::Count, 2, "n")],
                &schema,
                TumblingWindow::new(secs(10.0)),
                EmitMode::OnWindowClose,
                AggRole::Final,
                CostModel::fixed(1.0),
            )
        };
        // Combo path (dict + bounded int).
        let mut fast = mk();
        let mut sink = Vec::new();
        fast.process_batch(dict_batch.clone(), &mut sink);
        // Byte-hash fallback: same rows with the dict decoded to plain
        // strings (plain Str never enters the combo cache).
        let mut plain_batch = dict_batch;
        plain_batch.dict_decode();
        let mut slow = mk();
        slow.process_batch(plain_batch, &mut sink);
        assert_eq!(fast.group_count(), 15);
        assert_eq!(slow.group_count(), 15);
        let mut a = Vec::new();
        fast.on_watermark(Ts::MAX, &mut a);
        let mut b = Vec::new();
        slow.on_watermark(Ts::MAX, &mut b);
        let sort = |out: &[Batch]| {
            let mut r = rows(out);
            r.sort_by_key(|rec| format!("{rec:?}"));
            r
        };
        assert_eq!(sort(&a), sort(&b));
    }

    #[test]
    fn wide_int_ranges_fall_back_to_byte_hashing() {
        // A batch whose integer key range exceeds the cache cap must still
        // group correctly (through the fallback) — and not allocate a
        // range-sized cache.
        let schema = Schema::new(vec![
            Field::new("k", DataType::I64),
            Field::new("v", DataType::U32),
        ]);
        let recs: Vec<Record> = [i64::MIN, -1, 0, 1, i64::MAX, 0]
            .iter()
            .enumerate()
            .map(|(i, &k)| Record::new(i as i64, vec![Value::I64(k), Value::U64(1)]))
            .collect();
        let batch = Batch::from_records(schema.clone(), &recs).unwrap();
        let mut g = GroupAggregateOp::new(
            vec![0],
            vec![AggSpec::new(AggKind::Count, 1, "n")],
            &schema,
            TumblingWindow::new(secs(10.0)),
            EmitMode::OnWindowClose,
            AggRole::Final,
            CostModel::fixed(1.0),
        );
        let mut sink = Vec::new();
        g.process_batch(batch, &mut sink);
        assert_eq!(g.group_count(), 5);
    }

    #[test]
    fn persistent_dict_keys_cache_slots_across_batches_and_epochs() {
        // When every key column is a persistent dictionary, the dense
        // (window, combined-code) → slot caches must survive across
        // batches — and stay exact across dictionary growth (signature
        // change drops the caches), window close (slot compaction drops
        // them), and versus the byte-hash path on the decoded rows.
        use crate::batch::{Batch, StreamDict};
        use std::sync::Arc;

        let schema = Schema::new(vec![
            Field::new("tenant", DataType::Str),
            Field::new("v", DataType::U32),
        ]);
        let mut stream = StreamDict::new();
        for t in ["tenant-a", "tenant-b", "tenant-c"] {
            stream.intern(t);
        }
        let mk_batch = |dict: Arc<StrDict>, ts: Ts, codes: Vec<u32>| {
            let n = codes.len();
            Batch {
                schema: schema.clone(),
                timestamps: vec![ts; n],
                columns: vec![Column::Dict { codes, dict }, Column::U64(vec![1; n])],
            }
        };
        let mk_op = || {
            GroupAggregateOp::new(
                vec![0],
                vec![AggSpec::new(AggKind::Count, 1, "n")],
                &schema,
                TumblingWindow::new(secs(10.0)),
                EmitMode::OnWindowClose,
                AggRole::Final,
                CostModel::fixed(1.0),
            )
        };
        let mut fast = mk_op();
        let mut slow = mk_op();
        let mut sink = Vec::new();
        let feed_both = |fast: &mut GroupAggregateOp,
                         slow: &mut GroupAggregateOp,
                         sink: &mut Vec<Batch>,
                         b: Batch| {
            let mut plain = b.clone();
            plain.dict_decode();
            fast.process_batch(b, sink);
            slow.process_batch(plain, sink);
        };

        let snap = stream.snapshot();
        feed_both(
            &mut fast,
            &mut slow,
            &mut sink,
            mk_batch(snap.clone(), 1, vec![0, 1, 2, 0, 1, 2]),
        );
        assert_eq!(
            fast.cached_combo_windows(),
            1,
            "persistent dict keys must retain the combo cache across batches"
        );
        // Second batch, same window, same snapshot: pure cache hits.
        feed_both(
            &mut fast,
            &mut slow,
            &mut sink,
            mk_batch(snap.clone(), 2, vec![2, 1, 0]),
        );
        assert_eq!(fast.group_count(), 3);

        // Dictionary growth changes the mixing radix: the stale caches must
        // be dropped, and the new code must land in its own group.
        stream.intern("tenant-d");
        let grown = stream.snapshot();
        feed_both(
            &mut fast,
            &mut slow,
            &mut sink,
            mk_batch(grown.clone(), 3, vec![3, 0, 3]),
        );
        assert_eq!(fast.group_count(), 4);
        assert_eq!(
            fast.cached_combo_windows(),
            1,
            "rebuilt under new signature"
        );

        // A second window populates a second cache.
        feed_both(
            &mut fast,
            &mut slow,
            &mut sink,
            mk_batch(grown.clone(), secs(10.0) + 1, vec![0, 1]),
        );
        assert_eq!(fast.cached_combo_windows(), 2);

        // Closing the first window compacts slots: every cache must go.
        let mut fast_out = Vec::new();
        let mut slow_out = Vec::new();
        fast.on_watermark(secs(10.0), &mut fast_out);
        slow.on_watermark(secs(10.0), &mut slow_out);
        assert_eq!(fast.cached_combo_windows(), 0);

        // Post-close batches must still resolve exactly (fresh caches).
        feed_both(
            &mut fast,
            &mut slow,
            &mut sink,
            mk_batch(grown, secs(10.0) + 2, vec![1, 2, 3]),
        );
        fast.on_watermark(Ts::MAX, &mut fast_out);
        slow.on_watermark(Ts::MAX, &mut slow_out);
        let sort = |out: &[Batch]| {
            let mut r = rows(out);
            r.sort_by_key(|rec| format!("{rec:?}"));
            r
        };
        assert_eq!(
            sort(&fast_out),
            sort(&slow_out),
            "persistent-code grouping must equal byte-hash grouping"
        );
        assert!(sink.is_empty());
    }

    #[test]
    fn batch_local_dicts_do_not_persist_combo_caches() {
        use crate::batch::{Batch, StrDict};
        use std::sync::Arc;

        let schema = Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::U32),
        ]);
        let batch = Batch {
            schema: schema.clone(),
            timestamps: vec![1, 2],
            columns: vec![
                Column::Dict {
                    codes: vec![0, 1],
                    dict: Arc::new(StrDict::from_entries(["a", "b"])),
                },
                Column::U64(vec![1, 1]),
            ],
        };
        let mut g = GroupAggregateOp::new(
            vec![0],
            vec![AggSpec::new(AggKind::Count, 1, "n")],
            &schema,
            TumblingWindow::new(secs(10.0)),
            EmitMode::OnWindowClose,
            AggRole::Final,
            CostModel::fixed(1.0),
        );
        let mut sink = Vec::new();
        g.process_batch(batch, &mut sink);
        assert_eq!(g.group_count(), 2);
        assert_eq!(
            g.cached_combo_windows(),
            0,
            "id-0 dict pages are batch-local: codes are not stable identity"
        );
    }

    #[test]
    fn cost_grows_with_group_count() {
        let mut g = GroupAggregateOp::new(
            vec![0, 1],
            rtt_aggs(),
            &input_schema(),
            TumblingWindow::new(secs(10.0)),
            EmitMode::OnWindowClose,
            AggRole::Final,
            CostModel::state_dependent(20.0, 0.2, 1000.0),
        );
        let c0 = g.cost_us();
        let recs: Vec<Record> = (0..5000).map(|i| rec(1.0, i, i, 10)).collect();
        feed(&mut g, &recs);
        assert!(g.cost_us() > c0);
    }

    #[test]
    fn count_aggregate_schema_is_u64() {
        let schema = GroupAggregateOp::output_schema_for(
            &[0],
            &[AggSpec::new(AggKind::Count, 0, "n")],
            &input_schema(),
        );
        assert_eq!(schema.fields()[2].dtype, DataType::U64);
        assert_eq!(schema.fields()[0].name, "window_start");
    }

    #[test]
    fn string_keys_group_without_collisions() {
        // The byte-encoded index must be injective: ("ab","c") != ("a","bc").
        let schema = Schema::new(vec![
            Field::new("a", DataType::Str),
            Field::new("b", DataType::Str),
            Field::new("v", DataType::U32),
        ]);
        let mut g = GroupAggregateOp::new(
            vec![0, 1],
            vec![AggSpec::new(AggKind::Count, 2, "n")],
            &schema,
            TumblingWindow::new(secs(10.0)),
            EmitMode::OnWindowClose,
            AggRole::Final,
            CostModel::fixed(1.0),
        );
        let recs = vec![
            Record::new(0, vec![Value::str("ab"), Value::str("c"), Value::U64(1)]),
            Record::new(1, vec![Value::str("a"), Value::str("bc"), Value::U64(1)]),
            Record::new(2, vec![Value::str("ab"), Value::str("c"), Value::U64(1)]),
        ];
        let batch = Batch::from_records(schema, &recs).unwrap();
        let mut sink = Vec::new();
        g.process_batch(batch, &mut sink);
        assert_eq!(g.group_count(), 2);
    }
}
