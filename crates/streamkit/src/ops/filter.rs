//! Predicate filter operator.

use crate::expr::Expr;
use crate::ops::{CostModel, OpKind, Operator};
use crate::record::Record;
use crate::schema::SchemaRef;

/// Drops records that fail a predicate. Typically cheap (paper: the Pingmesh
/// filter costs ~13 % of one core at the 10×-scaled rate) and the first point
/// of data reduction in a monitoring pipeline.
pub struct FilterOp {
    predicate: Expr,
    schema: SchemaRef,
    cost: CostModel,
    seen: u64,
    passed: u64,
}

impl FilterOp {
    /// Creates a filter over `schema` (output schema is unchanged).
    pub fn new(predicate: Expr, schema: SchemaRef, cost: CostModel) -> FilterOp {
        FilterOp {
            predicate,
            schema,
            cost,
            seen: 0,
            passed: 0,
        }
    }

    /// Observed selectivity so far (1.0 until data arrives).
    pub fn selectivity(&self) -> f64 {
        if self.seen == 0 {
            1.0
        } else {
            self.passed as f64 / self.seen as f64
        }
    }
}

impl Operator for FilterOp {
    fn kind(&self) -> OpKind {
        OpKind::Filter
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process(&mut self, rec: Record, out: &mut Vec<Record>) {
        self.seen += 1;
        if self.predicate.matches(&rec) {
            self.passed += 1;
            out.push(rec);
        }
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(0)
    }

    fn reset(&mut self) {
        self.seen = 0;
        self.passed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};
    use crate::value::Value;

    fn schema() -> SchemaRef {
        Schema::new(vec![Field::new("err", DataType::U32)])
    }

    #[test]
    fn filters_and_tracks_selectivity() {
        let mut f = FilterOp::new(
            Expr::col(0).eq(Expr::lit(0u64)),
            schema(),
            CostModel::fixed(1.0),
        );
        let mut out = Vec::new();
        for err in [0u64, 1, 0, 0, 2] {
            f.process(Record::new(0, vec![Value::U64(err)]), &mut out);
        }
        assert_eq!(out.len(), 3);
        assert!((f.selectivity() - 0.6).abs() < 1e-12);
        f.reset();
        assert_eq!(f.selectivity(), 1.0);
    }
}
