//! Predicate filter operator, vectorized.
//!
//! The predicate is evaluated over the whole batch into a selection mask
//! ([`Expr::eval_mask`], columnar kernels for the common `col <op> literal`
//! and substring shapes) and surviving rows are gathered once with
//! [`Batch::select`] — no per-record allocation on the hot path.

use crate::batch::Batch;
use crate::expr::Expr;
use crate::ops::{CostModel, OpKind, Operator};
use crate::schema::SchemaRef;

/// Drops rows that fail a predicate. Typically cheap (paper: the Pingmesh
/// filter costs ~13 % of one core at the 10×-scaled rate) and the first point
/// of data reduction in a monitoring pipeline.
pub struct FilterOp {
    predicate: Expr,
    schema: SchemaRef,
    cost: CostModel,
    seen: u64,
    passed: u64,
}

impl FilterOp {
    /// Creates a filter over `schema` (output schema is unchanged).
    pub fn new(predicate: Expr, schema: SchemaRef, cost: CostModel) -> FilterOp {
        FilterOp {
            predicate,
            schema,
            cost,
            seen: 0,
            passed: 0,
        }
    }

    /// Observed selectivity so far (1.0 until data arrives).
    pub fn selectivity(&self) -> f64 {
        if self.seen == 0 {
            1.0
        } else {
            self.passed as f64 / self.seen as f64
        }
    }
}

impl Operator for FilterOp {
    fn kind(&self) -> OpKind {
        OpKind::Filter
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process_batch(&mut self, batch: Batch, out: &mut Vec<Batch>) {
        let n = batch.len();
        if n == 0 {
            return;
        }
        let mask = self.predicate.eval_mask(&batch);
        let passed = mask.iter().filter(|&&keep| keep).count();
        self.seen += n as u64;
        self.passed += passed as u64;
        if passed == n {
            out.push(batch);
        } else if passed > 0 {
            out.push(batch.select(&mask));
        }
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(0)
    }

    fn reset(&mut self) {
        self.seen = 0;
        self.passed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::{DataType, Field, Schema};
    use crate::value::Value;

    fn schema() -> SchemaRef {
        Schema::new(vec![Field::new("err", DataType::U32)])
    }

    #[test]
    fn filters_and_tracks_selectivity() {
        let mut f = FilterOp::new(
            Expr::col(0).eq(Expr::lit(0u64)),
            schema(),
            CostModel::fixed(1.0),
        );
        let recs: Vec<Record> = [0u64, 1, 0, 0, 2]
            .iter()
            .map(|&err| Record::new(0, vec![Value::U64(err)]))
            .collect();
        let batch = Batch::from_records(schema(), &recs).unwrap();
        let mut out = Vec::new();
        f.process_batch(batch, &mut out);
        assert_eq!(out.iter().map(Batch::len).sum::<usize>(), 3);
        assert!((f.selectivity() - 0.6).abs() < 1e-12);
        f.reset();
        assert_eq!(f.selectivity(), 1.0);
    }

    #[test]
    fn all_pass_forwards_the_batch_unchanged() {
        let mut f = FilterOp::new(
            Expr::col(0).lt(Expr::lit(100u64)),
            schema(),
            CostModel::fixed(1.0),
        );
        let recs = vec![
            Record::new(1, vec![Value::U64(1)]),
            Record::new(2, vec![Value::U64(2)]),
        ];
        let batch = Batch::from_records(schema(), &recs).unwrap();
        let mut out = Vec::new();
        f.process_batch(batch.clone(), &mut out);
        assert_eq!(out, vec![batch]);
    }

    #[test]
    fn none_pass_emits_nothing() {
        let mut f = FilterOp::new(
            Expr::col(0).gt(Expr::lit(100u64)),
            schema(),
            CostModel::fixed(1.0),
        );
        let recs = vec![Record::new(1, vec![Value::U64(1)])];
        let mut out = Vec::new();
        f.process_batch(Batch::from_records(schema(), &recs).unwrap(), &mut out);
        assert!(out.is_empty());
        assert_eq!(f.selectivity(), 0.0);
    }
}
