//! Stream operators — batch-first.
//!
//! Operators consume and produce columnar [`Batch`]es: `Filter` evaluates
//! its predicate into a selection mask and gathers once, `Project`/`Map`
//! work column-wise, `GroupAggregate` keys directly off column slices, and
//! `Join` probes the lookup table per column. The record-at-a-time API this
//! library shipped with originally (the `ops::row` shim) was removed after
//! its one-release deprecation window; `tests/golden_fingerprints.rs`
//! pins the query results the differential oracle used to guard.
//!
//! Beyond batch processing, operators expose three hooks the Jarvis engine
//! relies on:
//!
//! * **state-dependent cost** ([`Operator::cost_us`]) — per-record compute
//!   cost that grows with live state (hash-table size for grouping, static
//!   table size for joins), which is what makes profiling-on-a-sample biased
//!   exactly as the paper observes (§VI-C);
//! * **watermark handling** ([`Operator::on_watermark`]) — closes event-time
//!   windows, emitting result batches;
//! * **partial-state draining** ([`Operator::take_state_delta`] /
//!   [`Operator::merge_state`]) — stateful operators running on a data source
//!   in *partial* role ship mergeable pre-aggregated state to their replica on
//!   the stream processor (paper §V, "stateful operators relay output to the
//!   corresponding operator ... for merging the accumulated state").
//!
//! # Implementing an operator
//!
//! ```
//! use streamkit::batch::Batch;
//! use streamkit::ops::{OpKind, Operator};
//! use streamkit::record::Record;
//! use streamkit::schema::{DataType, Field, Schema, SchemaRef};
//!
//! struct Passthrough(SchemaRef);
//!
//! impl Operator for Passthrough {
//!     fn kind(&self) -> OpKind { OpKind::Map }
//!     fn output_schema(&self) -> SchemaRef { self.0.clone() }
//!     fn process_batch(&mut self, batch: Batch, out: &mut Vec<Batch>) { out.push(batch); }
//!     fn cost_us(&self) -> f64 { 1.0 }
//!     fn reset(&mut self) {}
//! }
//!
//! let schema = Schema::new(vec![Field::new("x", DataType::I64)]);
//! let mut op: Box<dyn Operator> = Box::new(Passthrough(schema.clone()));
//! let batch = Batch::from_records(schema, &[Record::new(0, vec![1i64.into()])]).unwrap();
//! let mut out = Vec::new();
//! op.process_batch(batch, &mut out);
//! assert_eq!(out[0].len(), 1);
//! ```

pub mod cost;
pub mod filter;
pub mod group;
pub mod join;
pub mod map;
pub mod project;
pub mod window_op;

use serde::{Deserialize, Serialize};

use crate::agg::AggState;
use crate::batch::{layout, Batch};
use crate::schema::SchemaRef;
use crate::time::Ts;
use crate::value::Value;

pub use cost::CostModel;
pub use filter::FilterOp;
pub use group::{AggRole, EmitMode, GroupAggregateOp};
pub use join::{JoinMiss, JoinOp, StaticTable};
pub use map::{MapFn, MapOp};
pub use project::ProjectOp;
pub use window_op::WindowAssignOp;

/// Operator kinds, used by the planner's eligibility rules (R-1..R-4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Window assignment (pass-through).
    Window,
    /// Predicate filter.
    Filter,
    /// Record transformation.
    Map,
    /// Column projection.
    Project,
    /// Keyed windowed aggregation.
    GroupAggregate,
    /// Stream-table join.
    Join,
}

impl OpKind {
    /// Short display name (matches the paper's operator letters).
    pub fn letter(self) -> &'static str {
        match self {
            OpKind::Window => "W",
            OpKind::Filter => "F",
            OpKind::Map => "M",
            OpKind::Project => "P",
            OpKind::GroupAggregate => "G+R",
            OpKind::Join => "J",
        }
    }
}

/// One group's partial aggregate state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupPartialEntry {
    /// Start of the window the state belongs to.
    pub window_start: Ts,
    /// Group key values.
    pub key: Vec<Value>,
    /// One state per aggregate spec.
    pub states: Vec<AggState>,
}

impl GroupPartialEntry {
    /// Encoded size used for network accounting: window start + key values +
    /// aggregate states (string sizing shared with the batch layout).
    pub fn wire_bytes(&self) -> usize {
        let key_bytes: usize = self
            .key
            .iter()
            .map(|v| match v {
                Value::Str(s) => layout::str_bytes(s.len()),
                Value::Bool(_) => 1,
                _ => 8,
            })
            .sum();
        8 + key_bytes + self.states.iter().map(AggState::state_bytes).sum::<usize>()
    }
}

/// Mergeable state shipped from a source-side stateful operator to its
/// stream-processor replica.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StatePartial {
    /// Grouped aggregation partials.
    Group(Vec<GroupPartialEntry>),
}

impl StatePartial {
    /// Encoded size in bytes.
    pub fn wire_bytes(&self) -> usize {
        match self {
            StatePartial::Group(entries) => {
                4 + entries
                    .iter()
                    .map(GroupPartialEntry::wire_bytes)
                    .sum::<usize>()
            }
        }
    }

    /// Number of group entries carried.
    pub fn entry_count(&self) -> usize {
        match self {
            StatePartial::Group(entries) => entries.len(),
        }
    }
}

/// A single-input stream operator over columnar batches.
pub trait Operator: Send {
    /// Operator kind.
    fn kind(&self) -> OpKind;

    /// Human-readable name for traces and plans.
    fn name(&self) -> String {
        self.kind().letter().to_string()
    }

    /// Schema of emitted batches.
    fn output_schema(&self) -> SchemaRef;

    /// Processes one batch, appending any output batches. Implementations
    /// preserve input row order in their outputs (engines rely on this to
    /// attribute absorbed rows, see [`absorbed_timestamps`]).
    fn process_batch(&mut self, batch: Batch, out: &mut Vec<Batch>);

    /// Advances event time; windowed operators emit closed-window results.
    fn on_watermark(&mut self, _wm: Ts, _out: &mut Vec<Batch>) {}

    /// Epoch boundary hook; delta-emitting aggregations flush here.
    fn on_epoch(&mut self, _out: &mut Vec<Batch>) {}

    /// Current per-record compute cost in µs (may depend on live state).
    fn cost_us(&self) -> f64;

    /// Whether the operator holds mergeable state.
    fn is_stateful(&self) -> bool {
        false
    }

    /// Live state size (rows/groups), for cost models and diagnostics.
    fn state_size(&self) -> usize {
        0
    }

    /// Takes accumulated partial state for shipping to the replica
    /// (partial-role stateful operators only).
    fn take_state_delta(&mut self) -> Option<StatePartial> {
        None
    }

    /// Non-destructive cumulative snapshot of the operator's state for
    /// checkpointing. Unlike [`Operator::take_state_delta`] — which only
    /// extracts shippable increments from partial-role operators — this
    /// covers every stateful role and leaves the live state untouched.
    /// `None` when the operator is stateless or holds no state.
    fn checkpoint_state(&self) -> Option<StatePartial> {
        None
    }

    /// Merges partial state shipped from a partial-role twin.
    fn merge_state(&mut self, _state: StatePartial) {}

    /// Clears all operator state (redeployment / tests).
    fn reset(&mut self);

    /// Downcast hook for operator-specific runtime reconfiguration (e.g.
    /// swapping a join's static table mid-run, paper Fig. 8b).
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// Timestamps of input rows an operator *absorbed* — rows with no
/// corresponding output row (filtered out, join misses, folded into
/// aggregate state). Engines use this to credit per-record completions.
///
/// Relies on operators preserving input row order (and timestamps) in their
/// outputs; computed as an ordered two-pointer difference between the input
/// timestamps and the concatenated output timestamps. If an operator
/// rewrites timestamps the result degrades gracefully: the first
/// `inputs - outputs` unmatched input timestamps are reported so row
/// conservation still holds.
pub fn absorbed_timestamps(input_ts: &[Ts], outputs: &[Batch]) -> Vec<Ts> {
    let out_rows: usize = outputs.iter().map(Batch::len).sum();
    if out_rows == 0 {
        return input_ts.to_vec();
    }
    let absorbed_n = input_ts.len().saturating_sub(out_rows);
    if absorbed_n == 0 {
        return Vec::new();
    }
    let mut absorbed = Vec::with_capacity(absorbed_n);
    let mut out_iter = outputs.iter().flat_map(|b| b.timestamps.iter().copied());
    let mut next_out = out_iter.next();
    for &ts in input_ts {
        match next_out {
            Some(o) if o == ts => next_out = out_iter.next(),
            _ => absorbed.push(ts),
        }
    }
    // Timestamp-rewriting operators defeat the order matching; conserve row
    // counts regardless.
    absorbed.truncate(absorbed_n);
    while absorbed.len() < absorbed_n {
        absorbed.push(*input_ts.last().expect("inputs exist"));
    }
    absorbed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};

    fn batch_of(ts: &[Ts]) -> Batch {
        let schema = Schema::new(vec![Field::new("x", DataType::I64)]);
        let recs: Vec<_> = ts
            .iter()
            .map(|&t| crate::record::Record::new(t, vec![Value::I64(t)]))
            .collect();
        Batch::from_records(schema, &recs).unwrap()
    }

    #[test]
    fn absorbed_is_the_ordered_difference() {
        let input = [1, 2, 3, 4, 5];
        let outs = [batch_of(&[2, 4])];
        assert_eq!(absorbed_timestamps(&input, &outs), vec![1, 3, 5]);
        assert_eq!(absorbed_timestamps(&input, &[]), vec![1, 2, 3, 4, 5]);
        assert_eq!(
            absorbed_timestamps(&input, &[batch_of(&input)]),
            Vec::<Ts>::new()
        );
    }

    #[test]
    fn absorbed_conserves_counts_even_when_ts_rewritten() {
        let input = [1, 2, 3];
        // Output timestamps unrelated to inputs (a ts-rewriting map).
        let outs = [batch_of(&[100, 200])];
        let absorbed = absorbed_timestamps(&input, &outs);
        assert_eq!(absorbed.len(), 1);
    }

    #[test]
    fn absorbed_handles_duplicate_timestamps() {
        let input = [7, 7, 7, 9];
        let outs = [batch_of(&[7, 9])];
        assert_eq!(absorbed_timestamps(&input, &outs), vec![7, 7]);
    }
}
