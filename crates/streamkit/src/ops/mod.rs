//! Stream operators.
//!
//! Operators are single-input record transformers with three extra hooks the
//! Jarvis engine relies on:
//!
//! * **state-dependent cost** ([`Operator::cost_us`]) — per-record compute
//!   cost that grows with live state (hash-table size for grouping, static
//!   table size for joins), which is what makes profiling-on-a-sample biased
//!   exactly as the paper observes (§VI-C);
//! * **watermark handling** ([`Operator::on_watermark`]) — closes event-time
//!   windows;
//! * **partial-state draining** ([`Operator::take_state_delta`] /
//!   [`Operator::merge_state`]) — stateful operators running on a data source
//!   in *partial* role ship mergeable pre-aggregated state to their replica on
//!   the stream processor (paper §V, "stateful operators relay output to the
//!   corresponding operator ... for merging the accumulated state").

pub mod cost;
pub mod filter;
pub mod group;
pub mod join;
pub mod map;
pub mod project;
pub mod window_op;

use serde::{Deserialize, Serialize};

use crate::agg::AggState;
use crate::record::Record;
use crate::schema::{Schema, SchemaRef};
use crate::time::Ts;
use crate::value::Value;

pub use cost::CostModel;
pub use filter::FilterOp;
pub use group::{AggRole, EmitMode, GroupAggregateOp};
pub use join::{JoinMiss, JoinOp, StaticTable};
pub use map::{MapFn, MapOp};
pub use project::ProjectOp;
pub use window_op::WindowAssignOp;

/// Operator kinds, used by the planner's eligibility rules (R-1..R-4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Window assignment (pass-through).
    Window,
    /// Predicate filter.
    Filter,
    /// Record transformation.
    Map,
    /// Column projection.
    Project,
    /// Keyed windowed aggregation.
    GroupAggregate,
    /// Stream-table join.
    Join,
}

impl OpKind {
    /// Short display name (matches the paper's operator letters).
    pub fn letter(self) -> &'static str {
        match self {
            OpKind::Window => "W",
            OpKind::Filter => "F",
            OpKind::Map => "M",
            OpKind::Project => "P",
            OpKind::GroupAggregate => "G+R",
            OpKind::Join => "J",
        }
    }
}

/// One group's partial aggregate state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupPartialEntry {
    /// Start of the window the state belongs to.
    pub window_start: Ts,
    /// Group key values.
    pub key: Vec<Value>,
    /// One state per aggregate spec.
    pub states: Vec<AggState>,
}

impl GroupPartialEntry {
    /// Encoded size used for network accounting: window start + key values +
    /// aggregate states.
    pub fn wire_bytes(&self) -> usize {
        let key_bytes: usize = self
            .key
            .iter()
            .map(|v| match v {
                Value::Str(s) => 2 + s.len(),
                Value::Bool(_) => 1,
                _ => 8,
            })
            .sum();
        8 + key_bytes + self.states.iter().map(AggState::state_bytes).sum::<usize>()
    }
}

/// Mergeable state shipped from a source-side stateful operator to its
/// stream-processor replica.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StatePartial {
    /// Grouped aggregation partials.
    Group(Vec<GroupPartialEntry>),
}

impl StatePartial {
    /// Encoded size in bytes.
    pub fn wire_bytes(&self) -> usize {
        match self {
            StatePartial::Group(entries) => {
                4 + entries
                    .iter()
                    .map(GroupPartialEntry::wire_bytes)
                    .sum::<usize>()
            }
        }
    }

    /// Number of group entries carried.
    pub fn entry_count(&self) -> usize {
        match self {
            StatePartial::Group(entries) => entries.len(),
        }
    }
}

/// A single-input stream operator.
pub trait Operator: Send {
    /// Operator kind.
    fn kind(&self) -> OpKind;

    /// Human-readable name for traces and plans.
    fn name(&self) -> String {
        self.kind().letter().to_string()
    }

    /// Schema of emitted records.
    fn output_schema(&self) -> SchemaRef;

    /// Processes one record, appending any outputs.
    fn process(&mut self, rec: Record, out: &mut Vec<Record>);

    /// Advances event time; windowed operators emit closed-window results.
    fn on_watermark(&mut self, _wm: Ts, _out: &mut Vec<Record>) {}

    /// Epoch boundary hook; delta-emitting aggregations flush here.
    fn on_epoch(&mut self, _out: &mut Vec<Record>) {}

    /// Current per-record compute cost in µs (may depend on live state).
    fn cost_us(&self) -> f64;

    /// Whether the operator holds mergeable state.
    fn is_stateful(&self) -> bool {
        false
    }

    /// Live state size (rows/groups), for cost models and diagnostics.
    fn state_size(&self) -> usize {
        0
    }

    /// Takes accumulated partial state for shipping to the replica
    /// (partial-role stateful operators only).
    fn take_state_delta(&mut self) -> Option<StatePartial> {
        None
    }

    /// Merges partial state shipped from a partial-role twin.
    fn merge_state(&mut self, _state: StatePartial) {}

    /// Clears all operator state (redeployment / tests).
    fn reset(&mut self);

    /// Downcast hook for operator-specific runtime reconfiguration (e.g.
    /// swapping a join's static table mid-run, paper Fig. 8b).
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// Convenience: wire size of one record under this operator's output schema.
pub fn output_wire_size(op: &dyn Operator, rec: &Record) -> usize {
    rec.wire_size(op.output_schema().as_ref())
}

/// Convenience: average output wire size over records, 0 when empty.
pub fn avg_wire_size(records: &[Record], schema: &Schema) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    crate::record::wire_size_of(records, schema) as f64 / records.len() as f64
}
