//! Per-record compute cost models.
//!
//! The emulator charges operators a per-record cost against the node's CPU
//! budget. Costs are calibrated from the paper's published percentages
//! (`jarvis-core::calibration`) and may grow with operator state: the paper
//! notes that grouping/join cost "depends on the hash table size, which
//! corresponds to the group count and the static table size" (§II-A).

use serde::{Deserialize, Serialize};

/// Cost of processing one record, optionally state-dependent:
///
/// `cost_us(s) = base_us · (1 + state_coeff · ln(1 + s / state_ref))`
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost with empty state, in µs per record.
    pub base_us: f64,
    /// Strength of the state-size dependency (0 = state-independent).
    pub state_coeff: f64,
    /// State size at which the dependency contributes `ln(2)·state_coeff`.
    pub state_ref: f64,
}

impl CostModel {
    /// State-independent cost.
    pub fn fixed(base_us: f64) -> CostModel {
        CostModel {
            base_us,
            state_coeff: 0.0,
            state_ref: 1.0,
        }
    }

    /// State-dependent cost (see the struct-level formula).
    pub fn state_dependent(base_us: f64, state_coeff: f64, state_ref: f64) -> CostModel {
        assert!(state_ref > 0.0, "state_ref must be positive");
        CostModel {
            base_us,
            state_coeff,
            state_ref,
        }
    }

    /// Per-record cost at the given live state size.
    #[inline]
    pub fn cost_us(&self, state_size: usize) -> f64 {
        if self.state_coeff == 0.0 {
            self.base_us
        } else {
            self.base_us
                * (1.0 + self.state_coeff * (1.0 + state_size as f64 / self.state_ref).ln())
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::fixed(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_cost_ignores_state() {
        let c = CostModel::fixed(3.0);
        assert_eq!(c.cost_us(0), 3.0);
        assert_eq!(c.cost_us(1_000_000), 3.0);
    }

    #[test]
    fn state_dependent_cost_grows_monotonically() {
        let c = CostModel::state_dependent(2.0, 0.5, 100.0);
        let c0 = c.cost_us(0);
        let c1 = c.cost_us(100);
        let c2 = c.cost_us(10_000);
        assert!(c0 < c1 && c1 < c2);
        assert_eq!(c0, 2.0);
        // At state == state_ref the uplift is ln(2)·coeff.
        assert!((c1 - 2.0 * (1.0 + 0.5 * 2.0_f64.ln())).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "state_ref must be positive")]
    fn zero_state_ref_panics() {
        CostModel::state_dependent(1.0, 0.1, 0.0);
    }
}
