//! Record-at-a-time operator API — **deprecated** migration shim.
//!
//! This module preserves, for one release, the `Operator` surface this
//! library shipped with before the batch-first redesign: out-of-tree
//! operators that used to `impl Operator` with
//! `process(&mut self, rec, out)` now implement [`RowOperator`] (same
//! methods) and wrap themselves in [`RowAdapter`], which adapts them into
//! the batch-first [`Operator`] trait one row at a time.
//!
//! The module also carries scalar reference implementations of the built-in
//! operators (`RowFilterOp`, `RowGroupAggregateOp`, …) and
//! [`crate::physical::build_row_pipeline`] builds a full shim pipeline from
//! them — the differential oracle `tests/batch_row_parity.rs` runs against
//! the vectorized library.

#![allow(deprecated)]

use std::sync::Arc;

use crate::agg::{AggSpec, AggState};
use crate::batch::Batch;
use crate::error::Result;
use crate::expr::Expr;
use crate::ops::group::GroupTable;
use crate::ops::{
    AggRole, CostModel, EmitMode, GroupAggregateOp, GroupPartialEntry, JoinMiss, JoinOp, MapFn,
    OpKind, Operator, StatePartial, StaticTable,
};
use crate::record::Record;
use crate::schema::SchemaRef;
use crate::time::Ts;
use crate::value::Value;
use crate::window::TumblingWindow;

/// The legacy record-at-a-time operator trait.
#[deprecated(
    note = "implement the batch-first `streamkit::ops::Operator` (process_batch); \
            wrap remaining row implementations in `RowAdapter` for one release"
)]
pub trait RowOperator: Send {
    /// Operator kind.
    fn kind(&self) -> OpKind;

    /// Human-readable name for traces and plans.
    fn name(&self) -> String {
        self.kind().letter().to_string()
    }

    /// Schema of emitted records.
    fn output_schema(&self) -> SchemaRef;

    /// Processes one record, appending any outputs.
    fn process(&mut self, rec: Record, out: &mut Vec<Record>);

    /// Advances event time; windowed operators emit closed-window results.
    fn on_watermark(&mut self, _wm: Ts, _out: &mut Vec<Record>) {}

    /// Epoch boundary hook; delta-emitting aggregations flush here.
    fn on_epoch(&mut self, _out: &mut Vec<Record>) {}

    /// Current per-record compute cost in µs.
    fn cost_us(&self) -> f64;

    /// Whether the operator holds mergeable state.
    fn is_stateful(&self) -> bool {
        false
    }

    /// Live state size (rows/groups).
    fn state_size(&self) -> usize {
        0
    }

    /// Takes accumulated partial state for shipping to the replica.
    fn take_state_delta(&mut self) -> Option<StatePartial> {
        None
    }

    /// Merges partial state shipped from a partial-role twin.
    fn merge_state(&mut self, _state: StatePartial) {}

    /// Clears all operator state.
    fn reset(&mut self);

    /// Downcast hook for operator-specific runtime reconfiguration.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// Adapts a [`RowOperator`] into the batch-first [`Operator`]: batches are
/// exploded into records on the way in and rebuilt on the way out.
#[deprecated(note = "port the wrapped operator to the batch-first `Operator` trait")]
pub struct RowAdapter {
    inner: Box<dyn RowOperator>,
}

impl RowAdapter {
    /// Wraps a legacy row operator.
    pub fn new(inner: Box<dyn RowOperator>) -> RowAdapter {
        RowAdapter { inner }
    }

    fn rebatch(&self, rows: Vec<Record>, out: &mut Vec<Batch>) {
        if rows.is_empty() {
            return;
        }
        let batch = Batch::from_records(self.inner.output_schema(), &rows)
            .expect("row operator output must match its declared schema");
        out.push(batch);
    }
}

impl Operator for RowAdapter {
    fn kind(&self) -> OpKind {
        self.inner.kind()
    }

    fn name(&self) -> String {
        self.inner.name()
    }

    fn output_schema(&self) -> SchemaRef {
        self.inner.output_schema()
    }

    fn process_batch(&mut self, batch: Batch, out: &mut Vec<Batch>) {
        let mut rows = Vec::with_capacity(batch.len());
        for rec in batch.to_records() {
            self.inner.process(rec, &mut rows);
        }
        self.rebatch(rows, out);
    }

    fn on_watermark(&mut self, wm: Ts, out: &mut Vec<Batch>) {
        let mut rows = Vec::new();
        self.inner.on_watermark(wm, &mut rows);
        self.rebatch(rows, out);
    }

    fn on_epoch(&mut self, out: &mut Vec<Batch>) {
        let mut rows = Vec::new();
        self.inner.on_epoch(&mut rows);
        self.rebatch(rows, out);
    }

    fn cost_us(&self) -> f64 {
        self.inner.cost_us()
    }

    fn is_stateful(&self) -> bool {
        self.inner.is_stateful()
    }

    fn state_size(&self) -> usize {
        self.inner.state_size()
    }

    fn take_state_delta(&mut self) -> Option<StatePartial> {
        self.inner.take_state_delta()
    }

    fn merge_state(&mut self, state: StatePartial) {
        self.inner.merge_state(state)
    }

    fn reset(&mut self) {
        self.inner.reset()
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        self.inner.as_any_mut()
    }
}

/// Scalar window assignment (pass-through).
pub struct RowWindowAssignOp {
    schema: SchemaRef,
    cost: CostModel,
}

impl RowWindowAssignOp {
    /// Creates the stage.
    pub fn new(schema: SchemaRef, cost: CostModel) -> RowWindowAssignOp {
        RowWindowAssignOp { schema, cost }
    }
}

impl RowOperator for RowWindowAssignOp {
    fn kind(&self) -> OpKind {
        OpKind::Window
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process(&mut self, rec: Record, out: &mut Vec<Record>) {
        out.push(rec);
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(0)
    }

    fn reset(&mut self) {}
}

/// Scalar predicate filter.
pub struct RowFilterOp {
    predicate: Expr,
    schema: SchemaRef,
    cost: CostModel,
}

impl RowFilterOp {
    /// Creates the filter.
    pub fn new(predicate: Expr, schema: SchemaRef, cost: CostModel) -> RowFilterOp {
        RowFilterOp {
            predicate,
            schema,
            cost,
        }
    }
}

impl RowOperator for RowFilterOp {
    fn kind(&self) -> OpKind {
        OpKind::Filter
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process(&mut self, rec: Record, out: &mut Vec<Record>) {
        if self.predicate.matches(&rec) {
            out.push(rec);
        }
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(0)
    }

    fn reset(&mut self) {}
}

/// Scalar map.
pub struct RowMapOp {
    f: MapFn,
    schema: SchemaRef,
    cost: CostModel,
}

impl RowMapOp {
    /// Creates the map; `schema` must equal `f.output_schema(input)`.
    pub fn new(f: MapFn, schema: SchemaRef, cost: CostModel) -> RowMapOp {
        RowMapOp { f, schema, cost }
    }
}

impl RowOperator for RowMapOp {
    fn kind(&self) -> OpKind {
        OpKind::Map
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process(&mut self, rec: Record, out: &mut Vec<Record>) {
        if let Some(mapped) = self.f.apply(&rec) {
            out.push(mapped);
        }
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(0)
    }

    fn reset(&mut self) {}
}

/// Scalar projection.
pub struct RowProjectOp {
    cols: Vec<usize>,
    schema: SchemaRef,
    cost: CostModel,
}

impl RowProjectOp {
    /// Creates the projection.
    pub fn new(cols: Vec<usize>, schema: SchemaRef, cost: CostModel) -> RowProjectOp {
        RowProjectOp { cols, schema, cost }
    }
}

impl RowOperator for RowProjectOp {
    fn kind(&self) -> OpKind {
        OpKind::Project
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process(&mut self, rec: Record, out: &mut Vec<Record>) {
        let values = self.cols.iter().map(|&c| rec.values[c].clone()).collect();
        out.push(Record::new(rec.ts, values));
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(0)
    }

    fn reset(&mut self) {}
}

/// Scalar stream-table join.
pub struct RowJoinOp {
    table: Arc<StaticTable>,
    key_col: usize,
    miss: JoinMiss,
    out_schema: SchemaRef,
    cost: CostModel,
}

impl RowJoinOp {
    /// Creates the join.
    pub fn new(
        table: Arc<StaticTable>,
        key_col: usize,
        miss: JoinMiss,
        input_schema: &SchemaRef,
        cost: CostModel,
    ) -> Result<RowJoinOp> {
        input_schema.field(key_col)?;
        let out_schema = JoinOp::output_schema_for(&table, input_schema);
        Ok(RowJoinOp {
            table,
            key_col,
            miss,
            out_schema,
            cost,
        })
    }

    /// Swaps the lookup table at runtime.
    pub fn set_table(&mut self, table: Arc<StaticTable>) {
        self.table = table;
    }
}

impl RowOperator for RowJoinOp {
    fn kind(&self) -> OpKind {
        OpKind::Join
    }

    fn output_schema(&self) -> SchemaRef {
        self.out_schema.clone()
    }

    fn process(&mut self, mut rec: Record, out: &mut Vec<Record>) {
        match self.table.get(&rec.values[self.key_col]) {
            Some(ext) => {
                rec.values.extend(ext.iter().cloned());
                out.push(rec);
            }
            None => match self.miss {
                JoinMiss::Drop => {}
                JoinMiss::Null => {
                    rec.values.extend(std::iter::repeat_n(
                        Value::Null,
                        self.table.ext_fields().len(),
                    ));
                    out.push(rec);
                }
            },
        }
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(self.table.len())
    }

    fn state_size(&self) -> usize {
        self.table.len()
    }

    fn reset(&mut self) {}

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Scalar keyed windowed aggregation. Shares the group table and aggregate
/// state machinery with the vectorized operator, but performs every update
/// through boxed [`Value`]s the way the original API did.
pub struct RowGroupAggregateOp {
    keys: Vec<usize>,
    aggs: Vec<AggSpec>,
    window: TumblingWindow,
    emit: EmitMode,
    role: AggRole,
    table: GroupTable,
    out_schema: SchemaRef,
    cost: CostModel,
}

impl RowGroupAggregateOp {
    /// Creates the operator.
    pub fn new(
        keys: Vec<usize>,
        aggs: Vec<AggSpec>,
        input_schema: &SchemaRef,
        window: TumblingWindow,
        emit: EmitMode,
        role: AggRole,
        cost: CostModel,
    ) -> RowGroupAggregateOp {
        let out_schema = GroupAggregateOp::output_schema_for(&keys, &aggs, input_schema);
        RowGroupAggregateOp {
            keys,
            aggs,
            window,
            emit,
            role,
            table: GroupTable::default(),
            out_schema,
            cost,
        }
    }

    fn emit_row(&self, key: &(Ts, Vec<Value>), states: &[AggState], out: &mut Vec<Record>) {
        let mut values = Vec::with_capacity(1 + key.1.len() + states.len());
        values.push(Value::I64(key.0));
        values.extend(key.1.iter().cloned());
        values.extend(states.iter().map(AggState::finalize));
        out.push(Record::new(key.0 + self.window.size, values));
    }
}

impl RowOperator for RowGroupAggregateOp {
    fn kind(&self) -> OpKind {
        OpKind::GroupAggregate
    }

    fn output_schema(&self) -> SchemaRef {
        self.out_schema.clone()
    }

    fn process(&mut self, rec: Record, _out: &mut Vec<Record>) {
        let window_start = self.window.start_of(rec.ts);
        let key: Vec<Value> = self.keys.iter().map(|&k| rec.values[k].clone()).collect();
        let aggs = &self.aggs;
        let states = self.table.upsert((window_start, key), || {
            aggs.iter().map(AggSpec::init).collect()
        });
        for (state, spec) in states.iter_mut().zip(aggs) {
            let value = rec.values.get(spec.col).unwrap_or(&Value::Null);
            state.update(value);
        }
    }

    fn on_watermark(&mut self, wm: Ts, out: &mut Vec<Record>) {
        if self.role != AggRole::Final {
            return;
        }
        for (key, states) in self.table.split_closed(self.window, wm) {
            self.emit_row(&key, &states, out);
        }
    }

    fn on_epoch(&mut self, out: &mut Vec<Record>) {
        if self.role == AggRole::Final && self.emit == EmitMode::PerEpochDelta {
            for (key, states) in self.table.take_changed() {
                self.emit_row(&key, &states, out);
            }
        }
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(self.table.len())
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn state_size(&self) -> usize {
        self.table.len()
    }

    fn take_state_delta(&mut self) -> Option<StatePartial> {
        if self.role != AggRole::Partial || self.table.len() == 0 {
            return None;
        }
        let entries = self
            .table
            .drain_all()
            .into_iter()
            .map(|((window_start, key), states)| GroupPartialEntry {
                window_start,
                key,
                states,
            })
            .collect();
        Some(StatePartial::Group(entries))
    }

    fn merge_state(&mut self, state: StatePartial) {
        let StatePartial::Group(entries) = state;
        for entry in entries {
            self.table
                .insert_or_merge((entry.window_start, entry.key), entry.states);
        }
    }

    fn reset(&mut self) {
        self.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};

    #[test]
    fn adapter_round_trips_batches() {
        let schema = Schema::new(vec![Field::new("err", DataType::U32)]);
        let mut op = RowAdapter::new(Box::new(RowFilterOp::new(
            Expr::col(0).eq(Expr::lit(0u64)),
            schema.clone(),
            CostModel::fixed(1.0),
        )));
        let recs = vec![
            Record::new(1, vec![Value::U64(0)]),
            Record::new(2, vec![Value::U64(3)]),
            Record::new(3, vec![Value::U64(0)]),
        ];
        let batch = Batch::from_records(schema, &recs).unwrap();
        let mut out = Vec::new();
        op.process_batch(batch, &mut out);
        let rows: Vec<Record> = out.iter().flat_map(Batch::to_records).collect();
        assert_eq!(rows, vec![recs[0].clone(), recs[2].clone()]);
        assert_eq!(op.kind(), OpKind::Filter);
    }
}
