//! Window-assignment operator.
//!
//! Declares the query's tumbling window. Record-wise it is a near-free
//! pass-through (window membership is derived from the event timestamp by
//! downstream stateful operators), matching the paper's treatment of `W` as a
//! negligible-cost stage.

use crate::ops::{CostModel, OpKind, Operator};
use crate::record::Record;
use crate::schema::SchemaRef;
use crate::window::TumblingWindow;

/// Pass-through operator carrying the pipeline's window specification.
pub struct WindowAssignOp {
    window: TumblingWindow,
    schema: SchemaRef,
    cost: CostModel,
}

impl WindowAssignOp {
    /// Creates the window stage.
    pub fn new(window: TumblingWindow, schema: SchemaRef, cost: CostModel) -> WindowAssignOp {
        WindowAssignOp {
            window,
            schema,
            cost,
        }
    }

    /// The declared window.
    pub fn window(&self) -> TumblingWindow {
        self.window
    }
}

impl Operator for WindowAssignOp {
    fn kind(&self) -> OpKind {
        OpKind::Window
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process(&mut self, rec: Record, out: &mut Vec<Record>) {
        out.push(rec);
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(0)
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};
    use crate::time::secs;
    use crate::value::Value;

    #[test]
    fn passes_records_through() {
        let schema = Schema::new(vec![Field::new("x", DataType::I64)]);
        let mut w = WindowAssignOp::new(
            TumblingWindow::new(secs(10.0)),
            schema,
            CostModel::fixed(0.1),
        );
        let mut out = Vec::new();
        w.process(Record::new(5, vec![Value::I64(1)]), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(w.window().size, secs(10.0));
    }
}
