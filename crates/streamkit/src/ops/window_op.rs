//! Window-assignment operator.
//!
//! Declares the query's tumbling window. Record-wise it is a near-free
//! pass-through (window membership is derived from the event timestamp by
//! downstream stateful operators), matching the paper's treatment of `W` as a
//! negligible-cost stage.

use crate::batch::Batch;
use crate::ops::{CostModel, OpKind, Operator};
use crate::schema::SchemaRef;
use crate::window::TumblingWindow;

/// Pass-through operator carrying the pipeline's window specification.
pub struct WindowAssignOp {
    window: TumblingWindow,
    schema: SchemaRef,
    cost: CostModel,
}

impl WindowAssignOp {
    /// Creates the window stage.
    pub fn new(window: TumblingWindow, schema: SchemaRef, cost: CostModel) -> WindowAssignOp {
        WindowAssignOp {
            window,
            schema,
            cost,
        }
    }

    /// The declared window.
    pub fn window(&self) -> TumblingWindow {
        self.window
    }
}

impl Operator for WindowAssignOp {
    fn kind(&self) -> OpKind {
        OpKind::Window
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process_batch(&mut self, batch: Batch, out: &mut Vec<Batch>) {
        if !batch.is_empty() {
            out.push(batch);
        }
    }

    fn cost_us(&self) -> f64 {
        self.cost.cost_us(0)
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::{DataType, Field, Schema};
    use crate::time::secs;
    use crate::value::Value;

    #[test]
    fn passes_batches_through() {
        let schema = Schema::new(vec![Field::new("x", DataType::I64)]);
        let mut w = WindowAssignOp::new(
            TumblingWindow::new(secs(10.0)),
            schema.clone(),
            CostModel::fixed(0.1),
        );
        let batch = Batch::from_records(schema, &[Record::new(5, vec![Value::I64(1)])]).unwrap();
        let mut out = Vec::new();
        w.process_batch(batch.clone(), &mut out);
        assert_eq!(out, vec![batch]);
        assert_eq!(w.window().size, secs(10.0));
    }
}
