//! Schemas with exact wire-size accounting.
//!
//! Network transfer cost is a first-class quantity in the Jarvis evaluation
//! (every figure measures Mbps), so each data type declares its encoded width.
//! Variable-width strings are accounted per record.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::value::Value;

/// Column data type. Widths mirror the Pingmesh record layout from the paper
/// (86 B = 8 + 4·6 ... with 4-byte IPs, cluster ids, rtt and error code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    /// 1-byte boolean.
    Bool,
    /// 4-byte signed integer.
    I32,
    /// 8-byte signed integer.
    I64,
    /// 4-byte unsigned integer (IPs, ids, µs latencies).
    U32,
    /// 8-byte unsigned integer.
    U64,
    /// 8-byte float.
    F64,
    /// Variable-width UTF-8 string (2-byte length prefix on the wire).
    Str,
}

impl DataType {
    /// Encoded width in bytes; `None` for variable-width types.
    pub fn fixed_width(self) -> Option<usize> {
        match self {
            DataType::Bool => Some(1),
            DataType::I32 | DataType::U32 => Some(4),
            DataType::I64 | DataType::U64 | DataType::F64 => Some(8),
            DataType::Str => None,
        }
    }

    /// Encoded width of a concrete value of this type (delegates to the
    /// batch layout, the single source of wire-size truth).
    pub fn wire_size(self, value: &Value) -> usize {
        crate::batch::layout::value_bytes(self, value)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
    /// Extra wire bytes per record (serialisation envelope). The paper's
    /// Pingmesh record is 86 B although its fields sum to 32 B including the
    /// timestamp; the difference is the on-wire envelope of the original
    /// system's serialiser, which we model explicitly so data rates match.
    record_overhead: usize,
}

/// Shared schema handle; cloned by every operator in a pipeline.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Creates a schema from fields (no per-record envelope).
    pub fn new(fields: Vec<Field>) -> SchemaRef {
        Arc::new(Schema {
            fields,
            record_overhead: 0,
        })
    }

    /// Creates a schema whose records carry `record_overhead` extra wire
    /// bytes each (serialisation envelope).
    pub fn with_overhead(fields: Vec<Field>, record_overhead: usize) -> SchemaRef {
        Arc::new(Schema {
            fields,
            record_overhead,
        })
    }

    /// Per-record envelope bytes.
    pub fn record_overhead(&self) -> usize {
        self.record_overhead
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.fields.len()
    }

    /// Resolves a column name to its index.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))
    }

    /// The field at `index`.
    pub fn field(&self, index: usize) -> Result<&Field> {
        self.fields.get(index).ok_or(Error::ColumnIndex {
            index,
            width: self.fields.len(),
        })
    }

    /// Wire size of the fixed-width portion of a record, excluding the 8-byte
    /// event timestamp (callers add [`Schema::TS_WIRE_BYTES`]).
    pub fn fixed_wire_size(&self) -> usize {
        self.fields
            .iter()
            .map(|f| f.dtype.fixed_width().unwrap_or(0))
            .sum()
    }

    /// Whether any column is variable width.
    pub fn has_var_width(&self) -> bool {
        self.fields.iter().any(|f| f.dtype.fixed_width().is_none())
    }

    /// Builds a new schema with a subset/reordering of this schema's columns.
    /// The per-record envelope is inherited: projected records still cross
    /// the wire inside the same serialisation framing.
    pub fn project(&self, cols: &[usize]) -> Result<SchemaRef> {
        let mut fields = Vec::with_capacity(cols.len());
        for &c in cols {
            fields.push(self.field(c)?.clone());
        }
        Ok(Schema::with_overhead(fields, self.record_overhead))
    }

    /// Wire bytes used by the event timestamp accompanying every record.
    pub const TS_WIRE_BYTES: usize = 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pingmesh_like() -> SchemaRef {
        Schema::new(vec![
            Field::new("srcIp", DataType::U32),
            Field::new("srcCluster", DataType::U32),
            Field::new("dstIp", DataType::U32),
            Field::new("dstCluster", DataType::U32),
            Field::new("rtt", DataType::U32),
            Field::new("errCode", DataType::U32),
        ])
    }

    #[test]
    fn fixed_wire_size_sums_field_widths() {
        let s = pingmesh_like();
        // 6 × 4B fields; the timestamp and envelope are added per record.
        assert_eq!(s.fixed_wire_size(), 24);
        assert_eq!(s.record_overhead(), 0);
    }

    #[test]
    fn overhead_is_carried_per_record() {
        let s = Schema::with_overhead(vec![Field::new("x", DataType::U32)], 54);
        let r = crate::record::Record::new(0, vec![Value::U64(1)]);
        // 8 (ts) + 4 (u32) + 54 (envelope) = 66.
        assert_eq!(r.wire_size(&s), 66);
    }

    #[test]
    fn index_resolution_and_errors() {
        let s = pingmesh_like();
        assert_eq!(s.index_of("rtt").unwrap(), 4);
        assert!(matches!(s.index_of("nope"), Err(Error::UnknownColumn(_))));
        assert!(matches!(
            s.field(42),
            Err(Error::ColumnIndex {
                index: 42,
                width: 6
            })
        ));
    }

    #[test]
    fn projection_preserves_types() {
        let s = pingmesh_like();
        let p = s.project(&[4, 0]).unwrap();
        assert_eq!(p.fields()[0].name, "rtt");
        assert_eq!(p.fields()[1].name, "srcIp");
        assert!(s.project(&[9]).is_err());
    }

    #[test]
    fn str_wire_size_counts_length_prefix() {
        assert_eq!(DataType::Str.wire_size(&Value::str("abc")), 5);
        assert_eq!(DataType::U32.wire_size(&Value::U64(1)), 4);
    }
}
