//! Declarative query builder (the paper's Listing 1 programming model).
//!
//! ```
//! use streamkit::query::Query;
//! use streamkit::expr::Expr;
//! use streamkit::agg::AggKind;
//! use streamkit::schema::{Schema, Field, DataType};
//!
//! let schema = Schema::new(vec![
//!     Field::new("srcIp", DataType::U32),
//!     Field::new("dstIp", DataType::U32),
//!     Field::new("rtt", DataType::U32),
//!     Field::new("errCode", DataType::U32),
//! ]);
//! let plan = Query::stream("s2s_probe", schema)
//!     .window_secs(10.0)
//!     .filter_named("errCode", |c| c.eq(Expr::lit(0u64)))
//!     .group_by(&["srcIp", "dstIp"])
//!     .aggregate(&[
//!         (AggKind::Avg, "rtt", "avg_rtt"),
//!         (AggKind::Max, "rtt", "max_rtt"),
//!         (AggKind::Min, "rtt", "min_rtt"),
//!     ])
//!     .build()
//!     .unwrap();
//! assert_eq!(plan.display_chain(), "W -> F -> G+R");
//! ```

use std::sync::Arc;

use crate::agg::{AggKind, AggSpec};
use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::logical::{LogicalOp, LogicalPlan};
use crate::ops::{EmitMode, JoinMiss, MapFn, StaticTable};
use crate::schema::SchemaRef;
use crate::time::secs;

/// Entry point for building queries.
pub struct Query;

impl Query {
    /// Starts a query over a stream with the given schema.
    pub fn stream(name: impl Into<String>, schema: SchemaRef) -> QueryBuilder {
        QueryBuilder {
            name: name.into(),
            source_schema: schema.clone(),
            current: Ok(schema),
            ops: Vec::new(),
            parallel: Vec::new(),
            pending_keys: None,
        }
    }
}

/// Fluent builder; the first error is remembered and surfaced by `build`.
pub struct QueryBuilder {
    name: String,
    source_schema: SchemaRef,
    current: Result<SchemaRef>,
    ops: Vec<LogicalOp>,
    parallel: Vec<u32>,
    pending_keys: Option<Vec<usize>>,
}

impl QueryBuilder {
    fn push(mut self, op: LogicalOp) -> Self {
        if let Ok(schema) = &self.current {
            match op.output_schema(schema) {
                Ok(next) => {
                    self.ops.push(op);
                    self.parallel.push(1);
                    self.current = Ok(next);
                }
                Err(e) => self.current = Err(e),
            }
        }
        self
    }

    fn resolve(&self, name: &str) -> Result<usize> {
        self.current.as_ref().map_err(Clone::clone)?.index_of(name)
    }

    /// Declares a tumbling window of `size_s` seconds (Listing 1's
    /// `.Window(10_SECS)`).
    pub fn window_secs(self, size_s: f64) -> Self {
        self.push(LogicalOp::Window { size: secs(size_s) })
    }

    /// Adds a filter with an explicit expression.
    pub fn filter(self, predicate: Expr) -> Self {
        self.push(LogicalOp::Filter { predicate })
    }

    /// Adds a filter whose predicate is built from a named column.
    pub fn filter_named(mut self, column: &str, f: impl FnOnce(Expr) -> Expr) -> Self {
        match self.resolve(column) {
            Ok(idx) => self.filter(f(Expr::col(idx))),
            Err(e) => {
                self.current = Err(e);
                self
            }
        }
    }

    /// Adds a filter keeping records whose string `column` contains any of
    /// the `patterns` (Listing 3's pattern filter).
    pub fn filter_contains_any(mut self, column: &str, patterns: &[&str]) -> Self {
        match self.resolve(column) {
            Ok(idx) => self.filter(Expr::ContainsAny(
                idx,
                patterns
                    .iter()
                    .map(std::string::ToString::to_string)
                    .collect(),
            )),
            Err(e) => {
                self.current = Err(e);
                self
            }
        }
    }

    /// Adds a map.
    pub fn map(self, f: MapFn) -> Self {
        self.push(LogicalOp::Map { f })
    }

    /// Projects to the named columns.
    pub fn project(mut self, columns: &[&str]) -> Self {
        let cols: Result<Vec<usize>> = columns.iter().map(|c| self.resolve(c)).collect();
        match cols {
            Ok(cols) => self.push(LogicalOp::Project { cols }),
            Err(e) => {
                self.current = Err(e);
                self
            }
        }
    }

    /// Joins with a static table on the named stream column (Listing 2's
    /// `.Join(m, e => e.srcIp, ...)`).
    pub fn join(mut self, table: Arc<StaticTable>, key_column: &str, miss: JoinMiss) -> Self {
        match self.resolve(key_column) {
            Ok(key_col) => self.push(LogicalOp::Join {
                table,
                key_col,
                miss,
                streaming: false,
            }),
            Err(e) => {
                self.current = Err(e);
                self
            }
        }
    }

    /// Joins with a co-stream snapshot on the named stream column. The
    /// snapshot executes like a table join, but the operator is a stateful
    /// stream-stream join, so the planner's rule R-3 keeps it SP-only.
    pub fn join_stream(
        mut self,
        snapshot: Arc<StaticTable>,
        key_column: &str,
        miss: JoinMiss,
    ) -> Self {
        match self.resolve(key_column) {
            Ok(key_col) => self.push(LogicalOp::Join {
                table: snapshot,
                key_col,
                miss,
                streaming: true,
            }),
            Err(e) => {
                self.current = Err(e);
                self
            }
        }
    }

    /// Requests `width` physical instances for the most recently added
    /// operator (an intra-operator parallelism hint; rule R-4 keeps such
    /// operators off the constrained data sources).
    pub fn parallel(mut self, width: u32) -> Self {
        if self.current.is_ok() {
            match self.parallel.last_mut() {
                Some(p) => *p = width.max(1),
                None => {
                    self.current = Err(Error::InvalidPlan("parallel() before any operator".into()));
                }
            }
        }
        self
    }

    /// Starts a grouped aggregation (Listing 1's `.GroupApply(...)`); must be
    /// followed by [`QueryBuilder::aggregate`].
    pub fn group_by(mut self, key_columns: &[&str]) -> Self {
        let keys: Result<Vec<usize>> = key_columns.iter().map(|c| self.resolve(c)).collect();
        match keys {
            Ok(keys) => {
                self.pending_keys = Some(keys);
                self
            }
            Err(e) => {
                self.current = Err(e);
                self
            }
        }
    }

    /// Completes a grouped aggregation with `(kind, input column, output
    /// name)` specs (Listing 1's `.Aggregate(...)`).
    pub fn aggregate(self, aggs: &[(AggKind, &str, &str)]) -> Self {
        self.aggregate_emit(aggs, EmitMode::PerEpochDelta)
    }

    /// Like [`QueryBuilder::aggregate`] with an explicit emission mode.
    pub fn aggregate_emit(mut self, aggs: &[(AggKind, &str, &str)], emit: EmitMode) -> Self {
        let Some(keys) = self.pending_keys.take() else {
            self.current = Err(Error::InvalidPlan("aggregate() without group_by()".into()));
            return self;
        };
        let specs: Result<Vec<AggSpec>> = aggs
            .iter()
            .map(|(kind, col, name)| {
                Ok(AggSpec::new(
                    kind.clone(),
                    self.resolve(col)?,
                    name.to_string(),
                ))
            })
            .collect();
        match specs {
            Ok(aggs) => self.push(LogicalOp::GroupAggregate { keys, aggs, emit }),
            Err(e) => {
                self.current = Err(e);
                self
            }
        }
    }

    /// Finishes and validates the plan.
    pub fn build(self) -> Result<LogicalPlan> {
        self.current?;
        if self.pending_keys.is_some() {
            return Err(Error::InvalidPlan("group_by() without aggregate()".into()));
        }
        let plan = LogicalPlan {
            name: self.name,
            source_schema: self.source_schema,
            ops: self.ops,
            parallel: self.parallel,
        };
        plan.validate()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("srcIp", DataType::U32),
            Field::new("dstIp", DataType::U32),
            Field::new("rtt", DataType::U32),
            Field::new("errCode", DataType::U32),
        ])
    }

    #[test]
    fn builds_listing_1() {
        let plan = Query::stream("s2s", schema())
            .window_secs(10.0)
            .filter_named("errCode", |c| c.eq(Expr::lit(0u64)))
            .group_by(&["srcIp", "dstIp"])
            .aggregate(&[
                (AggKind::Avg, "rtt", "avg_rtt"),
                (AggKind::Max, "rtt", "max_rtt"),
                (AggKind::Min, "rtt", "min_rtt"),
            ])
            .build()
            .unwrap();
        assert_eq!(plan.display_chain(), "W -> F -> G+R");
        let schemas = plan.edge_schemas().unwrap();
        assert_eq!(schemas.last().unwrap().width(), 6);
    }

    #[test]
    fn unknown_column_surfaces_at_build() {
        let err = Query::stream("bad", schema())
            .filter_named("nope", |c| c.eq(Expr::lit(0u64)))
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::UnknownColumn(_)));
    }

    #[test]
    fn group_by_without_aggregate_is_rejected() {
        let err = Query::stream("bad", schema())
            .window_secs(10.0)
            .group_by(&["srcIp"])
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidPlan(_)));
    }

    #[test]
    fn aggregate_without_group_by_is_rejected() {
        let err = Query::stream("bad", schema())
            .window_secs(10.0)
            .aggregate(&[(AggKind::Count, "rtt", "n")])
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidPlan(_)));
    }

    #[test]
    fn parallel_hint_lands_on_the_last_operator() {
        let plan = Query::stream("p", schema())
            .window_secs(10.0)
            .filter_named("errCode", |c| c.eq(Expr::lit(0u64)))
            .parallel(4)
            .group_by(&["srcIp"])
            .aggregate(&[(AggKind::Count, "rtt", "n")])
            .build()
            .unwrap();
        assert_eq!(plan.parallel, vec![1, 4, 1]);
    }

    #[test]
    fn parallel_before_any_operator_is_rejected() {
        let err = Query::stream("p", schema())
            .parallel(2)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidPlan(_)));
    }

    #[test]
    fn join_stream_marks_the_join_streaming() {
        let snapshot = Arc::new(StaticTable::new(
            vec![Field::new("torId", DataType::U32)],
            (0u64..4).map(|ip| {
                (
                    crate::value::Value::U64(ip),
                    vec![crate::value::Value::U64(ip / 2)],
                )
            }),
        ));
        let plan = Query::stream("sj", schema())
            .window_secs(10.0)
            .join_stream(snapshot, "srcIp", JoinMiss::Drop)
            .build()
            .unwrap();
        assert!(matches!(
            plan.ops[1],
            LogicalOp::Join {
                streaming: true,
                ..
            }
        ));
    }

    #[test]
    fn join_then_project_shrinks_schema() {
        let table = Arc::new(StaticTable::new(
            vec![Field::new("torId", DataType::U32)],
            (0u64..10).map(|ip| {
                (
                    crate::value::Value::U64(ip),
                    vec![crate::value::Value::U64(ip / 4)],
                )
            }),
        ));
        let plan = Query::stream("t2t-ish", schema())
            .window_secs(10.0)
            .join(table, "srcIp", JoinMiss::Drop)
            .project(&["torId", "rtt"])
            .build()
            .unwrap();
        let schemas = plan.edge_schemas().unwrap();
        assert_eq!(schemas.last().unwrap().width(), 2);
        assert_eq!(plan.display_chain(), "W -> J -> P");
    }
}
