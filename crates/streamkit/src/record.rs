//! Event records: a timestamp plus a row of values.

use serde::{Deserialize, Serialize};

use crate::schema::Schema;
use crate::time::Ts;
use crate::value::Value;

/// A single stream record with its event timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Event time (µs).
    pub ts: Ts,
    /// Column values, positionally matching the pipeline schema.
    pub values: Vec<Value>,
}

impl Record {
    /// Creates a record.
    pub fn new(ts: Ts, values: Vec<Value>) -> Record {
        Record { ts, values }
    }

    /// Value at column `i` (panics on out-of-bounds; plans are validated
    /// against schemas before execution).
    #[inline]
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Encoded size in bytes under `schema`, including the 8-byte timestamp
    /// and the schema's per-record envelope. This is the quantity all network
    /// accounting uses; it is derived from the batch layout
    /// ([`crate::batch::layout`]), so a record and its batched form always
    /// account identically.
    pub fn wire_size(&self, schema: &Schema) -> usize {
        use crate::batch::layout;
        let mut size = layout::row_envelope(schema);
        for (field, value) in schema.fields().iter().zip(&self.values) {
            size += layout::value_bytes(field.dtype, value);
        }
        size
    }
}

/// Sums the wire size of a slice of records.
pub fn wire_size_of(records: &[Record], schema: &Schema) -> usize {
    records.iter().map(|r| r.wire_size(schema)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};

    #[test]
    fn wire_size_mixes_fixed_and_var() {
        let schema = Schema::new(vec![
            Field::new("id", DataType::U32),
            Field::new("msg", DataType::Str),
        ]);
        let r = Record::new(10, vec![Value::U64(1), Value::str("hello")]);
        // 8 (ts) + 4 (u32) + 2 + 5 (str)
        assert_eq!(r.wire_size(&schema), 19);
        assert_eq!(wire_size_of(&[r.clone(), r], &schema), 38);
    }
}
