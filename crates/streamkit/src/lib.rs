//! `streamkit` — a lightweight streaming-engine substrate.
//!
//! This crate provides the query-execution building blocks that the Jarvis
//! paper assumes from its host engines (Apache NiFi/MiNiFi + RxJava):
//!
//! * a typed value/schema model with exact wire-size accounting
//!   ([`value`], [`schema`], [`record`]); the accounting rules live in
//!   [`batch::layout`], the single source of truth for row and batch views,
//! * columnar batches as the unit of dataflow — operators, engines, and the
//!   wire encoding all move [`batch::Batch`]es ([`batch`], [`encode`]),
//! * event time, tumbling windows and min-merged watermarks ([`time`],
//!   [`window`], [`watermark`]),
//! * incrementally-updatable, *mergeable* aggregates ([`agg`], [`quantile`]),
//! * the stream operators used by the paper's three monitoring queries,
//!   implemented batch-first/vectorized: Window, Filter, Map, Project,
//!   GroupAggregate, stream-table Join ([`ops`]; the record-at-a-time API
//!   this library shipped with was removed after its one-release
//!   deprecation window),
//! * a key-hash partition kernel for sharded runtimes ([`shard`],
//!   [`batch::Batch::shard_by_key`]),
//! * a declarative query builder, logical plan, logical optimiser and
//!   physical planner ([`query`], [`logical`], [`optimizer`], [`physical`]).
//!
//! Everything is deterministic and single-threaded by design; concurrency is
//! layered on top by `jarvis-core`'s live runtime.

pub mod agg;
pub mod batch;
pub mod encode;
pub mod error;
pub mod expr;
pub mod logical;
pub mod ops;
pub mod optimizer;
pub mod physical;
pub mod quantile;
pub mod query;
pub mod record;
pub mod schema;
pub mod shard;
pub mod time;
pub mod value;
pub mod watermark;
pub mod window;

pub use error::{Error, Result};
pub use record::Record;
pub use schema::{DataType, Field, Schema, SchemaRef};
pub use value::Value;
