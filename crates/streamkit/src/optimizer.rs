//! Logical optimisations (paper §IV-B: "a logical plan is constructed along
//! with logical optimizations, such as constant folding, predicate
//! pushdown").
//!
//! Implemented rewrites:
//! 1. **Constant folding** of filter predicates; always-true filters are
//!    removed.
//! 2. **Predicate pushdown** past schema-preserving maps that do not rewrite
//!    the predicate's columns, and past projections (remapping column
//!    references). Earlier filters drop records before more expensive stages,
//!    which directly reduces near-data compute demand.
//! 3. **Filter fusion**: adjacent filters are AND-combined so the pipeline
//!    stays short (each operator later gets its own control proxy).

use std::collections::BTreeSet;

use crate::logical::{LogicalOp, LogicalPlan};
use crate::value::Value;

/// Applies all rewrites to fixpoint (bounded) and returns the optimised plan.
pub fn optimize(mut plan: LogicalPlan) -> LogicalPlan {
    fold_constants(&mut plan);
    // Pushdown/fusion interact; iterate to a small fixpoint.
    for _ in 0..plan.ops.len() + 2 {
        let moved = push_filters_down(&mut plan);
        let fused = fuse_adjacent_filters(&mut plan);
        if !moved && !fused {
            break;
        }
    }
    plan
}

/// Folds constant predicate sub-trees; removes `Filter(true)` stages.
pub fn fold_constants(plan: &mut LogicalPlan) {
    for op in &mut plan.ops {
        if let LogicalOp::Filter { predicate } = op {
            let folded = std::mem::replace(predicate, crate::expr::Expr::Lit(Value::Null)).fold();
            *predicate = folded;
        }
    }
    // Remove always-true filters, keeping the parallelism hints aligned.
    let mut i = 0;
    while i < plan.ops.len() {
        let trivially_true = matches!(
            plan.ops[i],
            LogicalOp::Filter {
                predicate: crate::expr::Expr::Lit(Value::Bool(true))
            }
        );
        if trivially_true {
            plan.ops.remove(i);
            plan.parallel.remove(i);
        } else {
            i += 1;
        }
    }
}

/// Tries to move each filter one position earlier; returns true if anything
/// moved.
pub fn push_filters_down(plan: &mut LogicalPlan) -> bool {
    let mut moved = false;
    // Scan left to right; a swap can enable further swaps on later passes.
    let mut i = 1;
    while i < plan.ops.len() {
        let can_swap = match (&plan.ops[i - 1], &plan.ops[i]) {
            (LogicalOp::Map { f }, LogicalOp::Filter { predicate }) => {
                match f.schema_preserving_rewrites() {
                    Some(rewritten) => {
                        let mut refs = BTreeSet::new();
                        predicate.column_refs(&mut refs);
                        rewritten.iter().all(|c| !refs.contains(c)).then_some(None)
                    }
                    None => None,
                }
            }
            (LogicalOp::Project { cols }, LogicalOp::Filter { predicate }) => {
                // Remap filter columns through the projection: output col j
                // reads input col cols[j].
                let cols = cols.clone();
                predicate.remap_columns(&|j| cols.get(j).copied()).map(Some)
            }
            _ => None,
        };
        match can_swap {
            Some(None) => {
                plan.ops.swap(i - 1, i);
                plan.parallel.swap(i - 1, i);
                moved = true;
            }
            Some(Some(remapped)) => {
                let LogicalOp::Filter { .. } = plan.ops.remove(i) else {
                    unreachable!()
                };
                plan.ops.insert(
                    i - 1,
                    LogicalOp::Filter {
                        predicate: remapped,
                    },
                );
                let par = plan.parallel.remove(i);
                plan.parallel.insert(i - 1, par);
                moved = true;
            }
            None => {}
        }
        i += 1;
    }
    moved
}

/// AND-combines adjacent filters; returns true if anything fused.
pub fn fuse_adjacent_filters(plan: &mut LogicalPlan) -> bool {
    let mut fused = false;
    let mut i = 0;
    while i + 1 < plan.ops.len() {
        if matches!(plan.ops[i], LogicalOp::Filter { .. })
            && matches!(plan.ops[i + 1], LogicalOp::Filter { .. })
        {
            let LogicalOp::Filter { predicate: second } = plan.ops.remove(i + 1) else {
                unreachable!()
            };
            // The fused filter keeps the wider of the two hints.
            let par = plan.parallel.remove(i + 1);
            plan.parallel[i] = plan.parallel[i].max(par);
            let LogicalOp::Filter { predicate: first } = &mut plan.ops[i] else {
                unreachable!()
            };
            let combined = std::mem::replace(first, crate::expr::Expr::Lit(Value::Null));
            *first = combined.and(second);
            fused = true;
        } else {
            i += 1;
        }
    }
    fused
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ops::MapFn;
    use crate::schema::{DataType, Field, Schema, SchemaRef};

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("a", DataType::I64),
            Field::new("b", DataType::I64),
            Field::new("line", DataType::Str),
        ])
    }

    fn plan(ops: Vec<LogicalOp>) -> LogicalPlan {
        LogicalPlan::new("t", schema(), ops)
    }

    #[test]
    fn true_filters_are_removed() {
        let p = plan(vec![LogicalOp::Filter {
            predicate: Expr::lit(1i64).lt(Expr::lit(2i64)),
        }]);
        let p = optimize(p);
        assert!(p.ops.is_empty());
    }

    #[test]
    fn filter_pushes_past_trim_lower_when_independent() {
        let p = plan(vec![
            LogicalOp::Map {
                f: MapFn::TrimLower(2),
            },
            LogicalOp::Filter {
                predicate: Expr::col(0).gt(Expr::lit(5i64)),
            },
        ]);
        let p = optimize(p);
        assert!(matches!(p.ops[0], LogicalOp::Filter { .. }));
        assert!(matches!(p.ops[1], LogicalOp::Map { .. }));
        p.validate().unwrap();
    }

    #[test]
    fn filter_on_rewritten_column_stays_put() {
        let p = plan(vec![
            LogicalOp::Map {
                f: MapFn::TrimLower(2),
            },
            LogicalOp::Filter {
                predicate: Expr::Contains(Box::new(Expr::col(2)), "x".into()),
            },
        ]);
        let p = optimize(p);
        assert!(
            matches!(p.ops[0], LogicalOp::Map { .. }),
            "must not reorder"
        );
    }

    #[test]
    fn filter_pushes_past_projection_with_remap() {
        let p = plan(vec![
            LogicalOp::Project { cols: vec![1] },
            LogicalOp::Filter {
                predicate: Expr::col(0).gt(Expr::lit(5i64)),
            },
        ]);
        let p = optimize(p);
        assert!(matches!(p.ops[0], LogicalOp::Filter { .. }));
        // The filter now references the pre-projection column index 1.
        if let LogicalOp::Filter { predicate } = &p.ops[0] {
            let mut refs = BTreeSet::new();
            predicate.column_refs(&mut refs);
            assert_eq!(refs.into_iter().collect::<Vec<_>>(), vec![1]);
        }
        p.validate().unwrap();
    }

    #[test]
    fn adjacent_filters_fuse() {
        let p = plan(vec![
            LogicalOp::Filter {
                predicate: Expr::col(0).gt(Expr::lit(1i64)),
            },
            LogicalOp::Filter {
                predicate: Expr::col(1).lt(Expr::lit(9i64)),
            },
        ]);
        let p = optimize(p);
        assert_eq!(p.ops.len(), 1);
        p.validate().unwrap();
    }

    #[test]
    fn rewrites_keep_parallel_hints_aligned() {
        // A remapped filter carries its hint past the projection, and fused
        // filters keep the wider hint.
        let mut p = plan(vec![
            LogicalOp::Filter {
                predicate: Expr::col(0).gt(Expr::lit(1i64)),
            },
            LogicalOp::Project { cols: vec![0, 1] },
            LogicalOp::Filter {
                predicate: Expr::col(1).lt(Expr::lit(9i64)),
            },
        ]);
        p.parallel = vec![1, 2, 3];
        let p = optimize(p);
        p.validate().unwrap();
        assert_eq!(p.ops.len(), 2, "filters fuse in front of the projection");
        assert!(matches!(p.ops[0], LogicalOp::Filter { .. }));
        assert_eq!(p.parallel, vec![3, 2], "fused filter keeps the max hint");
    }

    #[test]
    fn semantics_preserved_by_pushdown() {
        use crate::record::Record;
        use crate::value::Value;
        // Evaluate original vs optimised pipeline by hand on sample records.
        let original = plan(vec![
            LogicalOp::Map {
                f: MapFn::TrimLower(2),
            },
            LogicalOp::Filter {
                predicate: Expr::col(0).gt(Expr::lit(5i64)),
            },
        ]);
        let optimised = optimize(original.clone());
        let records = vec![
            Record::new(0, vec![Value::I64(10), Value::I64(0), Value::str("  X ")]),
            Record::new(0, vec![Value::I64(1), Value::I64(0), Value::str("Y")]),
        ];
        let run = |p: &LogicalPlan| -> Vec<Record> {
            let mut cur = records.clone();
            for op in &p.ops {
                let mut next = Vec::new();
                for r in cur {
                    match op {
                        LogicalOp::Filter { predicate } => {
                            if predicate.matches(&r) {
                                next.push(r);
                            }
                        }
                        LogicalOp::Map { f } => {
                            if let Some(m) = f.apply(&r) {
                                next.push(m);
                            }
                        }
                        _ => next.push(r),
                    }
                }
                cur = next;
            }
            cur
        };
        assert_eq!(run(&original), run(&optimised));
    }
}
