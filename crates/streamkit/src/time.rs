//! Event time. All timestamps are microseconds since an arbitrary epoch.

/// Event-time timestamp in microseconds.
pub type Ts = i64;

/// Microseconds per second.
pub const MICROS_PER_SEC: i64 = 1_000_000;

/// Converts seconds (possibly fractional) to microseconds, rounding to nearest.
#[inline]
pub fn secs(s: f64) -> Ts {
    (s * MICROS_PER_SEC as f64).round() as Ts
}

/// Converts microseconds to fractional seconds.
#[inline]
pub fn to_secs(ts: Ts) -> f64 {
    ts as f64 / MICROS_PER_SEC as f64
}

/// Sentinel watermark meaning "no progress observed yet".
pub const TS_MIN: Ts = i64::MIN;

/// Sentinel watermark meaning "stream exhausted".
pub const TS_MAX: Ts = i64::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_round_trips() {
        assert_eq!(secs(1.0), MICROS_PER_SEC);
        assert_eq!(secs(0.5), 500_000);
        assert_eq!(to_secs(secs(12.25)), 12.25);
    }

    #[test]
    fn secs_rounds_to_nearest() {
        assert_eq!(secs(0.000_000_4), 0);
        assert_eq!(secs(0.000_000_6), 1);
    }
}
