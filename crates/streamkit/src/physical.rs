//! Physical planning: logical chain → executable operator pipeline.
//!
//! The same logical plan is instantiated twice in a Jarvis deployment — once
//! on the data source (stateful ops in [`AggRole::Partial`]) and once on the
//! stream processor ([`AggRole::Final`]) — so the builder takes the role and
//! the per-operator cost profile as parameters. Pipelines are batch-first:
//! every stage implements [`Operator::process_batch`].

use crate::batch::Batch;
use crate::error::{Error, Result};
use crate::logical::{LogicalOp, LogicalPlan};
use crate::ops::{
    AggRole, CostModel, FilterOp, GroupAggregateOp, JoinOp, MapOp, OpKind, Operator, ProjectOp,
    WindowAssignOp,
};
use crate::window::TumblingWindow;

/// Per-operator cost models, aligned with the logical plan's op indices.
#[derive(Debug, Clone, Default)]
pub struct CostProfile {
    costs: Vec<CostModel>,
}

impl CostProfile {
    /// A profile giving every operator the same fixed cost (tests).
    pub fn uniform(len: usize, base_us: f64) -> CostProfile {
        CostProfile {
            costs: vec![CostModel::fixed(base_us); len],
        }
    }

    /// A profile from explicit per-op models.
    pub fn from_models(costs: Vec<CostModel>) -> CostProfile {
        CostProfile { costs }
    }

    /// Cost model for op `i`; defaults by kind when unspecified.
    pub fn for_op(&self, i: usize, kind: OpKind) -> CostModel {
        self.costs
            .get(i)
            .copied()
            .unwrap_or_else(|| default_cost(kind))
    }
}

/// Default per-record cost by operator kind (µs); used when no calibration is
/// supplied. Rough magnitudes follow the paper's characterisation: filters are
/// cheap, hash-based operators are expensive and state-dependent.
pub fn default_cost(kind: OpKind) -> CostModel {
    match kind {
        OpKind::Window => CostModel::fixed(0.05),
        OpKind::Filter => CostModel::fixed(1.0),
        OpKind::Map => CostModel::fixed(2.0),
        OpKind::Project => CostModel::fixed(0.5),
        OpKind::GroupAggregate => CostModel::state_dependent(8.0, 0.15, 10_000.0),
        OpKind::Join => CostModel::state_dependent(4.0, 0.25, 500.0),
    }
}

/// Builds the executable (vectorized, batch-first) pipeline for `plan`.
///
/// `role` applies to stateful operators: `Partial` instances accumulate
/// mergeable state for shipping, `Final` instances emit results.
pub fn build_pipeline(
    plan: &LogicalPlan,
    costs: &CostProfile,
    role: AggRole,
) -> Result<Vec<Box<dyn Operator>>> {
    plan.validate()?;
    let schemas = plan.edge_schemas()?;
    let mut ops: Vec<Box<dyn Operator>> = Vec::with_capacity(plan.ops.len());
    for (i, op) in plan.ops.iter().enumerate() {
        let input = &schemas[i];
        let output = &schemas[i + 1];
        let cost = costs.for_op(i, op.kind());
        let built: Box<dyn Operator> = match op {
            LogicalOp::Window { size } => Box::new(WindowAssignOp::new(
                TumblingWindow::new(*size),
                output.clone(),
                cost,
            )),
            LogicalOp::Filter { predicate } => {
                Box::new(FilterOp::new(predicate.clone(), output.clone(), cost))
            }
            LogicalOp::Map { f } => Box::new(MapOp::new(f.clone(), output.clone(), cost)),
            LogicalOp::Project { cols } => {
                Box::new(ProjectOp::new(cols.clone(), output.clone(), cost))
            }
            LogicalOp::GroupAggregate { keys, aggs, emit } => {
                let window = plan
                    .window_for(i)
                    .ok_or_else(|| Error::InvalidPlan("stateful op without window".into()))?;
                Box::new(GroupAggregateOp::new(
                    keys.clone(),
                    aggs.clone(),
                    input,
                    TumblingWindow::new(window),
                    *emit,
                    role,
                    cost,
                ))
            }
            LogicalOp::Join {
                table,
                key_col,
                miss,
                ..
            } => Box::new(JoinOp::new(table.clone(), *key_col, *miss, input, cost)?),
        };
        ops.push(built);
    }
    Ok(ops)
}

/// Closes every window open at watermark `wm` across a built pipeline and
/// routes the emissions through the downstream stages, returning the batches
/// that exit the chain. This is the single end-of-run flush shared by every
/// execution backend — exact merged results depend on all of them closing
/// windows the same way.
pub fn drain_windows(ops: &mut [Box<dyn Operator>], wm: crate::time::Ts) -> Vec<Batch> {
    let n = ops.len();
    let mut out = Vec::new();
    for i in 0..n {
        let mut batches: Vec<Batch> = Vec::new();
        ops[i].on_watermark(wm, &mut batches);
        for later in ops.iter_mut().take(n).skip(i + 1) {
            let mut next = Vec::new();
            for batch in batches.drain(..) {
                later.process_batch(batch, &mut next);
            }
            batches = next;
        }
        out.extend(batches);
    }
    out
}

/// Row-oriented view of [`drain_windows`] (collection/fingerprinting paths).
pub fn drain_windows_rows(
    ops: &mut [Box<dyn Operator>],
    wm: crate::time::Ts,
) -> Vec<crate::record::Record> {
    drain_windows(ops, wm)
        .iter()
        .flat_map(Batch::to_records)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggKind;
    use crate::expr::Expr;
    use crate::query::Query;
    use crate::record::Record;
    use crate::schema::{DataType, Field, Schema};
    use crate::time::secs;
    use crate::value::Value;

    fn s2s_plan() -> LogicalPlan {
        let schema = Schema::new(vec![
            Field::new("srcIp", DataType::U32),
            Field::new("dstIp", DataType::U32),
            Field::new("rtt", DataType::U32),
            Field::new("errCode", DataType::U32),
        ]);
        Query::stream("s2s", schema)
            .window_secs(10.0)
            .filter_named("errCode", |c| c.eq(Expr::lit(0u64)))
            .group_by(&["srcIp", "dstIp"])
            .aggregate(&[(AggKind::Avg, "rtt", "avg_rtt")])
            .build()
            .unwrap()
    }

    fn run_chain(ops: &mut [Box<dyn Operator>], batch: Batch) -> Vec<Batch> {
        let mut cur = vec![batch];
        for op in ops.iter_mut() {
            let mut next = Vec::new();
            for b in cur {
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        cur
    }

    fn input_batch(plan: &LogicalPlan) -> Batch {
        let recs = vec![
            Record::new(
                secs(1.0),
                vec![Value::U64(1), Value::U64(2), Value::U64(100), Value::U64(0)],
            ),
            Record::new(
                secs(2.0),
                vec![Value::U64(1), Value::U64(2), Value::U64(200), Value::U64(1)],
            ),
            Record::new(
                secs(3.0),
                vec![Value::U64(1), Value::U64(2), Value::U64(300), Value::U64(0)],
            ),
        ];
        Batch::from_records(plan.edge_schemas().unwrap()[0].clone(), &recs).unwrap()
    }

    #[test]
    fn builds_and_executes_end_to_end() {
        let plan = s2s_plan();
        let mut ops = build_pipeline(&plan, &CostProfile::default(), AggRole::Final).unwrap();
        assert_eq!(ops.len(), 3);
        let direct = run_chain(&mut ops, input_batch(&plan));
        assert!(direct.is_empty(), "aggregation holds state until close");
        let mut out = Vec::new();
        for op in &mut ops {
            op.on_watermark(secs(10.0), &mut out);
        }
        let rows: Vec<Record> = out.iter().flat_map(Batch::to_records).collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[3], Value::F64(200.0)); // avg of 100,300
    }

    #[test]
    fn cost_profile_overrides_defaults() {
        let plan = s2s_plan();
        let profile = CostProfile::from_models(vec![
            CostModel::fixed(0.1),
            CostModel::fixed(3.4),
            CostModel::fixed(24.0),
        ]);
        let ops = build_pipeline(&plan, &profile, AggRole::Final).unwrap();
        assert!((ops[1].cost_us() - 3.4).abs() < 1e-12);
        assert!((ops[2].cost_us() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn defaults_are_state_dependent_for_hash_ops() {
        let c = default_cost(OpKind::GroupAggregate);
        assert!(c.cost_us(100_000) > c.cost_us(0));
    }
}
