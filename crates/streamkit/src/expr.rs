//! Row expressions for filters and derived columns.
//!
//! Queries are declarative (paper §II-A): predicates are data, which lets the
//! logical optimiser fold constants and push filters down, and lets the
//! planner reason about which columns an expression touches.

use std::cmp::Ordering;
use std::collections::BTreeSet;

use crate::batch::{Batch, Column};
use crate::record::Record;
use crate::value::Value;

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// An expression tree evaluated against one record.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to column `i` of the input schema.
    Col(usize),
    /// A literal value.
    Lit(Value),
    /// Comparison of two sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic on two numeric sub-expressions.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Logical AND (short-circuiting).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR (short-circuiting).
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// True when the string column contains the needle.
    Contains(Box<Expr>, String),
    /// True when the string column contains *any* of the needles — the
    /// LogAnalytics pattern filter from Listing 3.
    ContainsAny(usize, Vec<String>),
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self <> rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Evaluates against a record. Type errors and null propagation both
    /// yield `Value::Null`; predicates treat `Null` as `false`.
    pub fn eval(&self, rec: &Record) -> Value {
        match self {
            Expr::Col(i) => rec.values.get(*i).cloned().unwrap_or(Value::Null),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(rec), b.eval(rec));
                match va.compare(&vb) {
                    Some(ord) => Value::Bool(op.test(ord)),
                    None => Value::Null,
                }
            }
            Expr::Arith(op, a, b) => {
                let (va, vb) = (a.eval(rec), b.eval(rec));
                match (va.as_f64(), vb.as_f64()) {
                    (Some(x), Some(y)) => {
                        let r = match op {
                            ArithOp::Add => x + y,
                            ArithOp::Sub => x - y,
                            ArithOp::Mul => x * y,
                            ArithOp::Div => {
                                if y == 0.0 {
                                    return Value::Null;
                                }
                                x / y
                            }
                        };
                        Value::F64(r)
                    }
                    _ => Value::Null,
                }
            }
            Expr::And(a, b) => match a.eval(rec).as_bool() {
                Some(false) => Value::Bool(false),
                Some(true) => b.eval(rec),
                None => Value::Null,
            },
            Expr::Or(a, b) => match a.eval(rec).as_bool() {
                Some(true) => Value::Bool(true),
                Some(false) => b.eval(rec),
                None => Value::Null,
            },
            Expr::Not(a) => match a.eval(rec).as_bool() {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            Expr::Contains(a, needle) => match a.eval(rec) {
                Value::Str(s) => Value::Bool(s.contains(needle.as_str())),
                _ => Value::Null,
            },
            Expr::ContainsAny(col, needles) => match rec.values.get(*col) {
                Some(Value::Str(s)) => Value::Bool(needles.iter().any(|n| s.contains(n.as_str()))),
                _ => Value::Null,
            },
        }
    }

    /// Evaluates as a predicate: `Null` and non-boolean results are `false`.
    pub fn matches(&self, rec: &Record) -> bool {
        self.eval(rec).as_bool().unwrap_or(false)
    }

    /// Evaluates against one row of a batch without materializing a
    /// [`Record`]. Semantically identical to [`Expr::eval`] on the row.
    pub fn eval_at(&self, batch: &Batch, row: usize) -> Value {
        match self {
            Expr::Col(i) => batch.columns.get(*i).map_or(Value::Null, |c| c.value(row)),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval_at(batch, row), b.eval_at(batch, row));
                match va.compare(&vb) {
                    Some(ord) => Value::Bool(op.test(ord)),
                    None => Value::Null,
                }
            }
            Expr::Arith(op, a, b) => {
                let (va, vb) = (a.eval_at(batch, row), b.eval_at(batch, row));
                match (va.as_f64(), vb.as_f64()) {
                    (Some(x), Some(y)) => {
                        let r = match op {
                            ArithOp::Add => x + y,
                            ArithOp::Sub => x - y,
                            ArithOp::Mul => x * y,
                            ArithOp::Div => {
                                if y == 0.0 {
                                    return Value::Null;
                                }
                                x / y
                            }
                        };
                        Value::F64(r)
                    }
                    _ => Value::Null,
                }
            }
            Expr::And(a, b) => match a.eval_at(batch, row).as_bool() {
                Some(false) => Value::Bool(false),
                Some(true) => b.eval_at(batch, row),
                None => Value::Null,
            },
            Expr::Or(a, b) => match a.eval_at(batch, row).as_bool() {
                Some(true) => Value::Bool(true),
                Some(false) => b.eval_at(batch, row),
                None => Value::Null,
            },
            Expr::Not(a) => match a.eval_at(batch, row).as_bool() {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            Expr::Contains(a, needle) => match a.eval_at(batch, row) {
                Value::Str(s) => Value::Bool(s.contains(needle.as_str())),
                _ => Value::Null,
            },
            Expr::ContainsAny(col, needles) => {
                match batch.columns.get(*col).and_then(|c| c.str_at(row)) {
                    Some(s) => Value::Bool(needles.iter().any(|n| s.contains(n.as_str()))),
                    None => Value::Null,
                }
            }
        }
    }

    /// Predicate form of [`Expr::eval_at`].
    pub fn matches_at(&self, batch: &Batch, row: usize) -> bool {
        self.eval_at(batch, row).as_bool().unwrap_or(false)
    }

    /// Evaluates the predicate over a whole batch into a selection mask.
    ///
    /// Common shapes — `col <op> literal` comparisons on typed columns,
    /// substring filters on string columns, and total AND/OR/NOT
    /// combinations of them — run as tight columnar kernels; anything else
    /// falls back to row-wise [`Expr::matches_at`], which is still
    /// `Record`-free. The mask is bit-identical to calling
    /// [`Expr::matches`] per row.
    pub fn eval_mask(&self, batch: &Batch) -> Vec<bool> {
        match self.mask_kernel(batch) {
            Some((mask, _)) => mask,
            None => (0..batch.len())
                .map(|r| self.matches_at(batch, r))
                .collect(),
        }
    }

    /// Columnar kernel, when one applies: `(mask, total)` where `total`
    /// means no row could have evaluated to `Null` — the condition for
    /// folding the mask through AND/OR/NOT without losing the row path's
    /// three-valued logic.
    fn mask_kernel(&self, batch: &Batch) -> Option<(Vec<bool>, bool)> {
        let rows = batch.len();
        match self {
            Expr::Lit(Value::Bool(b)) => Some((vec![*b; rows], true)),
            Expr::Cmp(op, a, b) => {
                let (idx, lit, flip) = match (&**a, &**b) {
                    (Expr::Col(i), Expr::Lit(v)) => (*i, v, false),
                    (Expr::Lit(v), Expr::Col(i)) => (*i, v, true),
                    _ => return None,
                };
                cmp_kernel(*op, batch.columns.get(idx)?, lit, flip)
            }
            Expr::Contains(a, needle) => {
                let Expr::Col(i) = &**a else { return None };
                let col = batch.columns.get(*i)?;
                contains_kernel(col, std::slice::from_ref(needle))
            }
            Expr::ContainsAny(i, needles) => contains_kernel(batch.columns.get(*i)?, needles),
            Expr::And(a, b) => {
                let (ma, ta) = a.mask_kernel(batch)?;
                let (mb, tb) = b.mask_kernel(batch)?;
                // Without totality, Null-vs-false distinctions would change
                // the combined result; defer to the scalar path.
                if !(ta && tb) {
                    return None;
                }
                Some((ma.iter().zip(&mb).map(|(x, y)| *x && *y).collect(), true))
            }
            Expr::Or(a, b) => {
                let (ma, ta) = a.mask_kernel(batch)?;
                let (mb, tb) = b.mask_kernel(batch)?;
                if !(ta && tb) {
                    return None;
                }
                Some((ma.iter().zip(&mb).map(|(x, y)| *x || *y).collect(), true))
            }
            Expr::Not(a) => {
                let (m, total) = a.mask_kernel(batch)?;
                if !total {
                    return None;
                }
                Some((m.iter().map(|x| !x).collect(), true))
            }
            _ => None,
        }
    }

    /// Collects the column indices this expression reads.
    pub fn column_refs(&self, out: &mut BTreeSet<usize>) {
        match self {
            Expr::Col(i) => {
                out.insert(*i);
            }
            Expr::Lit(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.column_refs(out);
                b.column_refs(out);
            }
            Expr::Not(a) | Expr::Contains(a, _) => a.column_refs(out),
            Expr::ContainsAny(col, _) => {
                out.insert(*col);
            }
        }
    }

    /// Rewrites column references through a mapping (used when pushing a
    /// filter past a projection). Returns `None` if a referenced column has
    /// no pre-image.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> Option<usize>) -> Option<Expr> {
        Some(match self {
            Expr::Col(i) => Expr::Col(map(*i)?),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.remap_columns(map)?),
                Box::new(b.remap_columns(map)?),
            ),
            Expr::Arith(op, a, b) => Expr::Arith(
                *op,
                Box::new(a.remap_columns(map)?),
                Box::new(b.remap_columns(map)?),
            ),
            Expr::And(a, b) => Expr::And(
                Box::new(a.remap_columns(map)?),
                Box::new(b.remap_columns(map)?),
            ),
            Expr::Or(a, b) => Expr::Or(
                Box::new(a.remap_columns(map)?),
                Box::new(b.remap_columns(map)?),
            ),
            Expr::Not(a) => Expr::Not(Box::new(a.remap_columns(map)?)),
            Expr::Contains(a, n) => Expr::Contains(Box::new(a.remap_columns(map)?), n.clone()),
            Expr::ContainsAny(col, n) => Expr::ContainsAny(map(*col)?, n.clone()),
        })
    }

    /// True when the expression references no columns.
    pub fn is_const(&self) -> bool {
        let mut refs = BTreeSet::new();
        self.column_refs(&mut refs);
        refs.is_empty()
    }

    /// Constant folding: evaluates constant sub-trees once. This is the
    /// "constant folding" logical optimisation from paper §IV-B.
    pub fn fold(self) -> Expr {
        // Fold children first, then collapse if the whole node is constant.
        let folded = match self {
            Expr::Cmp(op, a, b) => Expr::Cmp(op, Box::new(a.fold()), Box::new(b.fold())),
            Expr::Arith(op, a, b) => Expr::Arith(op, Box::new(a.fold()), Box::new(b.fold())),
            Expr::And(a, b) => {
                let (a, b) = (a.fold(), b.fold());
                match (&a, &b) {
                    (Expr::Lit(Value::Bool(false)), _) | (_, Expr::Lit(Value::Bool(false))) => {
                        return Expr::Lit(Value::Bool(false));
                    }
                    (Expr::Lit(Value::Bool(true)), _) => return b,
                    (_, Expr::Lit(Value::Bool(true))) => return a,
                    _ => Expr::And(Box::new(a), Box::new(b)),
                }
            }
            Expr::Or(a, b) => {
                let (a, b) = (a.fold(), b.fold());
                match (&a, &b) {
                    (Expr::Lit(Value::Bool(true)), _) | (_, Expr::Lit(Value::Bool(true))) => {
                        return Expr::Lit(Value::Bool(true));
                    }
                    (Expr::Lit(Value::Bool(false)), _) => return b,
                    (_, Expr::Lit(Value::Bool(false))) => return a,
                    _ => Expr::Or(Box::new(a), Box::new(b)),
                }
            }
            Expr::Not(a) => Expr::Not(Box::new(a.fold())),
            Expr::Contains(a, n) => Expr::Contains(Box::new(a.fold()), n),
            other => other,
        };
        if folded.is_const() {
            let dummy = Record::new(0, Vec::new());
            Expr::Lit(folded.eval(&dummy))
        } else {
            folded
        }
    }
}

/// Comparison kernel for `col <op> lit` (or flipped). Mirrors
/// [`Value::compare`]: exact integer/string/bool comparisons for matching
/// types, `f64` comparison across numeric types, `Null`/mismatch → `false`.
fn cmp_kernel(op: CmpOp, col: &Column, lit: &Value, flip: bool) -> Option<(Vec<bool>, bool)> {
    let test = |ord: Ordering| op.test(if flip { ord.reverse() } else { ord });
    match (col, lit) {
        (Column::U64(v), Value::U64(x)) => Some((v.iter().map(|a| test(a.cmp(x))).collect(), true)),
        (Column::I64(v), Value::I64(x)) => Some((v.iter().map(|a| test(a.cmp(x))).collect(), true)),
        (Column::Bool(v), Value::Bool(x)) => {
            Some((v.iter().map(|a| test(a.cmp(x))).collect(), true))
        }
        (Column::Str { .. }, Value::Str(x)) => {
            let mask = (0..col.len())
                .map(|r| test(col.str_at(r).unwrap_or("").cmp(x.as_ref())))
                .collect();
            Some((mask, true))
        }
        (Column::Dict { codes, dict }, Value::Str(x)) => {
            // Compare each dictionary entry once, then scan the codes: the
            // per-row work collapses to a table lookup.
            let hits: Vec<bool> = dict.iter().map(|e| test(e.cmp(x.as_ref()))).collect();
            let mask = codes.iter().map(|&c| hits[c as usize]).collect();
            Some((mask, true))
        }
        (Column::I64(_) | Column::U64(_) | Column::F64(_) | Column::Bool(_), lit) => {
            // Cross-type numeric comparison goes through f64, as the scalar
            // path does. A NaN anywhere yields Null → false, so the mask is
            // total only when neither side can be NaN.
            let x = lit.as_f64()?;
            let total = !x.is_nan() && !matches!(col, Column::F64(_));
            let mask = (0..col.len())
                .map(|r| {
                    col.f64_at(r)
                        .and_then(|a| a.partial_cmp(&x))
                        .is_some_and(test)
                })
                .collect();
            Some((mask, total))
        }
        _ => None,
    }
}

/// Substring kernel for `Contains`/`ContainsAny` over a string column.
/// Dictionary columns resolve the needles against each distinct entry once
/// (a code-set test), then scan the codes.
fn contains_kernel(col: &Column, needles: &[String]) -> Option<(Vec<bool>, bool)> {
    if let Column::Dict { codes, dict } = col {
        let hits: Vec<bool> = dict
            .iter()
            .map(|e| needles.iter().any(|n| e.contains(n.as_str())))
            .collect();
        let mask = codes.iter().map(|&c| hits[c as usize]).collect();
        return Some((mask, true));
    }
    let total = match col {
        Column::Str { .. } => true,
        // Null rows evaluate to Null in the scalar path: non-total.
        Column::Opt { values, .. }
            if matches!(values.as_ref(), Column::Str { .. } | Column::Dict { .. }) =>
        {
            false
        }
        _ => return None,
    };
    let mask = (0..col.len())
        .map(|r| {
            col.str_at(r)
                .is_some_and(|s| needles.iter().any(|n| s.contains(n.as_str())))
        })
        .collect();
    Some((mask, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(values: Vec<Value>) -> Record {
        Record::new(0, values)
    }

    #[test]
    fn filter_predicate_from_listing_1() {
        // Filter(e => e.errCode == 0) with errCode at column 5.
        let p = Expr::col(5).eq(Expr::lit(0u64));
        assert!(p.matches(&rec(vec![
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::U64(0)
        ])));
        assert!(!p.matches(&rec(vec![
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::U64(3)
        ])));
    }

    #[test]
    fn contains_any_matches_log_patterns() {
        let p = Expr::ContainsAny(0, vec!["tenant name".into(), "cpu util".into()]);
        assert!(p.matches(&rec(vec![Value::str("x cpu util=55 y")])));
        assert!(!p.matches(&rec(vec![Value::str("heartbeat ok")])));
    }

    #[test]
    fn null_propagates_and_predicates_reject_null() {
        let p = Expr::col(0).gt(Expr::lit(1i64));
        assert!(!p.matches(&rec(vec![Value::Null])));
        assert_eq!(p.eval(&rec(vec![Value::Null])), Value::Null);
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        let e = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(0i64)),
        );
        assert_eq!(e.eval(&rec(vec![Value::I64(10)])), Value::Null);
        let e2 = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(2i64)),
        );
        assert_eq!(e2.eval(&rec(vec![Value::I64(10)])), Value::F64(12.0));
    }

    #[test]
    fn fold_collapses_constant_trees() {
        let e = Expr::lit(2i64)
            .gt(Expr::lit(1i64))
            .and(Expr::col(0).eq(Expr::lit(5i64)));
        // `2 > 1` folds to true; `true AND x` folds to x.
        assert_eq!(e.fold(), Expr::col(0).eq(Expr::lit(5i64)));

        let always_false = Expr::lit(1i64)
            .gt(Expr::lit(2i64))
            .and(Expr::col(0).eq(Expr::lit(5i64)));
        assert_eq!(always_false.fold(), Expr::Lit(Value::Bool(false)));
    }

    #[test]
    fn column_refs_are_collected() {
        let e = Expr::col(3)
            .gt(Expr::lit(1i64))
            .and(Expr::ContainsAny(7, vec!["a".into()]));
        let mut refs = BTreeSet::new();
        e.column_refs(&mut refs);
        assert_eq!(refs.into_iter().collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    fn mask_matches_scalar_evaluation() {
        use crate::batch::Batch;
        use crate::schema::{DataType, Field, Schema};

        let schema = Schema::new(vec![
            Field::new("err", DataType::U32),
            Field::new("rtt", DataType::F64),
            Field::new("line", DataType::Str),
        ]);
        let recs: Vec<Record> = (0..64)
            .map(|i| {
                Record::new(
                    i,
                    vec![
                        Value::U64((i % 5) as u64),
                        if i % 7 == 0 {
                            Value::Null
                        } else {
                            Value::F64(i as f64 * 1.5)
                        },
                        Value::str(if i % 3 == 0 { "cpu util=5" } else { "noise" }),
                    ],
                )
            })
            .collect();
        let batch = Batch::from_records(schema, &recs).unwrap();

        let exprs = [
            Expr::col(0).eq(Expr::lit(0u64)),
            Expr::col(0).ne(Expr::lit(2u64)),
            Expr::col(1).gt(Expr::lit(30.0)),
            Expr::lit(10u64).le(Expr::col(0)),
            Expr::ContainsAny(2, vec!["cpu util".into()]),
            Expr::col(0)
                .eq(Expr::lit(0u64))
                .and(Expr::ContainsAny(2, vec!["cpu".into()])),
            Expr::col(0)
                .eq(Expr::lit(1u64))
                .or(Expr::col(0).eq(Expr::lit(2u64))),
            Expr::col(0).eq(Expr::lit(3u64)).not(),
            Expr::col(1).gt(Expr::lit(30.0)).not(), // non-total operand
        ];
        for e in &exprs {
            let mask = e.eval_mask(&batch);
            let scalar: Vec<bool> = recs.iter().map(|r| e.matches(r)).collect();
            assert_eq!(mask, scalar, "mask mismatch for {e:?}");
        }
    }

    #[test]
    fn dict_masks_match_scalar_evaluation() {
        use crate::batch::Batch;
        use crate::schema::{DataType, Field, Schema};

        let schema = Schema::new(vec![
            Field::new("stat", DataType::Str),
            Field::new("v", DataType::F64),
        ]);
        let recs: Vec<Record> = (0..48)
            .map(|i| {
                Record::new(
                    i,
                    vec![
                        Value::str(["cpu util", "memory util", "gc pause"][i as usize % 3]),
                        Value::F64(i as f64),
                    ],
                )
            })
            .collect();
        let mut batch = Batch::from_records(schema, &recs).unwrap();
        assert!(batch.dict_encode(8), "stat column must dict-encode");

        let exprs = [
            Expr::col(0).eq(Expr::lit("cpu util")),
            Expr::col(0).ne(Expr::lit("gc pause")),
            Expr::lit("memory util").le(Expr::col(0)),
            Expr::Contains(Box::new(Expr::col(0)), "util".into()),
            Expr::ContainsAny(0, vec!["cpu".into(), "gc".into()]),
            Expr::col(0)
                .eq(Expr::lit("cpu util"))
                .and(Expr::col(1).gt(Expr::lit(10.0))),
            Expr::ContainsAny(0, vec!["util".into()]).not(),
        ];
        for e in &exprs {
            let mask = e.eval_mask(&batch);
            let scalar: Vec<bool> = recs.iter().map(|r| e.matches(r)).collect();
            assert_eq!(mask, scalar, "dict mask mismatch for {e:?}");
        }
    }

    #[test]
    fn remap_columns_applies_projection_inverse() {
        let e = Expr::col(1).eq(Expr::lit(0i64));
        let remapped = e
            .remap_columns(&|i| if i == 1 { Some(4) } else { None })
            .unwrap();
        assert_eq!(remapped, Expr::col(4).eq(Expr::lit(0i64)));
        let gone = Expr::col(2).eq(Expr::lit(0i64)).remap_columns(&|_| None);
        assert!(gone.is_none());
    }
}
