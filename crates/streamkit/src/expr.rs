//! Row expressions for filters and derived columns.
//!
//! Queries are declarative (paper §II-A): predicates are data, which lets the
//! logical optimiser fold constants and push filters down, and lets the
//! planner reason about which columns an expression touches.

use std::cmp::Ordering;
use std::collections::BTreeSet;

use crate::record::Record;
use crate::value::Value;

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// An expression tree evaluated against one record.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to column `i` of the input schema.
    Col(usize),
    /// A literal value.
    Lit(Value),
    /// Comparison of two sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic on two numeric sub-expressions.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Logical AND (short-circuiting).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR (short-circuiting).
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// True when the string column contains the needle.
    Contains(Box<Expr>, String),
    /// True when the string column contains *any* of the needles — the
    /// LogAnalytics pattern filter from Listing 3.
    ContainsAny(usize, Vec<String>),
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self <> rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Evaluates against a record. Type errors and null propagation both
    /// yield `Value::Null`; predicates treat `Null` as `false`.
    pub fn eval(&self, rec: &Record) -> Value {
        match self {
            Expr::Col(i) => rec.values.get(*i).cloned().unwrap_or(Value::Null),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(rec), b.eval(rec));
                match va.compare(&vb) {
                    Some(ord) => Value::Bool(op.test(ord)),
                    None => Value::Null,
                }
            }
            Expr::Arith(op, a, b) => {
                let (va, vb) = (a.eval(rec), b.eval(rec));
                match (va.as_f64(), vb.as_f64()) {
                    (Some(x), Some(y)) => {
                        let r = match op {
                            ArithOp::Add => x + y,
                            ArithOp::Sub => x - y,
                            ArithOp::Mul => x * y,
                            ArithOp::Div => {
                                if y == 0.0 {
                                    return Value::Null;
                                }
                                x / y
                            }
                        };
                        Value::F64(r)
                    }
                    _ => Value::Null,
                }
            }
            Expr::And(a, b) => match a.eval(rec).as_bool() {
                Some(false) => Value::Bool(false),
                Some(true) => b.eval(rec),
                None => Value::Null,
            },
            Expr::Or(a, b) => match a.eval(rec).as_bool() {
                Some(true) => Value::Bool(true),
                Some(false) => b.eval(rec),
                None => Value::Null,
            },
            Expr::Not(a) => match a.eval(rec).as_bool() {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            Expr::Contains(a, needle) => match a.eval(rec) {
                Value::Str(s) => Value::Bool(s.contains(needle.as_str())),
                _ => Value::Null,
            },
            Expr::ContainsAny(col, needles) => match rec.values.get(*col) {
                Some(Value::Str(s)) => Value::Bool(needles.iter().any(|n| s.contains(n.as_str()))),
                _ => Value::Null,
            },
        }
    }

    /// Evaluates as a predicate: `Null` and non-boolean results are `false`.
    pub fn matches(&self, rec: &Record) -> bool {
        self.eval(rec).as_bool().unwrap_or(false)
    }

    /// Collects the column indices this expression reads.
    pub fn column_refs(&self, out: &mut BTreeSet<usize>) {
        match self {
            Expr::Col(i) => {
                out.insert(*i);
            }
            Expr::Lit(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.column_refs(out);
                b.column_refs(out);
            }
            Expr::Not(a) | Expr::Contains(a, _) => a.column_refs(out),
            Expr::ContainsAny(col, _) => {
                out.insert(*col);
            }
        }
    }

    /// Rewrites column references through a mapping (used when pushing a
    /// filter past a projection). Returns `None` if a referenced column has
    /// no pre-image.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> Option<usize>) -> Option<Expr> {
        Some(match self {
            Expr::Col(i) => Expr::Col(map(*i)?),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.remap_columns(map)?),
                Box::new(b.remap_columns(map)?),
            ),
            Expr::Arith(op, a, b) => Expr::Arith(
                *op,
                Box::new(a.remap_columns(map)?),
                Box::new(b.remap_columns(map)?),
            ),
            Expr::And(a, b) => Expr::And(
                Box::new(a.remap_columns(map)?),
                Box::new(b.remap_columns(map)?),
            ),
            Expr::Or(a, b) => Expr::Or(
                Box::new(a.remap_columns(map)?),
                Box::new(b.remap_columns(map)?),
            ),
            Expr::Not(a) => Expr::Not(Box::new(a.remap_columns(map)?)),
            Expr::Contains(a, n) => Expr::Contains(Box::new(a.remap_columns(map)?), n.clone()),
            Expr::ContainsAny(col, n) => Expr::ContainsAny(map(*col)?, n.clone()),
        })
    }

    /// True when the expression references no columns.
    pub fn is_const(&self) -> bool {
        let mut refs = BTreeSet::new();
        self.column_refs(&mut refs);
        refs.is_empty()
    }

    /// Constant folding: evaluates constant sub-trees once. This is the
    /// "constant folding" logical optimisation from paper §IV-B.
    pub fn fold(self) -> Expr {
        // Fold children first, then collapse if the whole node is constant.
        let folded = match self {
            Expr::Cmp(op, a, b) => Expr::Cmp(op, Box::new(a.fold()), Box::new(b.fold())),
            Expr::Arith(op, a, b) => Expr::Arith(op, Box::new(a.fold()), Box::new(b.fold())),
            Expr::And(a, b) => {
                let (a, b) = (a.fold(), b.fold());
                match (&a, &b) {
                    (Expr::Lit(Value::Bool(false)), _) | (_, Expr::Lit(Value::Bool(false))) => {
                        return Expr::Lit(Value::Bool(false));
                    }
                    (Expr::Lit(Value::Bool(true)), _) => return b,
                    (_, Expr::Lit(Value::Bool(true))) => return a,
                    _ => Expr::And(Box::new(a), Box::new(b)),
                }
            }
            Expr::Or(a, b) => {
                let (a, b) = (a.fold(), b.fold());
                match (&a, &b) {
                    (Expr::Lit(Value::Bool(true)), _) | (_, Expr::Lit(Value::Bool(true))) => {
                        return Expr::Lit(Value::Bool(true));
                    }
                    (Expr::Lit(Value::Bool(false)), _) => return b,
                    (_, Expr::Lit(Value::Bool(false))) => return a,
                    _ => Expr::Or(Box::new(a), Box::new(b)),
                }
            }
            Expr::Not(a) => Expr::Not(Box::new(a.fold())),
            Expr::Contains(a, n) => Expr::Contains(Box::new(a.fold()), n),
            other => other,
        };
        if folded.is_const() {
            let dummy = Record::new(0, Vec::new());
            Expr::Lit(folded.eval(&dummy))
        } else {
            folded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(values: Vec<Value>) -> Record {
        Record::new(0, values)
    }

    #[test]
    fn filter_predicate_from_listing_1() {
        // Filter(e => e.errCode == 0) with errCode at column 5.
        let p = Expr::col(5).eq(Expr::lit(0u64));
        assert!(p.matches(&rec(vec![
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::U64(0)
        ])));
        assert!(!p.matches(&rec(vec![
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::U64(3)
        ])));
    }

    #[test]
    fn contains_any_matches_log_patterns() {
        let p = Expr::ContainsAny(0, vec!["tenant name".into(), "cpu util".into()]);
        assert!(p.matches(&rec(vec![Value::str("x cpu util=55 y")])));
        assert!(!p.matches(&rec(vec![Value::str("heartbeat ok")])));
    }

    #[test]
    fn null_propagates_and_predicates_reject_null() {
        let p = Expr::col(0).gt(Expr::lit(1i64));
        assert!(!p.matches(&rec(vec![Value::Null])));
        assert_eq!(p.eval(&rec(vec![Value::Null])), Value::Null);
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        let e = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(0i64)),
        );
        assert_eq!(e.eval(&rec(vec![Value::I64(10)])), Value::Null);
        let e2 = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(2i64)),
        );
        assert_eq!(e2.eval(&rec(vec![Value::I64(10)])), Value::F64(12.0));
    }

    #[test]
    fn fold_collapses_constant_trees() {
        let e = Expr::lit(2i64)
            .gt(Expr::lit(1i64))
            .and(Expr::col(0).eq(Expr::lit(5i64)));
        // `2 > 1` folds to true; `true AND x` folds to x.
        assert_eq!(e.fold(), Expr::col(0).eq(Expr::lit(5i64)));

        let always_false = Expr::lit(1i64)
            .gt(Expr::lit(2i64))
            .and(Expr::col(0).eq(Expr::lit(5i64)));
        assert_eq!(always_false.fold(), Expr::Lit(Value::Bool(false)));
    }

    #[test]
    fn column_refs_are_collected() {
        let e = Expr::col(3)
            .gt(Expr::lit(1i64))
            .and(Expr::ContainsAny(7, vec!["a".into()]));
        let mut refs = BTreeSet::new();
        e.column_refs(&mut refs);
        assert_eq!(refs.into_iter().collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    fn remap_columns_applies_projection_inverse() {
        let e = Expr::col(1).eq(Expr::lit(0i64));
        let remapped = e
            .remap_columns(&|i| if i == 1 { Some(4) } else { None })
            .unwrap();
        assert_eq!(remapped, Expr::col(4).eq(Expr::lit(0i64)));
        let gone = Expr::col(2).eq(Expr::lit(0i64)).remap_columns(&|_| None);
        assert!(gone.is_none());
    }
}
