//! Multi-node SP scaling on the group-aggregate-heavy pipeline.
//!
//! Runs the S2SProbe chain (`W -> F -> G+R`) over a high-cardinality
//! Pingmesh stream through the consistent-hash dispatcher at 1, 2, and 4
//! SP nodes over a fixed 4-shard ring, timing the critical path (serial
//! dispatcher incl. the `NetPayload` wire encode for remote nodes +
//! slowest node incl. decode) exactly as `repro bench`'s `node_scaling`
//! series does. The acceptance target for the multi-node tier is ≥ 1.5×
//! the single-node throughput at 4 nodes. Set `BENCH_SMOKE=1` for a
//! reduced-sample CI run.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use jarvis_bench::nodescale::{run_node_iter, suffix_schemas, NODE_RING};
use jarvis_bench::shardscale::{build_sharded_chain, shard_scaling_epochs};

fn bench_node_scaling(c: &mut Criterion) {
    let batches = shard_scaling_epochs(4);
    let rows: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let schemas = suffix_schemas();

    let mut group = c.benchmark_group("node_scaling");
    group.throughput(Throughput::Elements(rows));
    if std::env::var_os("BENCH_SMOKE").is_some() {
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(50));
        group.measurement_time(Duration::from_millis(300));
    }

    for n in [1usize, 2, 4] {
        group.bench_function(format!("s2s_group_heavy/{n}_nodes"), |b| {
            let mut chain = build_sharded_chain(NODE_RING);
            b.iter(|| run_node_iter(black_box(&mut chain), &schemas, n, &batches));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_node_scaling);
criterion_main!(benches);
