//! Micro-benchmarks of per-batch operator costs (wall-clock, as opposed to
//! the calibrated virtual costs used by the emulator).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use streamkit::agg::{AggKind, AggSpec};
use streamkit::batch::Batch;
use streamkit::expr::Expr;
use streamkit::ops::{
    AggRole, CostModel, EmitMode, FilterOp, GroupAggregateOp, JoinMiss, JoinOp, MapFn, MapOp,
    Operator,
};
use streamkit::window::TumblingWindow;
use telemetry::pingmesh::{pingmesh_schema, PingmeshConfig, PingmeshGenerator};

fn batches(n_epochs: i64) -> Vec<Batch> {
    let mut gen = PingmeshGenerator::new(PingmeshConfig {
        scale: 1.0,
        ..Default::default()
    });
    (0..n_epochs)
        .map(|e| gen.generate_epoch_batch(e * 1_000_000, 1.0))
        .collect()
}

fn bench_operators(c: &mut Criterion) {
    let input = batches(2);
    let rows: u64 = input.iter().map(|b| b.len() as u64).sum();
    let schema = pingmesh_schema();
    let mut group = c.benchmark_group("operators");
    group.throughput(Throughput::Elements(rows));

    group.bench_function("filter", |b| {
        let mut op = FilterOp::new(
            Expr::col(5).eq(Expr::lit(0u64)),
            schema.clone(),
            CostModel::fixed(1.0),
        );
        b.iter(|| {
            let mut out = Vec::new();
            for batch in &input {
                op.process_batch(black_box(batch.clone()), &mut out);
            }
            out.len()
        });
    });

    group.bench_function("group_aggregate", |b| {
        b.iter(|| {
            let mut op = GroupAggregateOp::new(
                vec![0, 2],
                vec![
                    AggSpec::new(AggKind::Avg, 4, "avg"),
                    AggSpec::new(AggKind::Max, 4, "max"),
                    AggSpec::new(AggKind::Min, 4, "min"),
                ],
                &schema,
                TumblingWindow::new(10_000_000),
                EmitMode::OnWindowClose,
                AggRole::Final,
                CostModel::fixed(1.0),
            );
            let mut out = Vec::new();
            for batch in &input {
                op.process_batch(batch.clone(), &mut out);
            }
            op.on_watermark(i64::MAX / 2, &mut out);
            out.len()
        });
    });

    group.bench_function("join", |b| {
        let (table, _) = telemetry::queries::t2t_tables(20_000, 40, &[1]);
        let mut op = JoinOp::new(table, 2, JoinMiss::Drop, &schema, CostModel::fixed(1.0)).unwrap();
        b.iter(|| {
            let mut out = Vec::new();
            for batch in &input {
                op.process_batch(black_box(batch.clone()), &mut out);
            }
            out.len()
        });
    });

    group.bench_function("map_trim_lower", |b| {
        let log_schema = telemetry::loganalytics::log_schema();
        let mut gen = telemetry::loganalytics::LogGenerator::new(Default::default());
        let lines = gen.generate_epoch_batch(0, 0.2);
        let mut op = MapOp::new(MapFn::TrimLower(0), log_schema, CostModel::fixed(1.0));
        b.iter(|| {
            let mut out = Vec::new();
            op.process_batch(black_box(lines.clone()), &mut out);
            out.len()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
