//! Control-proxy routing overhead — the proxy sits on the per-record hot
//! path, so routing must cost nanoseconds (the paper's "light-weight routing
//! logic").

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use jarvis_core::proxy::{ControlProxy, Route};

fn bench_proxy(c: &mut Criterion) {
    let mut group = c.benchmark_group("proxy");
    group.throughput(Throughput::Elements(10_000));
    for p in [0.0, 0.5, 0.83, 1.0] {
        group.bench_function(format!("route_p{p}"), |b| {
            let mut proxy = ControlProxy::new(p, 0.05, 0.25);
            b.iter(|| {
                let mut forwarded = 0u32;
                for _ in 0..10_000 {
                    if proxy.route() == Route::Forward {
                        forwarded += 1;
                    }
                }
                black_box(forwarded)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_proxy);
criterion_main!(benches);
