//! End-to-end epoch execution: one emulated source epoch (generation,
//! routing, operator execution, overflow handling) for S2SProbe under
//! several budgets and strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jarvis_core::calibration::Scale;
use jarvis_core::deploy::{Deployment, EmulatedBackend};
use jarvis_core::experiment::ScenarioSpec;
use jarvis_core::strategy::StrategyKind;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_epoch");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    // ~40k records per epoch at 10x.
    group.throughput(Throughput::Elements(40_000));
    for (strategy, budget) in [
        (StrategyKind::Jarvis, 0.6),
        (StrategyKind::Jarvis, 1.0),
        (StrategyKind::BestOp, 0.6),
        (StrategyKind::AllSrc, 1.0),
    ] {
        let id = format!("{}_{:.0}%", strategy.label(), budget * 100.0);
        group.bench_with_input(BenchmarkId::new("s2s_x10", id), &(), |b, ()| {
            let spec = Deployment::builder()
                .workload(ScenarioSpec::pingmesh_s2s(Scale::X10))
                .strategy(strategy)
                .cpu_budget(budget)
                .spec()
                .expect("valid deployment");
            let mut be = EmulatedBackend::default();
            be.prepare(&spec).expect("block builds");
            // Settle adaptation before measuring steady-state epochs.
            for _ in 0..25 {
                be.step(&spec);
            }
            b.iter(|| be.step(&spec));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
