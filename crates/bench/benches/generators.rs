//! Workload-generation throughput: synthetic telemetry must be much faster
//! than the emulated pipelines so generation never dominates experiments.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use telemetry::loganalytics::{LogConfig, LogGenerator};
use telemetry::pingmesh::{PingmeshConfig, PingmeshGenerator};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");

    group.throughput(Throughput::Elements(40_000));
    group.bench_function("pingmesh_epoch_x10", |b| {
        let mut gen = PingmeshGenerator::new(PingmeshConfig {
            scale: 10.0,
            ..Default::default()
        });
        let mut epoch = 0i64;
        b.iter(|| {
            epoch += 1;
            gen.generate_epoch(epoch * 1_000_000, 1.0).len()
        });
    });

    group.throughput(Throughput::Bytes((0.62 * 1024.0 * 1024.0 * 10.0) as u64));
    group.bench_function("log_epoch_x10", |b| {
        let mut gen = LogGenerator::new(LogConfig {
            scale: 10.0,
            ..Default::default()
        });
        let mut epoch = 0i64;
        b.iter(|| {
            epoch += 1;
            gen.generate_epoch(epoch * 1_000_000, 1.0).len()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
