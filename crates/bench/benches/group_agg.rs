//! Group-aggregate kernel throughput: str keys vs dict keys.
//!
//! The LogAnalytics-style hot path — a windowed group-by over
//! low-cardinality string keys (tenant, stat name) folding Sum/Avg/Max over
//! a numeric column — through the vectorized `GroupAggregateOp`, keyed two
//! ways over identical data:
//!
//! * **str**: plain `Column::Str` keys (the PR-2 batch baseline layout);
//! * **dict**: native `Column::Dict` keys, which resolve rows through the
//!   combined-code slot cache instead of hashing byte keys.
//!
//! The dict path is the acceptance target for the columnar group-by fast
//! path: ≥ 1.5× the str path's rows/second. Set `BENCH_SMOKE=1` for a
//! reduced-sample CI run.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use jarvis_bench::groupagg::{build_group_op, structured_epochs, GroupKeyLayout};
use jarvis_bench::measure::run_op;

fn bench_group_agg(c: &mut Criterion) {
    let epochs = structured_epochs(4);
    let rows: u64 = epochs.dict.iter().map(|b| b.len() as u64).sum();

    let mut group = c.benchmark_group("group_agg");
    group.throughput(Throughput::Elements(rows));
    if std::env::var_os("BENCH_SMOKE").is_some() {
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(50));
        group.measurement_time(Duration::from_millis(300));
    }

    group.bench_function("loganalytics_keys/str", |b| {
        let mut op = build_group_op(GroupKeyLayout::Str);
        b.iter(|| run_op(black_box(op.as_mut()), &epochs.str));
    });

    group.bench_function("loganalytics_keys/dict", |b| {
        let mut op = build_group_op(GroupKeyLayout::Dict);
        b.iter(|| run_op(black_box(op.as_mut()), &epochs.dict));
    });

    group.finish();
}

criterion_group!(benches, bench_group_agg);
criterion_main!(benches);
