//! Row-shim vs batch-path throughput on the paper's hot pipeline.
//!
//! Runs the S2SProbe operator chain (filter → group → aggregate, the
//! `W -> F -> G+R` plan) over identical Pingmesh data through
//!
//! * the **row** path: the deprecated record-at-a-time shims behind
//!   `build_row_pipeline` (the pre-redesign execution model), and
//! * the **batch** path: the vectorized operators behind `build_pipeline`.
//!
//! The batch path is the acceptance target for the batch-first redesign:
//! ≥ 2× the row path's records/second on this chain. Set `BENCH_SMOKE=1`
//! for a reduced-sample CI run.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use jarvis_bench::measure::run_chain;
use streamkit::batch::Batch;
use streamkit::ops::AggRole;
use streamkit::physical::{build_pipeline, CostProfile};
use telemetry::pingmesh::{PingmeshConfig, PingmeshGenerator};

fn input(n_epochs: i64) -> Vec<Batch> {
    let mut gen = PingmeshGenerator::new(PingmeshConfig {
        scale: 1.0,
        ..Default::default()
    });
    (0..n_epochs)
        .map(|e| gen.generate_epoch_batch(e * 1_000_000, 1.0))
        .collect()
}

fn bench_row_vs_batch(c: &mut Criterion) {
    let plan = telemetry::queries::s2s_probe();
    let costs = CostProfile::default();
    let batches = input(4);
    let rows: u64 = batches.iter().map(|b| b.len() as u64).sum();

    let mut group = c.benchmark_group("row_vs_batch");
    group.throughput(Throughput::Elements(rows));
    if std::env::var_os("BENCH_SMOKE").is_some() {
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(50));
        group.measurement_time(Duration::from_millis(300));
    }

    group.bench_function("filter_group_aggregate/row", |b| {
        #[allow(deprecated)]
        let mut ops =
            streamkit::physical::build_row_pipeline(&plan, &costs, AggRole::Final).unwrap();
        b.iter(|| run_chain(black_box(&mut ops), &batches));
    });

    group.bench_function("filter_group_aggregate/batch", |b| {
        let mut ops = build_pipeline(&plan, &costs, AggRole::Final).unwrap();
        b.iter(|| run_chain(black_box(&mut ops), &batches));
    });

    group.finish();
}

criterion_group!(benches, bench_row_vs_batch);
criterion_main!(benches);
