//! Persistent cross-epoch dictionaries vs per-epoch rebuild.
//!
//! The LogAnalytics-style structured stream through the windowed group-by,
//! with dictionary key columns laid out two ways over identical rows:
//!
//! * **rebuild**: batch-local id-0 pages every epoch (the pre-PR-9
//!   regime, `LogConfig::persistent_dicts = false`) — key fragments are
//!   re-encoded and rows re-hashed per batch;
//! * **persistent**: one `StreamDict` per key stream, codes stable across
//!   epochs, so the operator's fragment and dense-slot caches carry over.
//!
//! A third pair times the wire side on the same batches: encoding each
//! epoch's shard frames with full dictionary pages vs per-link deltas.
//! The persistent group-by is the acceptance target: ≥ 1.3× the rebuild
//! path's rows/second. Set `BENCH_SMOKE=1` for a reduced-sample CI run.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use jarvis_bench::dictepoch::{structured_epochs_with, wire_bytes};
use jarvis_bench::groupagg::{build_group_op, GroupKeyLayout};
use jarvis_bench::measure::run_op;

fn bench_dict_epoch(c: &mut Criterion) {
    let persistent = structured_epochs_with(true);
    let rebuild = structured_epochs_with(false);
    let rows: u64 = persistent.iter().map(|b| b.len() as u64).sum();

    let mut group = c.benchmark_group("dict_epoch");
    group.throughput(Throughput::Elements(rows));
    if std::env::var_os("BENCH_SMOKE").is_some() {
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(50));
        group.measurement_time(Duration::from_millis(300));
    }

    group.bench_function("loganalytics_group_by/rebuild", |b| {
        let mut op = build_group_op(GroupKeyLayout::Dict);
        b.iter(|| run_op(black_box(op.as_mut()), &rebuild));
    });

    group.bench_function("loganalytics_group_by/persistent", |b| {
        let mut op = build_group_op(GroupKeyLayout::Dict);
        b.iter(|| run_op(black_box(op.as_mut()), &persistent));
    });

    group.bench_function("shard_frames/full_pages", |b| {
        b.iter(|| wire_bytes(black_box(&persistent), false));
    });

    group.bench_function("shard_frames/deltas", |b| {
        b.iter(|| wire_bytes(black_box(&persistent), true));
    });

    group.finish();
}

criterion_group!(benches, bench_dict_epoch);
criterion_main!(benches);
