//! StepWise-Adapt step latency, plus the priority-rule ablation called out in
//! DESIGN.md §6 (relay-ratio vs cost-aware priority).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jarvis_core::convergence_sim::{epochs_to_converge, SimConfig};
use jarvis_core::proxy::QueryState;
use jarvis_core::stepwise::{PriorityRule, ProfileEstimates, StepWiseAdapt, StepWiseConfig};

fn estimates() -> ProfileEstimates {
    ProfileEstimates {
        cost_us: vec![0.25, 3.25, 23.0],
        relay_bytes: vec![1.0, 0.86, 0.3],
        relay_count: vec![1.0, 0.86, 0.5],
        records_per_epoch: 40_000.0,
        budget_us: 600_000.0,
    }
}

fn bench_stepwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("stepwise");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("init_plan_lp", |b| {
        let mut adapter = StepWiseAdapt::new(StepWiseConfig::default(), 3);
        let est = estimates();
        b.iter(|| adapter.init_plan(black_box(&est)));
    });

    group.bench_function("fine_tune_step", |b| {
        let mut adapter = StepWiseAdapt::new(StepWiseConfig::default(), 3);
        adapter.set_priorities(&estimates());
        b.iter(|| {
            let mut p = vec![1.0, 1.0, 1.0];
            adapter.fine_tune(black_box(&mut p), QueryState::Congested)
        });
    });

    // Ablation: convergence epochs under the two priority rules.
    for (name, rule) in [
        ("priority_relay", PriorityRule::RelayRatio),
        ("priority_cost_aware", PriorityRule::CostAware),
    ] {
        group.bench_function(name, |b| {
            let cfg = SimConfig {
                cost_us: vec![0.5, 4.0, 12.0, 24.0],
                relay: vec![1.0, 0.7, 0.5, 0.3],
                records: 20_000.0,
                budget_us: 400_000.0,
                idle_tolerance: 0.15,
            };
            let sw = StepWiseConfig {
                use_lp_init: false,
                priority: rule,
                ..Default::default()
            };
            b.iter(|| epochs_to_converge(black_box(&cfg), sw, 200));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_stepwise);
criterion_main!(benches);
