//! Framed-TCP socket transport vs the in-process channel baseline.
//!
//! Moves identical pre-encoded `FrameKind::Shard` frames over a loopback
//! `TcpStream` pair (production `Link` writer thread + `FrameReader`
//! decode loop) and over a bounded in-process channel, exactly as `repro
//! bench`'s `net_transport` series does. The CI-gated number is the ratio
//! of the two throughputs. Set `BENCH_SMOKE=1` for a reduced-sample CI
//! run.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use jarvis_bench::nettransport::{run_channel_iter, run_tcp_iter, transport_frames};

fn bench_net_transport(c: &mut Criterion) {
    let frames = transport_frames();
    let bytes: u64 = frames.iter().map(|f| f.len() as u64).sum();

    let mut group = c.benchmark_group("net_transport");
    group.throughput(Throughput::Bytes(bytes));
    if std::env::var_os("BENCH_SMOKE").is_some() {
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(50));
        group.measurement_time(Duration::from_millis(300));
    }

    group.bench_function("shard_frames/channel", |b| {
        b.iter(|| run_channel_iter(black_box(&frames)));
    });
    group.bench_function("shard_frames/tcp_loopback", |b| {
        b.iter(|| run_tcp_iter(black_box(&frames)));
    });

    group.finish();
}

criterion_group!(benches, bench_net_transport);
criterion_main!(benches);
