//! Task-per-source fan-in on the async runtime.
//!
//! Runs `n` source tasks — 16, 256, 2048, and 10240 — each filling
//! wire-sized row batches and sending them over one bounded async MPSC
//! channel to a `recv_many` dispatcher task, on a `num_cpus`-worker
//! executor, exactly as `repro bench`'s `source_scaling` series does. The
//! total row budget is fixed across counts, so flat wall-clock as the
//! fan-in grows is the wakeup-amortization contract; the acceptance floor
//! is ≥ 0.8× of the 16-source rate at ≥ 2048 sources. Set `BENCH_SMOKE=1`
//! for a reduced-sample CI run.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use jarvis_bench::sourcescale::{run_source_iter, SOURCE_COUNTS, TOTAL_ROWS};
use jarvis_core::rt;

fn bench_source_scaling(c: &mut Criterion) {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    // The smoke run shrinks the budget, not the fan-in: spawning 10k tasks
    // is the thing under test.
    let total = if smoke { TOTAL_ROWS / 16 } else { TOTAL_ROWS };
    let runtime = rt::Runtime::new(rt::effective_workers(None));
    let handle = runtime.handle();

    let mut group = c.benchmark_group("source_scaling");
    group.throughput(Throughput::Elements(total));
    if smoke {
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(50));
        group.measurement_time(Duration::from_millis(300));
    }

    for n in SOURCE_COUNTS {
        group.bench_function(format!("fan_in/{n}_sources"), |b| {
            b.iter(|| run_source_iter(black_box(&handle), n as usize, total));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_source_scaling);
criterion_main!(benches);
