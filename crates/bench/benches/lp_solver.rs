//! Load-factor LP solve latency — the model-based step must be cheap enough
//! to run at every adaptation (paper: partitioning decisions within seconds;
//! the solve itself is microseconds).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use jarvis_lp::loadfactor::{solve_load_factors, LoadFactorProblem};

fn problem(ops: usize) -> LoadFactorProblem {
    LoadFactorProblem {
        relay: (0..ops).map(|i| 0.95 - 0.1 * (i as f64 % 5.0)).collect(),
        cost_us: (0..ops).map(|i| 0.5 + 3.0 * i as f64).collect(),
        records: 40_000.0,
        budget_us: 600_000.0,
    }
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solver");
    for ops in [2usize, 3, 4, 6, 8] {
        let p = problem(ops);
        group.bench_with_input(BenchmarkId::new("solve", ops), &p, |b, p| {
            b.iter(|| solve_load_factors(black_box(p)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
