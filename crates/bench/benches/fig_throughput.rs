//! Sampled versions of the Fig. 7 throughput points as Criterion benches:
//! each measures the wall-clock cost of a short measured scenario window, and
//! its printed custom metric is checked by `repro` for the full series.
//!
//! These exist so `cargo bench` exercises every figure-7 code path; the
//! authoritative series come from `repro fig7a|b|c`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jarvis_core::calibration::Scale;
use jarvis_core::deploy::{BackendKind, Deployment};
use jarvis_core::experiment::ScenarioSpec;
use jarvis_core::strategy::StrategyKind;

fn bench_fig7_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_points");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(8));
    type SpecFn = fn() -> ScenarioSpec;
    let panels: [(&str, SpecFn); 3] = [
        ("s2s", || ScenarioSpec::pingmesh_s2s(Scale::X10)),
        ("t2t", || ScenarioSpec::pingmesh_t2t(Scale::X10, 500)),
        ("log", || ScenarioSpec::log_analytics(Scale::X10)),
    ];
    for (name, mk) in panels {
        for strategy in [StrategyKind::Jarvis, StrategyKind::BestOp] {
            let id = format!("{}_{}", name, strategy.label());
            group.bench_with_input(BenchmarkId::new("cpu60", id), &(), |b, ()| {
                b.iter(|| {
                    Deployment::builder()
                        .workload(mk())
                        .strategy(strategy)
                        .cpu_budget(0.6)
                        .backend(BackendKind::Emulated)
                        .build()
                        .expect("valid deployment")
                        .run(30)
                        .expect("emulated run")
                        .throughput_mbps
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7_points);
criterion_main!(benches);
