//! Sampled versions of the Fig. 7 throughput points as Criterion benches:
//! each measures the wall-clock cost of a short measured scenario window, and
//! its printed custom metric is checked by `repro` for the full series.
//!
//! These exist so `cargo bench` exercises every figure-7 code path; the
//! authoritative series come from `repro fig7a|b|c`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jarvis_core::calibration::Scale;
use jarvis_core::experiment::{Scenario, ScenarioSpec};
use jarvis_core::strategy::StrategyKind;

fn bench_fig7_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_points");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(8));
    let panels: [(&str, fn() -> ScenarioSpec); 3] = [
        ("s2s", || ScenarioSpec::pingmesh_s2s(Scale::X10)),
        ("t2t", || ScenarioSpec::pingmesh_t2t(Scale::X10, 500)),
        ("log", || ScenarioSpec::log_analytics(Scale::X10)),
    ];
    for (name, mk) in panels {
        for strategy in [StrategyKind::Jarvis, StrategyKind::BestOp] {
            let id = format!("{}_{}", name, strategy.label());
            group.bench_with_input(BenchmarkId::new("cpu60", id), &(), |b, ()| {
                b.iter(|| {
                    let mut s = Scenario::single_source(mk(), strategy, 0.6);
                    s.run_epochs(30).throughput_mbps
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7_points);
criterion_main!(benches);
