//! Sharded SP runtime scaling on the group-aggregate-heavy pipeline.
//!
//! Runs the S2SProbe chain (`W -> F -> G+R`) over a high-cardinality
//! Pingmesh stream through the keyed shard partitioner at 1, 2, and 4
//! shards, timing the critical path (serial router + slowest shard
//! pipeline) exactly as `repro bench`'s `shard_scaling` series does. The
//! acceptance target for the sharded runtime is ≥ 1.5× the unsharded
//! throughput at 4 shards. Set `BENCH_SMOKE=1` for a reduced-sample CI run.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use jarvis_bench::shardscale::{build_sharded_chain, run_sharded_iter, shard_scaling_epochs};

fn bench_shard_scaling(c: &mut Criterion) {
    let batches = shard_scaling_epochs(4);
    let rows: u64 = batches.iter().map(|b| b.len() as u64).sum();

    let mut group = c.benchmark_group("shard_scaling");
    group.throughput(Throughput::Elements(rows));
    if std::env::var_os("BENCH_SMOKE").is_some() {
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(50));
        group.measurement_time(Duration::from_millis(300));
    }

    for n in [1usize, 2, 4] {
        group.bench_function(format!("s2s_group_heavy/{n}_shards"), |b| {
            let mut chain = build_sharded_chain(n);
            b.iter(|| run_sharded_iter(black_box(&mut chain), &batches));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
