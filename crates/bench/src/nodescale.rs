//! Node-scaling throughput for the perf trajectory.
//!
//! Measures the multi-node SP tier's critical path on the same
//! group-aggregate-heavy hot path as the shard-scaling series — the
//! S2SProbe chain over a high-cardinality Pingmesh stream — at 1, 2, and 4
//! SP nodes over a fixed 4-shard ring. The dispatcher phase (stateless
//! prefix + [`Batch::shard_by_key`] partitioning + encoding every
//! remote-node payload to its `NetPayload::ShardBatch` wire form) is
//! serial, exactly as the live runtime's dispatcher thread is; each node's
//! phase (decoding its payloads + running its owned shard pipelines) is
//! then timed independently and the reported wall-clock is the **critical
//! path**, `dispatcher + slowest node` — the throughput a cluster with one
//! machine per node sustains. Shards owned by the dispatcher-colocated
//! node 0 skip the codec, exactly as the in-process fast path does.
//! (This container may have a single core, so end-to-end thread wall-clock
//! would measure the scheduler, not the runtime; node exactness under real
//! threads and real byte transport is covered by `tests/node_parity.rs`.)

use std::time::Instant;

use jarvis_core::engine::netwire::{decode_shard_payload, encode_shard_payload};
use jarvis_core::engine::NetPayload;
use serde::{Deserialize, Serialize};
use streamkit::batch::Batch;
use streamkit::schema::SchemaRef;
use streamkit::shard::{node_of_shard, shards_of_node};
use streamkit::time::TS_MAX;

use crate::measure::best_secs;
use crate::shardscale::{build_sharded_chain, shard_scaling_epochs, ShardedChain};

/// Virtual shards on the ring for every node count (fixed, as in the
/// runtime: node counts only move placement).
pub const NODE_RING: usize = 4;

/// Result of one node-scaling measurement: parallel series over node
/// counts on the fixed [`NODE_RING`]-shard ring.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeScalingResult {
    /// Workload identifier.
    pub pipeline: String,
    /// Rows pushed through the chain per iteration.
    pub rows: u64,
    /// Measured iterations per node count.
    pub iters: u32,
    /// Node counts measured (ascending; first is the single-node baseline).
    pub nodes: Vec<u32>,
    /// Critical-path throughput per node count, rows/second.
    pub rows_per_sec: Vec<f64>,
    /// Speedup vs the single-node baseline, per node count.
    pub speedup: Vec<f64>,
}

impl NodeScalingResult {
    /// Speedup at the largest measured node count (the CI-gated number).
    pub fn speedup_at_max(&self) -> f64 {
        self.speedup.last().copied().unwrap_or(1.0)
    }
}

/// One iteration of the critical-path measurement at `n_nodes` over the
/// fixed ring. Returns `(dispatcher_secs, max_node_secs, emitted_rows)`.
pub fn run_node_iter(
    chain: &mut ShardedChain,
    suffix_schemas: &[SchemaRef],
    n_nodes: usize,
    batches: &[Batch],
) -> (f64, f64, usize) {
    let n_shards = chain.shards.len();
    assert!(n_nodes >= 1 && n_nodes <= n_shards);
    // Dispatcher phase: stateless prefix, key-hash partitioning, and the
    // wire encode of every payload leaving node 0.
    let start = Instant::now();
    let mut local: Vec<Vec<Batch>> = (0..n_shards).map(|_| Vec::new()).collect();
    let mut remote: Vec<Vec<bytes::Bytes>> = (0..n_nodes).map(|_| Vec::new()).collect();
    for batch in batches {
        let mut cur = vec![batch.clone()];
        for op in &mut chain.prefix {
            let mut next = Vec::new();
            for b in cur {
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        for out in cur {
            if n_shards == 1 {
                local[0].push(out);
                continue;
            }
            for (s, sub) in out
                .shard_by_key(&chain.keys, n_shards)
                .into_iter()
                .enumerate()
            {
                if sub.is_empty() {
                    continue;
                }
                let owner = node_of_shard(s, n_shards, n_nodes);
                if owner == 0 {
                    local[s].push(sub);
                } else {
                    remote[owner].push(encode_shard_payload(&NetPayload::ShardBatch {
                        shard: s as u32,
                        epoch: 0,
                        source: 0,
                        rel: 0,
                        batch: sub,
                    }));
                }
            }
        }
    }
    for op in &mut chain.prefix {
        op.reset();
    }
    let dispatcher_secs = start.elapsed().as_secs_f64();

    // Node phase: each node decodes its payloads and runs its owned shard
    // pipelines serially; the critical path is the slowest node.
    let mut max_node_secs = 0.0f64;
    let mut emitted = 0usize;
    for (node, inbound) in remote.iter_mut().enumerate().take(n_nodes) {
        let owned = shards_of_node(node, n_shards, n_nodes);
        let start = Instant::now();
        let mut buckets: Vec<Vec<Batch>> = owned
            .clone()
            .map(|s| std::mem::take(&mut local[s]))
            .collect();
        for raw in inbound.drain(..) {
            let payload =
                decode_shard_payload(raw, suffix_schemas).expect("dispatcher encodes validly");
            let NetPayload::ShardBatch { shard, batch, .. } = payload else {
                unreachable!("the bench ships row payloads only");
            };
            buckets[shard as usize - owned.start].push(batch);
        }
        for (s, bucket) in owned.clone().zip(buckets) {
            let ops = &mut chain.shards[s];
            let mut sink = Vec::new();
            for b in bucket {
                ops[0].process_batch(b, &mut sink);
            }
            let mut cur = std::mem::take(&mut sink);
            ops[0].on_watermark(TS_MAX, &mut cur);
            for op in ops.iter_mut().skip(1) {
                let mut next = Vec::new();
                for b in cur {
                    op.process_batch(b, &mut next);
                }
                op.on_watermark(TS_MAX, &mut next);
                cur = next;
            }
            emitted += cur.iter().map(Batch::len).sum::<usize>();
            for op in ops.iter_mut() {
                op.reset();
            }
        }
        max_node_secs = max_node_secs.max(start.elapsed().as_secs_f64());
    }
    (dispatcher_secs, max_node_secs, emitted)
}

/// Input schemas of the measured chain's suffix stages (decode side of the
/// inter-node wire).
pub fn suffix_schemas() -> Vec<SchemaRef> {
    let plan = telemetry::queries::s2s_probe();
    let (boundary, _) = plan.shard_boundary().expect("S2SProbe has a G+R");
    plan.edge_schemas().expect("valid plan")[boundary..].to_vec()
}

/// Measures the node-scaling series. `iters` timed iterations per node
/// count (best-of, like every trajectory series).
pub fn bench_node_scaling(iters: u32) -> NodeScalingResult {
    let batches = shard_scaling_epochs(4);
    let rows: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let schemas = suffix_schemas();
    let node_counts = [1u32, 2, 4];

    let mut rows_per_sec = Vec::with_capacity(node_counts.len());
    for &n in &node_counts {
        let mut chain = build_sharded_chain(NODE_RING);
        run_node_iter(&mut chain, &schemas, n as usize, &batches); // warm-up
        let samples: Vec<f64> = (0..iters.max(1))
            .map(|_| {
                let (dispatch, max_node, emitted) =
                    run_node_iter(&mut chain, &schemas, n as usize, &batches);
                assert!(emitted > 0, "the chain must emit results");
                dispatch + max_node
            })
            .collect();
        rows_per_sec.push(rows as f64 / best_secs(samples));
    }
    let base = rows_per_sec[0];
    NodeScalingResult {
        pipeline: format!(
            "S2SProbe multi-node SP ({NODE_RING}-shard ring, 20k peer space), critical path"
        ),
        rows,
        iters: iters.max(1),
        nodes: node_counts.to_vec(),
        rows_per_sec: rows_per_sec.clone(),
        speedup: rows_per_sec.iter().map(|r| r / base).collect(),
    }
}
