//! Source-scaling throughput for the perf trajectory.
//!
//! Measures the async task runtime's fan-in fabric (PR 10): `n` source
//! tasks — one per simulated source prefix, exactly the session's topology
//! — each fill wire-sized row batches and send them over a bounded async
//! MPSC channel to a dispatcher task that drains whole bursts per wakeup
//! via `recv_many`. The **total row budget is fixed** and split evenly
//! across sources, so the aggregate rows/second at 16, 256, 2048, and
//! 10240 sources are directly comparable: flat throughput as the fan-in
//! grows is exactly the wakeup-amortization contract (one scheduler wakeup
//! per batch burst, not per record or per task). The CI gate is the
//! machine-independent ratio: aggregate throughput at ≥ 2048 sources must
//! stay within [`FANIN_FLOOR`] of the 16-source rate — thread-per-source
//! dies two orders of magnitude before this (10k OS threads), which is why
//! the series exists.
//!
//! A seeded single-worker deterministic executor backs the unit tests, so
//! a task-ordering bug here reproduces exactly in CI instead of flickering
//! under thread-schedule noise.

use std::time::Instant;

use jarvis_core::rt;
use serde::{Deserialize, Serialize};

use crate::measure::best_secs;

/// Source counts measured (ascending; first is the baseline).
pub const SOURCE_COUNTS: [u32; 4] = [16, 256, 2048, 10240];

/// Total rows per iteration, split evenly across sources. Divisible by
/// every entry of [`SOURCE_COUNTS`], sized so per-row work dominates task
/// bookkeeping on any machine — a source task in the live session
/// processes an epoch's whole input per spawn, so the budget must be large
/// enough that the one-time spawn of 10k tasks amortizes the same way.
pub const TOTAL_ROWS: u64 = 10240 * 4096;

/// Rows per wire batch (one channel send, one amortized wakeup).
pub const BATCH_ROWS: usize = 256;

/// Minimum aggregate throughput at ≥ 2048 sources relative to the
/// 16-source baseline (the acceptance bar: per-source rate within 0.8×).
pub const FANIN_FLOOR: f64 = 0.8;

/// Result of one source-scaling measurement: aggregate fan-in throughput
/// over source counts at a fixed total row budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceScalingResult {
    /// Workload identifier.
    pub pipeline: String,
    /// Rows pushed through the fan-in per iteration (fixed across counts).
    pub rows: u64,
    /// Measured iterations per source count.
    pub iters: u32,
    /// Executor workers the fan-in was multiplexed onto.
    pub rt_workers: u32,
    /// Source counts measured (ascending; first is the baseline).
    pub sources: Vec<u32>,
    /// Aggregate throughput per source count, rows/second.
    pub rows_per_sec: Vec<f64>,
    /// Throughput relative to the first (16-source) entry. The row budget
    /// is fixed, so this is also the per-source rate ratio.
    pub relative: Vec<f64>,
}

impl SourceScalingResult {
    /// Relative throughput at the largest measured fan-in (the CI-gated
    /// number).
    pub fn relative_at_max(&self) -> f64 {
        self.relative.last().copied().unwrap_or(1.0)
    }

    /// Human-readable failures of the fan-in contract — empty when every
    /// count at ≥ 2048 sources holds [`FANIN_FLOOR`] of the baseline rate.
    /// Absolute (not baseline-relative): a runtime that collapses past 2k
    /// sources is wrong on any machine.
    pub fn contract_failures(&self) -> Vec<String> {
        self.sources
            .iter()
            .zip(&self.relative)
            .filter(|(n, rel)| **n >= 2048 && **rel < FANIN_FLOOR)
            .map(|(n, rel)| {
                format!(
                    "source_scaling: {n} sources sustain only {rel:.2}x of the \
                     16-source rate (floor: {FANIN_FLOOR:.2}x)"
                )
            })
            .collect()
    }
}

/// `splitmix64` mixer — the per-row "prefix work" each source task does
/// when filling a batch, and what keeps the checksum honest.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One fan-in iteration on `handle`: `n_sources` tasks each produce
/// `total_rows / n_sources` rows in [`BATCH_ROWS`]-row batches through one
/// bounded channel; the dispatcher task drains bursts with `recv_many`.
/// The channel is sized to the fan-in (`max(default, n_sources)`) — the
/// tuning `JP501` prescribes for deployments past `rt_workers × 512`
/// sources; at the default 256 slots a 10k-source run measures parked-send
/// round trips, not the fabric. Producers are detached, not joined: the
/// dispatcher returns only once every sender has dropped (`recv_many`
/// reports 0), so the row-count assertion already proves completion, and
/// joining 10k handles from the measuring thread would time condvar
/// ping-pong instead of the fan-in. Returns `(rows, checksum)` — rows must
/// equal `total_rows`, and the checksum is schedule-independent (addition
/// commutes), so any executor and any worker count must reproduce it
/// bit-for-bit.
pub fn run_source_iter(handle: &rt::Handle, n_sources: usize, total_rows: u64) -> (u64, u64) {
    assert!(n_sources > 0 && total_rows.is_multiple_of(n_sources as u64));
    let share = total_rows / n_sources as u64;
    let cap = n_sources.max(rt::DEFAULT_CHANNEL_CAPACITY as usize);
    let (tx, mut rx) = rt::chan::bounded::<Vec<u64>>(cap);
    for i in 0..n_sources {
        let tx = tx.clone();
        drop(handle.spawn(async move {
            let mut x = i as u64;
            let mut sent = 0u64;
            while sent < share {
                let take = BATCH_ROWS.min((share - sent) as usize);
                let mut batch = Vec::with_capacity(take);
                for _ in 0..take {
                    x = mix(x);
                    batch.push(x);
                }
                sent += take as u64;
                if tx.send(batch).await.is_err() {
                    return;
                }
            }
        }));
    }
    drop(tx);
    let dispatcher = handle.spawn(async move {
        let mut rows = 0u64;
        let mut sum = 0u64;
        let mut buf: Vec<Vec<u64>> = Vec::new();
        while rx.recv_many(&mut buf).await > 0 {
            for batch in buf.drain(..) {
                rows += batch.len() as u64;
                for v in batch {
                    sum = sum.wrapping_add(v);
                }
            }
        }
        (rows, sum)
    });
    dispatcher.join()
}

/// Measures the source-scaling series. `iters` timed iterations per source
/// count (best-of, like every trajectory series).
pub fn bench_source_scaling(iters: u32) -> SourceScalingResult {
    let workers = rt::effective_workers(None);
    let runtime = rt::Runtime::new(workers);
    let handle = runtime.handle();

    let mut rows_per_sec = Vec::with_capacity(SOURCE_COUNTS.len());
    for &n in &SOURCE_COUNTS {
        run_source_iter(&handle, n as usize, TOTAL_ROWS); // warm-up
        let samples: Vec<f64> = (0..iters.max(1))
            .map(|_| {
                let start = Instant::now();
                let (rows, _sum) = run_source_iter(&handle, n as usize, TOTAL_ROWS);
                let secs = start.elapsed().as_secs_f64();
                assert_eq!(rows, TOTAL_ROWS, "every queued row reaches the dispatcher");
                secs
            })
            .collect();
        rows_per_sec.push(TOTAL_ROWS as f64 / best_secs(samples));
    }
    let base = rows_per_sec[0];
    SourceScalingResult {
        pipeline: format!(
            "task-per-source fan-in over bounded MPSC ({BATCH_ROWS}-row batches, \
             recv_many dispatcher), fixed {TOTAL_ROWS}-row budget"
        ),
        rows: TOTAL_ROWS,
        iters: iters.max(1),
        rt_workers: workers as u32,
        sources: SOURCE_COUNTS.to_vec(),
        rows_per_sec: rows_per_sec.clone(),
        relative: rows_per_sec.iter().map(|r| r / base).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::{mix, run_source_iter, BATCH_ROWS};
    use jarvis_core::rt;

    /// The schedule-independent checksum of `total` rows over `n` sources.
    fn expected(n_sources: usize, total: u64) -> u64 {
        let share = total / n_sources as u64;
        let mut sum = 0u64;
        for i in 0..n_sources {
            let mut x = i as u64;
            for _ in 0..share {
                x = mix(x);
                sum = sum.wrapping_add(x);
            }
        }
        sum
    }

    #[test]
    fn fan_in_accounts_for_every_row_on_the_multiworker_runtime() {
        let runtime = rt::Runtime::new(4);
        let total = 64 * BATCH_ROWS as u64;
        let (rows, sum) = run_source_iter(&runtime.handle(), 64, total);
        assert_eq!(rows, total);
        assert_eq!(sum, expected(64, total));
    }

    /// The deterministic-scheduler mode CI relies on: a seeded
    /// single-worker executor replays one interleaving exactly, so a
    /// task-ordering bug in the fan-in fabric reproduces instead of
    /// flickering. Two runs under the same seed, plus a differently-seeded
    /// run, plus the multi-worker result above must all agree — the result
    /// is schedule-independent by construction.
    #[test]
    fn deterministic_scheduler_reproduces_the_fan_in_exactly() {
        let total = 32 * BATCH_ROWS as u64;
        let run = |seed: u64| {
            let runtime = rt::deterministic_runtime(seed);
            run_source_iter(&runtime.handle(), 32, total)
        };
        let first = run(7);
        assert_eq!(first, run(7), "same seed, same interleaving, same result");
        assert_eq!(first, run(1234), "the answer is schedule-independent");
        assert_eq!(first, (total, expected(32, total)));
    }
}
