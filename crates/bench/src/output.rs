//! Plain-text tables + JSON output for the repro harness.

use std::fs;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// Where JSON results land (`REPRO_OUT` env var, default `./results`).
pub fn out_dir() -> PathBuf {
    std::env::var_os("REPRO_OUT").map_or_else(|| PathBuf::from("results"), PathBuf::from)
}

/// Writes a serialisable result as pretty JSON under the output dir.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = out_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serialisable"),
    )?;
    Ok(path)
}

/// Renders a fixed-width table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>(),
    );
    line(
        &mut out,
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
    );
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Formats an f64 with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Renders labelled series as a compact ASCII chart (one row per x value,
/// one glyph column per series), so figure *shapes* are visible straight
/// from the terminal.
pub fn render_ascii_chart(
    x_label: &str,
    xs: &[String],
    series: &[(&str, Vec<f64>)],
    width: usize,
) -> String {
    let max = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let glyphs = ['#', 'o', '+', 'x', '*', '@', '%', '&'];
    let mut out = String::new();
    for (i, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} = {}\n", glyphs[i % glyphs.len()], name));
    }
    let label_w = xs
        .iter()
        .map(String::len)
        .max()
        .unwrap_or(1)
        .max(x_label.len());
    out.push_str(&format!("{x_label:>label_w$} |0{max:>width$.1}\n"));
    for (row, x) in xs.iter().enumerate() {
        let mut line: Vec<char> = vec![' '; width + 1];
        for (i, (_, ys)) in series.iter().enumerate() {
            if let Some(v) = ys.get(row) {
                let pos = ((v / max) * width as f64).round() as usize;
                let pos = pos.min(width);
                line[pos] = glyphs[i % glyphs.len()];
            }
        }
        out.push_str(&format!(
            "{x:>label_w$} |{}\n",
            line.iter().collect::<String>()
        ));
    }
    out
}

/// Checks a path exists (test helper).
pub fn exists(path: &Path) -> bool {
    path.exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_chart_scales_to_max() {
        let chart = render_ascii_chart(
            "cpu",
            &["20%".into(), "100%".into()],
            &[("Jarvis", vec![13.0, 26.0]), ("All-SP", vec![20.5, 20.5])],
            40,
        );
        assert!(chart.contains("# = Jarvis"));
        // The max value lands at the right edge.
        let last_line = chart.lines().last().unwrap();
        assert!(last_line.trim_end().ends_with('#'));
    }

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["cpu", "Jarvis"],
            &[
                vec!["0.2".into(), "10.00".into()],
                vec!["1.0".into(), "26.20".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Jarvis"));
        assert!(lines[2].trim_start().starts_with("0.2"));
    }

    #[test]
    fn run_reports_stay_machine_readable_on_disk() {
        // The unified RunReport is what sweep output is built from; it must
        // survive the same JSON path `write_json` uses, bit-for-bit enough
        // to reload for plotting.
        use jarvis_core::calibration::Scale;
        use jarvis_core::deploy::{BackendKind, Deployment, RunReport};
        use jarvis_core::experiment::ScenarioSpec;
        use jarvis_core::strategy::StrategyKind;

        let report = Deployment::builder()
            .workload(ScenarioSpec::pingmesh_s2s(Scale::X1))
            .strategy(StrategyKind::Jarvis)
            .cpu_budget(0.6)
            .backend(BackendKind::Emulated)
            .build()
            .unwrap()
            .run(8)
            .unwrap();
        let json = serde_json::to_string_pretty(&report).expect("serialisable");
        let back: RunReport = serde_json::from_str(&json).expect("deserialisable");
        assert_eq!(back.backend, report.backend);
        assert_eq!(back.epochs, report.epochs);
        assert_eq!(back.load_factors, report.load_factors);
        assert_eq!(back.trace.len(), report.trace.len());
        assert_eq!(back.throughput_mbps, report.throughput_mbps);
    }
}
