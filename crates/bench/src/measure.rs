//! Shared measurement harness for the throughput runners and criterion
//! benches — one copy of the drive loops and the timing estimator, so the
//! JSON-trajectory numbers and the interactive benches always measure the
//! same thing.

use streamkit::batch::Batch;
use streamkit::ops::Operator;
use streamkit::physical::drain_windows;

/// Drives one operator over the batches, closes every window, resets the
/// operator, and returns the emitted row count.
pub fn run_op(op: &mut dyn Operator, batches: &[Batch]) -> usize {
    let mut sink = Vec::new();
    for batch in batches {
        op.process_batch(batch.clone(), &mut sink);
    }
    op.on_watermark(streamkit::time::TS_MAX, &mut sink);
    let emitted = sink.iter().map(Batch::len).sum();
    op.reset();
    emitted
}

/// Drives a whole operator chain over the batches, drains all windows,
/// resets every operator, and returns the emitted row count.
pub fn run_chain(ops: &mut [Box<dyn Operator>], batches: &[Batch]) -> usize {
    let mut emitted = 0;
    for batch in batches {
        let mut cur = vec![batch.clone()];
        for op in ops.iter_mut() {
            let mut next = Vec::new();
            for b in cur {
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        emitted += cur.iter().map(Batch::len).sum::<usize>();
    }
    emitted += drain_windows(ops, streamkit::time::TS_MAX)
        .iter()
        .map(Batch::len)
        .sum::<usize>();
    for op in ops.iter_mut() {
        op.reset();
    }
    emitted
}

/// Best-of-N timing: scheduler noise and cache pollution only ever slow an
/// iteration down, so the minimum is the stable estimator the regression
/// gate needs (a median over few samples swings far more on shared
/// hardware).
pub fn best_secs(samples: Vec<f64>) -> f64 {
    samples
        .into_iter()
        .min_by(|a, b| a.partial_cmp(b).expect("finite timings"))
        .expect("at least one sample")
}
