//! `repro plancheck` — lint built-in workload plans with the static
//! analyzer before (or instead of) running them.
//!
//! ```text
//! repro plancheck                 # lint every built-in workload
//! repro plancheck s2s t2t         # lint a subset
//! repro plancheck --all --json    # machine-readable diagnostics
//! repro plancheck --deny-warnings # exit non-zero on warnings too
//! ```
//!
//! Each workload is checked under a small deployment matrix (unsharded, and
//! sharded across two SP nodes) with the adaptive Jarvis strategy, i.e. the
//! exact configurations the parity suites execute dynamically.

use jarvis_core::plancheck::{self, CheckContext, Diagnostic, Severity};
use jarvis_core::planner::{plan_query, RuleConfig};
use jarvis_core::strategy::StrategyKind;
use serde::Serialize;
use streamkit::agg::AggKind;
use streamkit::expr::Expr;
use streamkit::logical::LogicalPlan;
use streamkit::query::Query;

use crate::output::write_json;

/// Names of every lintable built-in workload.
pub const BUILTIN_WORKLOADS: [&str; 5] =
    ["s2s", "t2t", "loganalytics", "tail-latency", "rebalance"];

/// Resolves a workload name to its logical plan.
pub fn builtin_plan(name: &str) -> Option<LogicalPlan> {
    match name {
        // The three paper queries (§II).
        "s2s" => Some(telemetry::queries::s2s_probe()),
        "t2t" => {
            let (src, dst) = telemetry::queries::t2t_tables(500, 40, &[1]);
            Some(telemetry::queries::t2t_probe(src, dst))
        }
        "loganalytics" => Some(telemetry::queries::log_analytics()),
        // The tail-latency example workload (examples/approx_quantiles.rs):
        // a mergeable approximate p99 per source cluster.
        "tail-latency" => Some(
            Query::stream("tail_latency", telemetry::pingmesh::pingmesh_schema())
                .window_secs(10.0)
                .filter_named("errCode", |c| c.eq(Expr::lit(0u64)))
                .group_by(&["srcCluster"])
                .aggregate(&[(
                    AggKind::ApproxQuantile {
                        q: 0.99,
                        lo: 0.0,
                        hi: 50_000.0,
                    },
                    "rtt",
                    "p99_rtt",
                )])
                .build()
                .ok()?,
        ),
        // The rebalance example workload (examples/adaptive_rebalance.rs)
        // runs the S2S probe under anomaly-driven load shifts.
        "rebalance" => Some(telemetry::queries::s2s_probe()),
        _ => None,
    }
}

/// Diagnostics of one workload under one deployment configuration.
#[derive(Debug, Clone, Serialize)]
pub struct ContextReport {
    /// Strategy label.
    pub strategy: String,
    /// Shard-ring width.
    pub sp_shards: u32,
    /// SP node count.
    pub sp_nodes: u32,
    /// Everything the analyzer found.
    pub diagnostics: Vec<Diagnostic>,
}

/// Full lint result of one workload.
#[derive(Debug, Clone, Serialize)]
pub struct TargetReport {
    /// Workload name.
    pub workload: String,
    /// The optimised operator chain.
    pub chain: String,
    /// Source-eligible prefix length.
    pub source_ops: usize,
    /// One entry per deployment configuration checked.
    pub contexts: Vec<ContextReport>,
}

/// The `repro plancheck` output (also the `--json` payload).
#[derive(Debug, Clone, Serialize)]
pub struct PlancheckReport {
    /// One entry per linted workload.
    pub targets: Vec<TargetReport>,
    /// Total error-severity diagnostics.
    pub errors: usize,
    /// Total warning-severity diagnostics.
    pub warnings: usize,
}

/// Lints `plan` under the standard deployment matrix.
pub fn lint_workload(name: &str, plan: LogicalPlan, shards: &[u32]) -> TargetReport {
    let rules = RuleConfig::default();
    let planned = match plan_query(plan, &rules) {
        Ok(planned) => planned,
        Err(e) => {
            return TargetReport {
                workload: name.to_string(),
                chain: String::new(),
                source_ops: 0,
                contexts: vec![ContextReport {
                    strategy: StrategyKind::Jarvis.label().to_string(),
                    sp_shards: 1,
                    sp_nodes: 1,
                    diagnostics: vec![Diagnostic {
                        code: "JP000".to_string(),
                        severity: Severity::Error,
                        op_index: None,
                        message: format!("plan does not validate: {e}"),
                        help: None,
                    }],
                }],
            }
        }
    };
    let mut contexts = Vec::new();
    for &sp_shards in shards {
        let sp_nodes = sp_shards.min(2);
        let mut ctx = CheckContext::local(sp_shards, sp_nodes, StrategyKind::Jarvis);
        ctx.workload = name.to_string();
        contexts.push(ContextReport {
            strategy: ctx.strategy.label().to_string(),
            sp_shards,
            sp_nodes,
            diagnostics: plancheck::check(&planned, &rules, &ctx),
        });
    }
    TargetReport {
        workload: name.to_string(),
        chain: planned.plan.display_chain(),
        source_ops: planned.source_ops,
        contexts,
    }
}

fn count(report: &PlancheckReport, severity: Severity) -> usize {
    report
        .targets
        .iter()
        .flat_map(|t| &t.contexts)
        .flat_map(|c| &c.diagnostics)
        .filter(|d| d.severity == severity)
        .count()
}

/// Runs the subcommand; returns the process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    let json = args.iter().any(|a| a == "--json");
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let all = args.iter().any(|a| a == "--all");
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let names: Vec<&str> = if all || names.is_empty() {
        BUILTIN_WORKLOADS.to_vec()
    } else {
        names
    };

    let shards = [1u32, 4];
    let mut report = PlancheckReport {
        targets: Vec::new(),
        errors: 0,
        warnings: 0,
    };
    for name in names {
        let Some(plan) = builtin_plan(name) else {
            eprintln!("unknown workload: {name}");
            eprintln!("known: {}", BUILTIN_WORKLOADS.join(", "));
            return 2;
        };
        report.targets.push(lint_workload(name, plan, &shards));
    }
    report.errors = count(&report, Severity::Error);
    report.warnings = count(&report, Severity::Warning);

    for t in &report.targets {
        println!(
            "{:<14} {:<28} source-eligible {} of {}",
            t.workload,
            t.chain,
            t.source_ops,
            t.chain.split("->").count()
        );
        for c in &t.contexts {
            let verdict = if c.diagnostics.is_empty() {
                "clean".to_string()
            } else {
                format!("{} diagnostic(s)", c.diagnostics.len())
            };
            println!(
                "  [{} shards={} nodes={}] {verdict}",
                c.strategy, c.sp_shards, c.sp_nodes
            );
            for d in &c.diagnostics {
                for line in d.to_string().lines() {
                    println!("    {line}");
                }
            }
        }
    }
    println!(
        "plancheck: {} workload(s), {} error(s), {} warning(s)",
        report.targets.len(),
        report.errors,
        report.warnings
    );
    if json {
        match write_json("plancheck", &report) {
            Ok(path) => println!("[json -> {}]", path.display()),
            Err(e) => eprintln!("[json write failed: {e}]"),
        }
    }
    if report.errors > 0 || (deny_warnings && report.warnings > 0) {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_workload_lints_clean() {
        for name in BUILTIN_WORKLOADS {
            let t = lint_workload(name, builtin_plan(name).unwrap(), &[1, 4]);
            for c in &t.contexts {
                assert!(
                    c.diagnostics.is_empty(),
                    "{name} shards={} got {:?}",
                    c.sp_shards,
                    c.diagnostics
                );
            }
        }
    }

    #[test]
    fn unknown_workloads_resolve_to_none() {
        assert!(builtin_plan("nope").is_none());
    }
}
