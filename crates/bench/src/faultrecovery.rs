//! Fault-recovery evidence for the perf trajectory.
//!
//! Unlike the throughput series, this one gates on **correctness
//! evidence**, not speed: it boots a real 2-node loopback TCP deployment,
//! severs node 1's link at an epoch boundary via a seeded [`FaultPlan`],
//! lets the coordinator reassign the lost shards from the last acked
//! checkpoint plus replayed traffic, and records whether the recovered
//! digest is bit-identical to a fault-free in-process run. Recovery
//! timing is reported as context but never gated — wall-clock on a
//! loopback drill is machine noise; the machine-independent facts are
//! "an incident happened", "bytes were replayed", and "the answer did
//! not change".

use std::net::TcpListener;
use std::thread;
use std::time::{Duration, Instant};

use jarvis_core::calibration::Scale;
use jarvis_core::deploy::{BackendKind, Deployment, OnNodeLoss, RunReport, TransportKind};
use jarvis_core::experiment::ScenarioSpec;
use jarvis_core::fault::{FaultKind, FaultPlan, FaultTrigger};
use jarvis_core::node::{run_node, NodeConfig};
use jarvis_core::strategy::StrategyKind;
use serde::{Deserialize, Serialize};

/// Virtual shards on the ring, matching `tests/fault_parity.rs`.
const RING: u32 = 4;
/// Epochs per run; the fault fires at the boundary of [`KILL_EPOCH`].
const EPOCHS: u64 = 8;
/// The severed node acks exactly this many epochs before the cut.
const KILL_EPOCH: u64 = 3;
/// Checkpoint every this many epochs (so recovery replays at most one).
const CKPT_INTERVAL: u64 = 2;

/// Result of one seeded fault-recovery drill. The CI gate checks the
/// boolean/count evidence (`digest_match`, `complete`, `incidents`,
/// `replay_bytes`); the timing fields are context only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultRecoveryResult {
    /// Workload identifier.
    pub pipeline: String,
    /// Epochs per run.
    pub epochs: u64,
    /// Epoch boundary at which node 1's link was severed.
    pub kill_epoch: u64,
    /// Checkpoint cadence in epochs.
    pub checkpoint_interval: u64,
    /// Node-loss incidents the coordinator reported (the drill injects 1).
    pub incidents: usize,
    /// Checkpoint + buffered-traffic bytes re-shipped for recovery.
    pub replay_bytes: u64,
    /// Heartbeat pings sent while awaiting epoch acks.
    pub heartbeats_sent: u64,
    /// Recovered digest is bit-identical to the fault-free in-process run.
    pub digest_match: bool,
    /// Every shard finished at completeness 1.0 after reassignment.
    pub complete: bool,
    /// Wall-clock of the faulted TCP run, seconds (context, not gated).
    pub faulted_secs: f64,
    /// Wall-clock of the fault-free in-process run, seconds (context).
    pub baseline_secs: f64,
}

impl FaultRecoveryResult {
    /// Human-readable failures of the recovery contract — empty when the
    /// drill proved exact recovery. Absolute (not baseline-relative): a
    /// recovery that loses data is wrong on any machine.
    pub fn contract_failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.incidents == 0 {
            out.push("fault_recovery: no incident reported — the drill injected no fault".into());
        }
        if self.replay_bytes == 0 {
            out.push("fault_recovery: zero replay bytes — recovery re-shipped nothing".into());
        }
        if !self.digest_match {
            out.push("fault_recovery: digest diverged from the fault-free run".into());
        }
        if !self.complete {
            out.push("fault_recovery: a shard finished below completeness 1.0".into());
        }
        out
    }
}

/// An ephemeral loopback port that is free right now.
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener);
    addr
}

fn in_process_run(spec: &ScenarioSpec) -> RunReport {
    Deployment::builder()
        .workload(spec.clone())
        .strategy(StrategyKind::AllSp)
        .cpu_budget(1.0)
        .sources(2)
        .sp_shards(RING)
        .sp_nodes(4)
        .backend(BackendKind::Live)
        .collect_results(true)
        .build()
        .expect("valid spec")
        .run(EPOCHS)
        .expect("in-process run")
}

/// Runs the seeded sever-and-reassign drill once and scores the evidence.
pub fn bench_fault_recovery() -> FaultRecoveryResult {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    let addr = free_addr();
    let token = "bench-fault";

    let node_handles: Vec<_> = (0..2)
        .map(|_| {
            let config = NodeConfig::new(&addr, token);
            thread::spawn(move || run_node(&config))
        })
        .collect();

    let start = Instant::now();
    let report = Deployment::builder()
        .workload(spec.clone())
        .strategy(StrategyKind::AllSp)
        .cpu_budget(1.0)
        .sources(2)
        .sp_shards(RING)
        .sp_nodes(2)
        .backend(BackendKind::Live)
        .transport(TransportKind::Tcp)
        .listen_addr(&addr)
        .auth_token(token)
        .node_timeout(Duration::from_secs(30))
        .liveness_timeout(Duration::from_secs(10))
        .checkpoint_interval(CKPT_INTERVAL)
        .fault_plan(FaultPlan::single(
            0x5eed_cafe,
            1,
            FaultTrigger::EpochEnd(KILL_EPOCH),
            FaultKind::Sever,
        ))
        .on_node_loss(OnNodeLoss::Reassign)
        .collect_results(true)
        .build()
        .expect("valid TCP deployment")
        .run(EPOCHS)
        .expect("run survives the node loss");
    let faulted_secs = start.elapsed().as_secs_f64();
    for handle in node_handles {
        // The severed node exits with an error by design; joining is what
        // matters so no executor thread outlives the measurement.
        let _ = handle.join().expect("node thread");
    }

    let start = Instant::now();
    let baseline = in_process_run(&spec);
    let baseline_secs = start.elapsed().as_secs_f64();

    FaultRecoveryResult {
        pipeline: format!(
            "S2SProbe 2-node SP ({RING}-shard ring), sever at epoch {KILL_EPOCH} -> reassign"
        ),
        epochs: EPOCHS,
        kill_epoch: KILL_EPOCH,
        checkpoint_interval: CKPT_INTERVAL,
        incidents: report.incidents.len(),
        replay_bytes: report.replay_bytes,
        heartbeats_sent: report.heartbeats_sent,
        digest_match: report.exactness.is_some() && report.exactness == baseline.exactness,
        complete: report
            .shard_stats
            .iter()
            .all(|s| (s.completeness - 1.0).abs() < f64::EPSILON),
        faulted_secs,
        baseline_secs,
    }
}
