//! `repro` — regenerates every table and figure of the Jarvis paper.
//!
//! ```text
//! repro <experiment> [--json]
//! repro all [--json]
//! repro plancheck [workload..] [--all] [--json] [--deny-warnings]
//! ```
//!
//! Experiments: fig3, fig7a, fig7b, fig7c, fig8a, fig8b, fig8c, fig9,
//! fig10a, fig10b, fig10c, fig11a, fig11b, fig11c, latency, opcount,
//! overhead, bench.
//!
//! `bench` is not a paper figure: it measures the str-keyed vs dict-keyed
//! group-aggregate kernels, the sharded SP runtime's 1/2/4-shard scaling,
//! the multi-node SP tier's 1/2/4-node scaling, the seeded fault-recovery
//! drill, the persistent-dictionary cross-epoch series (group-by
//! throughput vs per-epoch rebuild plus delta vs full-page wire bytes),
//! and the async runtime's source-scaling fan-in series
//! (16/256/2048/10240 source tasks at a fixed row budget),
//! and (with `--json`) writes
//! `BENCH_throughput.json`, the perf-trajectory artifact CI uploads. With
//! `--check` it additionally fails (exit 1) when a measured speedup
//! regresses more than 20% below the committed baseline, or when the
//! fault-recovery drill fails to prove exact recovery.

use jarvis_bench::output::{f2, render_ascii_chart, render_table, write_json};
use jarvis_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("plancheck") {
        std::process::exit(jarvis_bench::plancheck_cli::run_cli(&args[1..]));
    }
    let json = args.iter().any(|a| a == "--json");
    let check = args.iter().any(|a| a == "--check");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(std::string::String::as_str)
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };

    let all = [
        "fig3", "fig7a", "fig7b", "fig7c", "fig8a", "fig8b", "fig8c", "fig9", "fig10a", "fig10b",
        "fig10c", "fig11a", "fig11b", "fig11c", "latency", "opcount", "overhead",
    ];
    let selected: Vec<&str> = if which.contains(&"all") {
        all.to_vec()
    } else {
        which
    };

    for name in selected {
        let started = std::time::Instant::now();
        println!("==================================================================");
        match name {
            "fig3" => run_fig3(json),
            "fig7a" => run_fig7(fig7a(), "Fig 7(a) S2SProbe", json),
            "fig7b" => run_fig7(fig7b(), "Fig 7(b) T2TProbe (table 500)", json),
            "fig7c" => run_fig7(fig7c(), "Fig 7(c) LogAnalytics", json),
            "fig8a" => run_fig8(fig8a(), "Fig 8(a) S2SProbe 10%->90%->60%", json),
            "fig8b" => run_fig8(fig8b(), "Fig 8(b) T2TProbe 10%->100%, table x10", json),
            "fig8c" => run_fig8(fig8c(), "Fig 8(c) LogAnalytics 5%->30%->15%", json),
            "fig9" => run_fig9(json),
            "fig10a" => run_fig10(fig10a(), "Fig 10(a) 10x, 55% CPU", json),
            "fig10b" => run_fig10(fig10b(), "Fig 10(b) 5x, 30% CPU", json),
            "fig10c" => run_fig10(fig10c(), "Fig 10(c) 1x, 5% CPU", json),
            "fig11a" => run_fig11(fig11a(), "Fig 11(a) 10x", json),
            "fig11b" => run_fig11(fig11b(), "Fig 11(b) 5x", json),
            "fig11c" => run_fig11(fig11c(), "Fig 11(c) 1x", json),
            "latency" => run_latency(json),
            "opcount" => run_opcount(json),
            "overhead" => run_overhead(json),
            "bench" => run_bench(json, check),
            other => {
                eprintln!("unknown experiment: {other}");
                eprintln!("known: {}, bench", all.join(", "));
                std::process::exit(2);
            }
        }
        println!("[{name} took {:.1?}]", started.elapsed());
    }
}

fn run_fig3(json: bool) {
    let r = fig3();
    println!("Fig 3: operator-level vs data-level partitioning @ 80% CPU (S2SProbe 10x)");
    println!("  input rate                : {} Mbps", f2(r.input_mbps));
    println!(
        "  operator-level network    : {} Mbps (paper: 22.5)",
        f2(r.operator_level_mbps)
    );
    println!(
        "  data-level network        : {} Mbps (paper:  9.4)",
        f2(r.data_level_mbps)
    );
    println!(
        "    of which state/results  : {} Mbps (paper:  5.6)",
        f2(r.data_level_state_mbps)
    );
    println!(
        "  reduction                 : {}x (paper: 2.4x)",
        f2(r.reduction_factor)
    );
    println!("  Jarvis load factors       : {:?}", r.jarvis_load_factors);
    maybe_json(json, "fig3", &r);
}

fn run_fig7(r: Fig7Result, title: &str, json: bool) {
    println!(
        "{title}: throughput (Mbps) over CPU budgets; input = {} Mbps",
        f2(r.input_mbps)
    );
    let mut headers = vec!["CPU"];
    for s in &r.strategies {
        headers.push(s);
    }
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|(cpu, tputs)| {
            let mut row = vec![format!("{:.0}%", cpu * 100.0)];
            row.extend(tputs.iter().map(|t| f2(*t)));
            row
        })
        .collect();
    print!("{}", render_table(&headers, &rows));
    let xs: Vec<String> = r
        .rows
        .iter()
        .map(|(cpu, _)| format!("{:.0}%", cpu * 100.0))
        .collect();
    let series: Vec<(&str, Vec<f64>)> = r
        .strategies
        .iter()
        .enumerate()
        .map(|(i, s)| (s.as_str(), r.rows.iter().map(|(_, t)| t[i]).collect()))
        .collect();
    print!("{}", render_ascii_chart("CPU", &xs, &series, 48));
    let name = format!("fig7_{}", r.query.to_lowercase());
    maybe_json(json, &name, &r);
}

fn run_fig8(r: Fig8Result, title: &str, json: bool) {
    println!("{title}: per-epoch runtime state");
    println!("  key: S=Stable D=Detect I=Idle P=Profile C=Congested");
    for (variant, series) in r.variants.iter().zip(&r.series) {
        println!("  {variant:<12} {}", compress_series(series));
    }
    for (variant, eps) in r.variants.iter().zip(&r.episodes) {
        let spans: Vec<String> = eps
            .iter()
            .map(|(a, b)| format!("{}->{} ({} epochs)", a, b, b - a))
            .collect();
        println!(
            "  {variant:<12} convergence episodes: {}",
            if spans.is_empty() {
                "none (did not stabilise)".to_string()
            } else {
                spans.join(", ")
            }
        );
    }
    let name = format!("fig8_{}", r.query.to_lowercase());
    maybe_json(json, &name, &r);
}

fn compress_series(series: &[String]) -> String {
    let short = |s: &str| match s {
        "Stable" => 'S',
        "Detect" => 'D',
        "Idle" => 'I',
        "Profile" => 'P',
        "Congested" => 'C',
        _ => '?',
    };
    series.iter().map(|s| short(s)).collect()
}

fn run_fig9(json: bool) {
    let r = fig9();
    println!("Fig 9(a): CDF of RTT-range estimation error (fraction of pairs <= err)");
    let mut headers = vec!["err (ms)".to_string()];
    headers.extend(r.rates.iter().map(|x| format!("rate {x}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = r
        .thresholds_ms
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut row = vec![format!("{t}")];
            row.extend(r.cdf.iter().map(|series| f2(series[i])));
            row
        })
        .collect();
    print!("{}", render_table(&headers_ref, &rows));
    println!(
        "Fig 9(b): average network transfer per source (input = {} Mbps)",
        f2(r.input_mbps)
    );
    for (rate, mbps) in r.rates.iter().zip(&r.sampling_mbps) {
        println!("  sampling rate {rate}: {} Mbps", f2(*mbps));
    }
    println!("  Jarvis (100% CPU): {} Mbps", f2(r.jarvis_100_mbps));
    println!("  Jarvis (20% CPU) : {} Mbps", f2(r.jarvis_20_mbps));
    println!("  missed alerts by rate: {:?}", r.missed_alert_frac);
    maybe_json(json, "fig9", &r);
}

fn run_fig10(r: Fig10Result, title: &str, json: bool) {
    println!("{title}: aggregate throughput (Mbps) vs number of sources");
    let headers = ["sources", "Jarvis", "Best-OP", "Expected"];
    let rows: Vec<Vec<String>> = r
        .sources
        .iter()
        .enumerate()
        .map(|(i, n)| {
            vec![
                n.to_string(),
                f2(r.jarvis_mbps[i]),
                f2(r.best_op_mbps[i]),
                f2(r.expected_mbps[i]),
            ]
        })
        .collect();
    print!("{}", render_table(&headers, &rows));
    let xs: Vec<String> = r.sources.iter().map(u32::to_string).collect();
    let series: Vec<(&str, Vec<f64>)> = vec![
        ("Jarvis", r.jarvis_mbps.clone()),
        ("Best-OP", r.best_op_mbps.clone()),
        ("Expected", r.expected_mbps.clone()),
    ];
    print!("{}", render_ascii_chart("srcs", &xs, &series, 48));
    let name = format!("fig10_{}", r.scale.to_lowercase());
    maybe_json(json, &name, &r);
}

fn run_fig11(r: Fig11Result, title: &str, json: bool) {
    println!("{title}: aggregate throughput (Mbps) vs concurrent queries");
    let headers = ["queries", "1 core", "2 cores"];
    let rows: Vec<Vec<String>> = r
        .queries
        .iter()
        .enumerate()
        .map(|(i, k)| {
            vec![
                k.to_string(),
                f2(r.one_core_mbps[i]),
                f2(r.two_core_mbps[i]),
            ]
        })
        .collect();
    print!("{}", render_table(&headers, &rows));
    let name = format!("fig11_{}", r.scale.to_lowercase());
    maybe_json(json, &name, &r);
}

fn run_latency(json: bool) {
    let r = latency();
    println!("Section VI-E: epoch-processing latency, 5x input, 30% CPU");
    let headers = [
        "sources",
        "Jarvis med (s)",
        "Jarvis max (s)",
        "BestOP med (s)",
        "BestOP max (s)",
    ];
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|(n, jm, jx, bm, bx)| vec![n.to_string(), f2(*jm), f2(*jx), f2(*bm), f2(*bx)])
        .collect();
    print!("{}", render_table(&headers, &rows));
    maybe_json(json, "latency", &r);
}

fn run_opcount(json: bool) {
    let r = opcount(5);
    println!("Section VI-C sim: fine-tuning convergence vs operator count (w/o LP init)");
    let headers = [
        "ops",
        "binary worst",
        "binary mean",
        "linear worst",
        "linear mean",
        "failures",
    ];
    let rows: Vec<Vec<String>> = r
        .binary
        .iter()
        .zip(&r.linear)
        .map(|(b, l)| {
            vec![
                b.ops.to_string(),
                b.worst.to_string(),
                f2(b.mean),
                l.worst.to_string(),
                f2(l.mean),
                (b.failures + l.failures).to_string(),
            ]
        })
        .collect();
    print!("{}", render_table(&headers, &rows));
    maybe_json(json, "opcount", &r);
}

fn run_overhead(json: bool) {
    let r = overhead();
    println!(
        "Section VI-B: Jarvis adaptation overhead = {:.3}% of one core (paper: < 1%)",
        r.overhead_core_frac * 100.0
    );
    maybe_json(json, "overhead", &r);
}

fn run_bench(json: bool, check: bool) {
    // Load the committed baseline before the JSON write below overwrites it.
    let baseline: Option<ThroughputReport> = check
        .then(|| {
            let path = jarvis_bench::output::out_dir().join("BENCH_throughput.json");
            let raw = std::fs::read_to_string(&path)
                .map_err(|e| eprintln!("[no committed baseline at {}: {e}]", path.display()))
                .ok()?;
            serde_json::from_str(&raw)
                .map_err(|e| eprintln!("[unreadable baseline: {e}]"))
                .ok()
        })
        .flatten();

    let report = ThroughputReport {
        group_agg: bench_group_agg(15),
        shard_scaling: bench_shard_scaling(15),
        node_scaling: bench_node_scaling(15),
        net_transport: bench_net_transport(15),
        fault_recovery: Some(bench_fault_recovery()),
        dict_epoch: Some(bench_dict_epoch(15)),
        source_scaling: Some(bench_source_scaling(15)),
    };
    let g = &report.group_agg;
    println!("Group-aggregate kernels: str keys vs dict keys");
    println!("  pipeline : {}", g.pipeline);
    println!("  rows/iter: {}", g.rows);
    println!(
        "  str keys : {:.0} rows/s ({:.0} ns/row)",
        g.str_rows_per_sec, g.str_ns_per_row
    );
    println!(
        "  dict keys: {:.0} rows/s ({:.0} ns/row)",
        g.dict_rows_per_sec, g.dict_ns_per_row
    );
    println!("  speedup  : {:.2}x (target: >= 1.5x)", g.speedup);
    let s = &report.shard_scaling;
    println!("Sharded SP runtime: keyed shard pipelines, critical-path throughput");
    println!("  pipeline : {}", s.pipeline);
    println!("  rows/iter: {}", s.rows);
    for (i, n) in s.shards.iter().enumerate() {
        println!(
            "  {n} shard{} : {:.0} rows/s ({:.2}x)",
            if *n == 1 { " " } else { "s" },
            s.rows_per_sec[i],
            s.speedup[i]
        );
    }
    println!(
        "  speedup  : {:.2}x at {} shards (target: >= 1.5x)",
        s.speedup_at_max(),
        s.shards.last().unwrap_or(&1)
    );
    let nd = &report.node_scaling;
    println!("Multi-node SP tier: consistent-hash dispatch, critical-path throughput");
    println!("  pipeline : {}", nd.pipeline);
    println!("  rows/iter: {}", nd.rows);
    for (i, n) in nd.nodes.iter().enumerate() {
        println!(
            "  {n} node{}  : {:.0} rows/s ({:.2}x)",
            if *n == 1 { " " } else { "s" },
            nd.rows_per_sec[i],
            nd.speedup[i]
        );
    }
    println!(
        "  speedup  : {:.2}x at {} nodes (target: >= 1.5x)",
        nd.speedup_at_max(),
        nd.nodes.last().unwrap_or(&1)
    );
    let t = &report.net_transport;
    println!("Framed-TCP transport: loopback sockets vs in-process channel");
    println!("  pipeline : {}", t.pipeline);
    println!("  channel  : {:.0} frames/s", t.channel_frames_per_sec);
    println!(
        "  tcp      : {:.0} frames/s ({:.0} MB/s)",
        t.tcp_frames_per_sec, t.tcp_mbytes_per_sec
    );
    println!(
        "  relative : {:.2}x of the in-process channel",
        t.relative_throughput
    );
    if let Some(fr) = &report.fault_recovery {
        println!("Fault recovery: seeded sever + reassign over loopback TCP");
        println!("  drill    : {}", fr.pipeline);
        println!(
            "  evidence : {} incident(s), {} replay bytes, {} heartbeats",
            fr.incidents, fr.replay_bytes, fr.heartbeats_sent
        );
        println!(
            "  exactness: digest_match={} complete={} (target: both true)",
            fr.digest_match, fr.complete
        );
        println!(
            "  wallclock: {:.2}s faulted vs {:.2}s fault-free (context only)",
            fr.faulted_secs, fr.baseline_secs
        );
    }
    if let Some(de) = &report.dict_epoch {
        println!("Persistent dictionaries: cross-epoch streams vs per-epoch rebuild");
        println!("  pipeline : {}", de.pipeline);
        println!("  rows/iter: {} over {} epochs", de.rows, de.epochs);
        println!(
            "  rebuild  : {:.0} rows/s (batch-local pages every epoch)",
            de.rebuild_rows_per_sec
        );
        println!(
            "  persist  : {:.0} rows/s (one StreamDict per key stream)",
            de.persistent_rows_per_sec
        );
        println!("  speedup  : {:.2}x (target: >= 1.3x)", de.speedup);
        println!(
            "  wire     : {:.0} B/epoch full pages vs {:.0} B/epoch deltas ({:.2}x smaller)",
            de.full_page_wire_bytes_per_epoch, de.delta_wire_bytes_per_epoch, de.wire_reduction
        );
    }
    if let Some(ss) = &report.source_scaling {
        println!("Async runtime fan-in: task-per-source over bounded MPSC");
        println!("  pipeline : {}", ss.pipeline);
        println!(
            "  rows/iter: {} over {} executor worker(s)",
            ss.rows, ss.rt_workers
        );
        for (i, n) in ss.sources.iter().enumerate() {
            println!(
                "  {n:>5} sources: {:.0} rows/s ({:.2}x)",
                ss.rows_per_sec[i], ss.relative[i]
            );
        }
        println!(
            "  relative : {:.2}x at {} sources (floor: >= {:.2}x of 16-source rate)",
            ss.relative_at_max(),
            ss.sources.last().unwrap_or(&16),
            jarvis_bench::sourcescale::FANIN_FLOOR
        );
    }
    maybe_json(json, "BENCH_throughput", &report);

    if check {
        match baseline {
            Some(baseline) => {
                let regressions = report.regressions_vs(&baseline);
                if regressions.is_empty() {
                    println!("[check] all speedups within tolerance of the committed baseline");
                } else {
                    for r in &regressions {
                        eprintln!("[check] REGRESSION: {r}");
                    }
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("[check] FAILED: no committed baseline to compare against");
                std::process::exit(1);
            }
        }
    }
}

fn maybe_json<T: serde::Serialize>(json: bool, name: &str, value: &T) {
    if json {
        match write_json(name, value) {
            Ok(path) => println!("[json -> {}]", path.display()),
            Err(e) => eprintln!("[json write failed: {e}]"),
        }
    }
}
