//! Row-shim vs batch-path throughput measurement for the perf trajectory.
//!
//! The criterion group `row_vs_batch` gives interactive numbers; this runner
//! produces the machine-readable `BENCH_throughput.json` artifact CI uploads
//! so the repository's performance trajectory is tracked over time. Same
//! workload as the bench: the S2SProbe filter → group → aggregate chain over
//! deterministic Pingmesh epochs.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use streamkit::batch::Batch;
use streamkit::ops::{AggRole, Operator};
use streamkit::physical::{build_pipeline, CostProfile};
use telemetry::pingmesh::{PingmeshConfig, PingmeshGenerator};

use crate::measure::{best_secs, run_chain};

/// The perf-trajectory artifact (`BENCH_throughput.json`): one series per
/// optimized hot path. CI re-measures and fails loudly when a series'
/// speedup regresses more than 20% against the committed numbers (speedup
/// ratios, not absolute rates, so the gate is machine-independent).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Legacy row shim vs vectorized batch path (PR 2).
    pub row_vs_batch: RowBatchResult,
    /// Str-keyed vs dict-keyed group aggregation (PR 3).
    pub group_agg: crate::groupagg::GroupAggResult,
}

/// Allowed relative speedup regression before the CI gate fails.
pub const REGRESSION_TOLERANCE: f64 = 0.20;

impl ThroughputReport {
    /// Compares this (freshly measured) report against committed baseline
    /// numbers. Returns the list of human-readable regressions — empty when
    /// every series is within tolerance.
    pub fn regressions_vs(&self, baseline: &ThroughputReport) -> Vec<String> {
        let mut out = Vec::new();
        let mut check = |name: &str, measured: f64, committed: f64| {
            if measured < committed * (1.0 - REGRESSION_TOLERANCE) {
                out.push(format!(
                    "{name}: measured speedup {measured:.2}x is more than {:.0}% below \
                     the committed {committed:.2}x",
                    REGRESSION_TOLERANCE * 100.0
                ));
            }
        };
        check(
            "row_vs_batch",
            self.row_vs_batch.speedup,
            baseline.row_vs_batch.speedup,
        );
        check(
            "group_agg",
            self.group_agg.speedup,
            baseline.group_agg.speedup,
        );
        out
    }
}

/// Result of one row-vs-batch throughput measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RowBatchResult {
    /// Workload identifier.
    pub pipeline: String,
    /// Rows pushed through each path per iteration.
    pub rows: u64,
    /// Measured iterations per path.
    pub iters: u32,
    /// Row-shim throughput, records/second (best over iterations).
    pub row_records_per_sec: f64,
    /// Batch-path throughput, records/second (best over iterations).
    pub batch_records_per_sec: f64,
    /// batch / row speedup factor.
    pub speedup: f64,
}

/// Measures the S2SProbe chain through the legacy row shim and the
/// vectorized batch path. `iters` timed iterations per path (3 is enough
/// for a CI smoke run; the criterion bench provides finer numbers).
pub fn bench_throughput(iters: u32) -> RowBatchResult {
    let plan = telemetry::queries::s2s_probe();
    let costs = CostProfile::default();
    let mut gen = PingmeshGenerator::new(PingmeshConfig::default());
    let batches: Vec<Batch> = (0..4)
        .map(|e| gen.generate_epoch_batch(e * 1_000_000, 1.0))
        .collect();
    let rows: u64 = batches.iter().map(|b| b.len() as u64).sum();

    let time = |ops: &mut Vec<Box<dyn Operator>>| -> f64 {
        // One warm-up, then timed iterations.
        run_chain(ops, &batches);
        let samples: Vec<f64> = (0..iters.max(1))
            .map(|_| {
                let start = Instant::now();
                let emitted = run_chain(ops, &batches);
                let dt = start.elapsed().as_secs_f64();
                assert!(emitted > 0, "the chain must emit results");
                dt
            })
            .collect();
        best_secs(samples)
    };

    #[allow(deprecated)]
    let mut row_ops =
        streamkit::physical::build_row_pipeline(&plan, &costs, AggRole::Final).expect("valid plan");
    let mut batch_ops = build_pipeline(&plan, &costs, AggRole::Final).expect("valid plan");
    let row_secs = time(&mut row_ops);
    let batch_secs = time(&mut batch_ops);

    let row_rps = rows as f64 / row_secs;
    let batch_rps = rows as f64 / batch_secs;
    RowBatchResult {
        pipeline: "S2SProbe filter->group->aggregate".into(),
        rows,
        iters: iters.max(1),
        row_records_per_sec: row_rps,
        batch_records_per_sec: batch_rps,
        speedup: batch_rps / row_rps,
    }
}
