//! Runners for every table and figure in the paper's evaluation.

use serde::Serialize;

use jarvis_core::calibration::{self, Scale, MBPS};
use jarvis_core::convergence_sim::{sweep_operator_counts, OpCountResult};
use jarvis_core::deploy::{BackendKind, Deployment, RunReport};
use jarvis_core::engine::block::NetworkModel;
use jarvis_core::experiment::{
    convergence_run, scale_sweep, throughput_sweep, ResourceEvent, ScenarioSpec,
};
use jarvis_core::multiquery::multi_query_sweep;
use jarvis_core::runtime::TraceState;
use jarvis_core::stepwise::StepWiseConfig;
use jarvis_core::strategy::StrategyKind;
use synopsis::wsp::{WspConfig, WspSampler};
use telemetry::anomaly::AnomalySchedule;
use telemetry::pingmesh::{col, pingmesh_schema, PingmeshConfig, PingmeshGenerator};

/// Measurement epochs for throughput points (past the 20-epoch warm-up).
pub const MEASURE_EPOCHS: u64 = 60;

/// CPU budgets swept in Fig. 7 (fractions of one core).
pub const FIG7_BUDGETS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

// ---------------------------------------------------------------- Fig. 3 --

/// Fig. 3: operator-level vs data-level partitioning on one source at 80 %
/// CPU.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Result {
    /// Input rate, Mbps.
    pub input_mbps: f64,
    /// Operator-level (Best-OP) outbound network, Mbps.
    pub operator_level_mbps: f64,
    /// Data-level (Jarvis) outbound network, Mbps.
    pub data_level_mbps: f64,
    /// Data-level state/result stream share, Mbps.
    pub data_level_state_mbps: f64,
    /// Network reduction factor (paper: 2.4×).
    pub reduction_factor: f64,
    /// Jarvis' final load factors.
    pub jarvis_load_factors: Vec<f64>,
}

/// Runs a single-source deployment on the emulated backend.
fn emulated(spec: &ScenarioSpec, strategy: StrategyKind, cpu: f64, epochs: u64) -> RunReport {
    Deployment::builder()
        .workload(spec.clone())
        .strategy(strategy)
        .cpu_budget(cpu)
        .backend(BackendKind::Emulated)
        .build()
        .expect("paper scenarios build valid deployments")
        .run(epochs)
        .expect("emulated runs are infallible")
}

/// Runs Fig. 3.
pub fn fig3() -> Fig3Result {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
    let op_report = emulated(&spec, StrategyKind::BestOp, 0.8, MEASURE_EPOCHS);
    let dl_report = emulated(&spec, StrategyKind::Jarvis, 0.8, MEASURE_EPOCHS);
    Fig3Result {
        input_mbps: spec.input_mbps(),
        operator_level_mbps: op_report.network_mbps,
        data_level_mbps: dl_report.network_mbps,
        data_level_state_mbps: dl_report.state_mbps,
        reduction_factor: op_report.network_mbps / dl_report.network_mbps.max(1e-9),
        jarvis_load_factors: dl_report.load_factors,
    }
}

// ---------------------------------------------------------------- Fig. 7 --

/// One Fig. 7 panel.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Result {
    /// Query name.
    pub query: String,
    /// Input rate, Mbps.
    pub input_mbps: f64,
    /// Strategy labels, column order.
    pub strategies: Vec<String>,
    /// Rows: (cpu budget, throughput per strategy).
    pub rows: Vec<(f64, Vec<f64>)>,
}

fn fig7(spec: ScenarioSpec) -> Fig7Result {
    let strategies = StrategyKind::fig7_lineup();
    let rows = throughput_sweep(&spec, &strategies, &FIG7_BUDGETS, MEASURE_EPOCHS)
        .into_iter()
        .map(|row| {
            (
                row.cpu_budget,
                row.results.iter().map(|(_, t)| *t).collect::<Vec<f64>>(),
            )
        })
        .collect();
    Fig7Result {
        query: spec.name().to_string(),
        input_mbps: spec.input_mbps(),
        strategies: strategies.iter().map(|s| s.label().to_string()).collect(),
        rows,
    }
}

/// Fig. 7a: S2SProbe throughput vs CPU budget.
pub fn fig7a() -> Fig7Result {
    fig7(ScenarioSpec::pingmesh_s2s(Scale::X10))
}

/// Fig. 7b: T2TProbe (table 500) throughput vs CPU budget.
pub fn fig7b() -> Fig7Result {
    fig7(ScenarioSpec::pingmesh_t2t(Scale::X10, 500))
}

/// Fig. 7c: LogAnalytics throughput vs CPU budget.
pub fn fig7c() -> Fig7Result {
    fig7(ScenarioSpec::log_analytics(Scale::X10))
}

// ---------------------------------------------------------------- Fig. 8 --

/// One Fig. 8 panel: per-epoch trace per adaptation variant.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Result {
    /// Query name.
    pub query: String,
    /// Variant labels.
    pub variants: Vec<String>,
    /// Per-variant series of per-epoch trace categories.
    pub series: Vec<Vec<String>>,
    /// Per-variant convergence episodes (trigger → stable epochs).
    pub episodes: Vec<Vec<(u64, u64)>>,
}

fn trace_label(t: TraceState) -> &'static str {
    match t {
        TraceState::Stable => "Stable",
        TraceState::Detect => "Detect",
        TraceState::Idle => "Idle",
        TraceState::Profile => "Profile",
        TraceState::Congested => "Congested",
    }
}

fn fig8(
    spec: ScenarioSpec,
    initial_cpu: f64,
    events: &[ResourceEvent],
    total_epochs: u64,
) -> Fig8Result {
    let variants = [
        StrategyKind::JarvisLpOnly,
        StrategyKind::JarvisNoLpInit,
        StrategyKind::Jarvis,
    ];
    let mut series = Vec::new();
    let mut episodes = Vec::new();
    for &v in &variants {
        let report = convergence_run(&spec, v, initial_cpu, events, total_epochs);
        series.push(
            report
                .trace
                .iter()
                .map(|t| trace_label(t.trace).to_string())
                .collect(),
        );
        episodes.push(report.episodes.clone());
    }
    Fig8Result {
        query: spec.name().to_string(),
        variants: variants.iter().map(|v| v.label().to_string()).collect(),
        series,
        episodes,
    }
}

/// Fig. 8a: S2SProbe, CPU 10 % → 90 % (epoch 3) → 60 % (epoch 18).
pub fn fig8a() -> Fig8Result {
    fig8(
        ScenarioSpec::pingmesh_s2s(Scale::X10),
        0.10,
        &[
            ResourceEvent {
                epoch: 3,
                cpu_budget: Some(0.9),
                table_size: None,
            },
            ResourceEvent {
                epoch: 18,
                cpu_budget: Some(0.6),
                table_size: None,
            },
        ],
        32,
    )
}

/// Fig. 8b: T2TProbe, CPU 10 % → 100 % (epoch 3), table 50 → 500 (epoch 18).
/// The window is longer than Fig. 8a's because the six-operator chain makes
/// the model-agnostic variant's cold-start climb much slower (the point of
/// the §VI-C operator-count analysis).
pub fn fig8b() -> Fig8Result {
    fig8(
        ScenarioSpec::pingmesh_t2t(Scale::X10, 50),
        0.10,
        &[
            ResourceEvent {
                epoch: 3,
                cpu_budget: Some(1.0),
                table_size: None,
            },
            ResourceEvent {
                epoch: 18,
                cpu_budget: None,
                table_size: Some(500),
            },
        ],
        48,
    )
}

/// Fig. 8c: LogAnalytics, CPU 5 % → 30 % (epoch 3) → 15 % (epoch 16).
pub fn fig8c() -> Fig8Result {
    fig8(
        ScenarioSpec::log_analytics(Scale::X10),
        0.05,
        &[
            ResourceEvent {
                epoch: 3,
                cpu_budget: Some(0.30),
                table_size: None,
            },
            ResourceEvent {
                epoch: 16,
                cpu_budget: Some(0.15),
                table_size: None,
            },
        ],
        28,
    )
}

// ---------------------------------------------------------------- Fig. 9 --

/// Fig. 9: WSP sampling accuracy and network cost vs Jarvis.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Result {
    /// Sampling rates evaluated.
    pub rates: Vec<f64>,
    /// (a) per-rate CDF series over error thresholds (ms): `cdf[rate][i]` is
    /// the fraction of pairs with error ≤ `thresholds_ms[i]`.
    pub thresholds_ms: Vec<f64>,
    /// CDF values per rate.
    pub cdf: Vec<Vec<f64>>,
    /// Per-rate fraction of alerts missed.
    pub missed_alert_frac: Vec<f64>,
    /// (b) per-rate average network transfer, Mbps per source.
    pub sampling_mbps: Vec<f64>,
    /// Input data rate, Mbps.
    pub input_mbps: f64,
    /// Jarvis network rate at 100 % CPU, Mbps.
    pub jarvis_100_mbps: f64,
    /// Jarvis network rate at 20 % CPU, Mbps.
    pub jarvis_20_mbps: f64,
}

/// Runs Fig. 9 (1× scale, as in §VI-D's accuracy study).
pub fn fig9() -> Fig9Result {
    let rates = vec![0.2, 0.4, 0.6, 0.8];
    let thresholds_ms = vec![0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 10.0];
    // Ten 10-second windows of Pingmesh with sparse latency anomalies.
    let cfg = PingmeshConfig {
        scale: 1.0,
        anomalies: AnomalySchedule::periodic(30.0, 50.0, 0.02, 30.0, 100.0),
        ..Default::default()
    };
    let schema = pingmesh_schema();
    let input_mbps = cfg.bits_per_sec() / MBPS;

    let mut cdf = Vec::new();
    let mut missed = Vec::new();
    let mut sampling_mbps = Vec::new();
    for &rate in &rates {
        let mut gen = PingmeshGenerator::new(cfg.clone());
        let mut sampler = WspSampler::new(WspConfig {
            rate,
            ..Default::default()
        });
        let mut errors = synopsis::error_cdf::Cdf::new();
        let mut true_alerts = 0usize;
        let mut missed_alerts = 0usize;
        let mut bytes = 0usize;
        let mut secs = 0.0;
        for w in 0..10 {
            let mut records = Vec::new();
            for e in 0..10 {
                records.extend(gen.generate_epoch((w * 10 + e) * 1_000_000, 1.0));
            }
            let report =
                sampler.evaluate_window(&records, &schema, (col::SRC_IP, col::DST_IP), col::RTT);
            for &err in &report.range_errors_us {
                errors.push(err / 1000.0); // → ms
            }
            true_alerts += report.true_alerts;
            missed_alerts += report.missed_alerts;
            bytes += report.sampled_bytes;
            secs += 10.0;
        }
        cdf.push(
            thresholds_ms
                .iter()
                .map(|&t| errors.fraction_at_most(t))
                .collect(),
        );
        missed.push(if true_alerts > 0 {
            missed_alerts as f64 / true_alerts as f64
        } else {
            0.0
        });
        sampling_mbps.push(bytes as f64 * 8.0 / secs / MBPS);
    }

    // Jarvis network rates at 100 % and 20 % CPU. The budgets only *bind* at
    // the 10×-scaled rate (at 1× the whole query needs < 10 % of a core), so
    // run at 10× and normalise back to the 1× axis — preserving the paper's
    // reduction band of 11.4–90 % of the input rate.
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
    let jarvis_100_mbps =
        emulated(&spec, StrategyKind::Jarvis, 1.0, MEASURE_EPOCHS).network_mbps / 10.0;
    let jarvis_20_mbps =
        emulated(&spec, StrategyKind::Jarvis, 0.2, MEASURE_EPOCHS).network_mbps / 10.0;

    Fig9Result {
        rates,
        thresholds_ms,
        cdf,
        missed_alert_frac: missed,
        sampling_mbps,
        input_mbps,
        jarvis_100_mbps,
        jarvis_20_mbps,
    }
}

// --------------------------------------------------------------- Fig. 10 --

/// One Fig. 10 panel.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Result {
    /// Input scale label.
    pub scale: String,
    /// Per-source CPU budget.
    pub cpu_budget: f64,
    /// Source counts.
    pub sources: Vec<u32>,
    /// Jarvis aggregate throughput per count.
    pub jarvis_mbps: Vec<f64>,
    /// Best-OP aggregate throughput per count.
    pub best_op_mbps: Vec<f64>,
    /// Expected (= aggregate input) rate per count.
    pub expected_mbps: Vec<f64>,
    /// Jarvis median/max latency at each count (§VI-E), seconds.
    pub jarvis_latency: Vec<(Option<f64>, Option<f64>)>,
    /// Best-OP median/max latency, seconds.
    pub best_op_latency: Vec<(Option<f64>, Option<f64>)>,
}

fn fig10(scale: Scale, cpu: f64, counts: &[u32], epochs: u64) -> Fig10Result {
    let spec = ScenarioSpec::pingmesh_s2s(scale);
    let jarvis = scale_sweep(&spec, StrategyKind::Jarvis, cpu, counts, epochs);
    let best = scale_sweep(&spec, StrategyKind::BestOp, cpu, counts, epochs);
    Fig10Result {
        scale: format!("{scale:?}"),
        cpu_budget: cpu,
        sources: counts.to_vec(),
        jarvis_mbps: jarvis.iter().map(|p| p.throughput_mbps).collect(),
        best_op_mbps: best.iter().map(|p| p.throughput_mbps).collect(),
        expected_mbps: jarvis.iter().map(|p| p.expected_mbps).collect(),
        jarvis_latency: jarvis
            .iter()
            .map(|p| (p.latency_median_s, p.latency_max_s))
            .collect(),
        best_op_latency: best
            .iter()
            .map(|p| (p.latency_median_s, p.latency_max_s))
            .collect(),
    }
}

/// Fig. 10a: 10× input, 55 % CPU, up to 40 sources. (Points are thinned
/// relative to the paper's x-axis; the knees are bracketed.)
pub fn fig10a() -> Fig10Result {
    fig10(Scale::X10, 0.55, &[1, 16, 24, 32, 40], 26)
}

/// Fig. 10b: 5× input, 30 % CPU, up to 100 sources.
pub fn fig10b() -> Fig10Result {
    fig10(Scale::X5, 0.30, &[1, 40, 56, 70, 100], 26)
}

/// Fig. 10c: 1× input, 5 % CPU, up to 250 sources.
pub fn fig10c() -> Fig10Result {
    fig10(Scale::X1, 0.05, &[1, 120, 180, 250], 26)
}

/// §VI-E latency table: Jarvis vs Best-OP at 5×, 40 and 60 sources.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyResult {
    /// Rows: (sources, jarvis median, jarvis max, bestop median, bestop max).
    pub rows: Vec<(u32, f64, f64, f64, f64)>,
}

/// Runs the §VI-E latency comparison.
pub fn latency() -> LatencyResult {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X5);
    let mut rows = Vec::new();
    for &n in &[40u32, 60] {
        let j = scale_sweep(&spec, StrategyKind::Jarvis, 0.30, &[n], 26);
        let b = scale_sweep(&spec, StrategyKind::BestOp, 0.30, &[n], 26);
        rows.push((
            n,
            j[0].latency_median_s.unwrap_or(f64::NAN),
            j[0].latency_max_s.unwrap_or(f64::NAN),
            b[0].latency_median_s.unwrap_or(f64::NAN),
            b[0].latency_max_s.unwrap_or(f64::NAN),
        ));
    }
    LatencyResult { rows }
}

// --------------------------------------------------------------- Fig. 11 --

/// One Fig. 11 panel.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Result {
    /// Input scale label.
    pub scale: String,
    /// Query counts.
    pub queries: Vec<u32>,
    /// Aggregate throughput, 1-core node.
    pub one_core_mbps: Vec<f64>,
    /// Aggregate throughput, 2-core node.
    pub two_core_mbps: Vec<f64>,
}

fn fig11(scale: Scale, counts: &[u32], epochs: u64) -> Fig11Result {
    let spec = ScenarioSpec::pingmesh_s2s(scale);
    let one = multi_query_sweep(&spec, 1.0, counts, epochs);
    let two = multi_query_sweep(&spec, 2.0, counts, epochs);
    Fig11Result {
        scale: format!("{scale:?}"),
        queries: counts.to_vec(),
        one_core_mbps: one.iter().map(|p| p.throughput_mbps).collect(),
        two_core_mbps: two.iter().map(|p| p.throughput_mbps).collect(),
    }
}

/// Fig. 11a: 10× input, 1–5 queries.
pub fn fig11a() -> Fig11Result {
    fig11(Scale::X10, &[1, 2, 3, 4, 5], 30)
}

/// Fig. 11b: 5× input, 1–8 queries.
pub fn fig11b() -> Fig11Result {
    fig11(Scale::X5, &[1, 2, 4, 6, 8], 30)
}

/// Fig. 11c: 1× input, up to 25 queries.
pub fn fig11c() -> Fig11Result {
    fig11(Scale::X1, &[1, 5, 10, 15, 20, 25], 30)
}

// ----------------------------------------------------- §VI-C sim + misc --

/// §VI-C: worst-case convergence vs operator count, binary vs linear search.
#[derive(Debug, Clone, Serialize)]
pub struct OpCountReport {
    /// Binary-search (paper) results.
    pub binary: Vec<OpCountSummary>,
    /// Linear-stepping ablation results.
    pub linear: Vec<OpCountSummary>,
}

/// One operator-count row.
#[derive(Debug, Clone, Serialize)]
pub struct OpCountSummary {
    /// Operator count.
    pub ops: usize,
    /// Worst-case epochs.
    pub worst: u32,
    /// Mean epochs.
    pub mean: f64,
    /// Non-converging configs.
    pub failures: u32,
}

impl From<OpCountResult> for OpCountSummary {
    fn from(r: OpCountResult) -> Self {
        OpCountSummary {
            ops: r.ops,
            worst: r.worst_epochs,
            mean: r.mean_epochs,
            failures: r.failures,
        }
    }
}

/// Runs the §VI-C operator-count sweep, including the binary-vs-linear
/// search ablation (DESIGN.md §6).
pub fn opcount(max_ops: usize) -> OpCountReport {
    let binary = sweep_operator_counts(max_ops, StepWiseConfig::without_lp_init())
        .into_iter()
        .map(Into::into)
        .collect();
    let linear_cfg = StepWiseConfig {
        search: jarvis_core::stepwise::SearchRule::Linear { step: 0.1 },
        ..StepWiseConfig::without_lp_init()
    };
    let linear = sweep_operator_counts(max_ops, linear_cfg)
        .into_iter()
        .map(Into::into)
        .collect();
    OpCountReport { binary, linear }
}

/// §VI-B: Jarvis adaptation overhead.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadResult {
    /// Adaptation compute as a fraction of one core.
    pub overhead_core_frac: f64,
}

/// Runs the overhead measurement (S2SProbe, 60 % CPU, with adaptation).
pub fn overhead() -> OverheadResult {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
    let report = emulated(&spec, StrategyKind::Jarvis, 0.6, MEASURE_EPOCHS);
    OverheadResult {
        overhead_core_frac: report.overhead_core_frac,
    }
}

/// Smoke-level sanity: a Jarvis run under the Fig. 7 setting must beat the
/// paper's headline factors directionally. Used by integration tests.
pub fn network_model_for_fig7() -> NetworkModel {
    NetworkModel::PerSource {
        bps: calibration::per_query_per_node_bps(),
    }
}
