//! Framed-TCP transport throughput for the perf trajectory.
//!
//! Measures the PR-6 socket transport end to end on loopback — a real
//! `TcpStream` pair, the production [`Link`] writer thread on the send
//! side, and a [`FrameReader`] decode loop on the receive side — against
//! the in-process baseline it replaced: the same pre-encoded frames pushed
//! through a bounded channel to a consumer thread that decodes them. Both
//! sides move identical `FrameKind::Shard` frames, so the delta is exactly
//! what the sockets add (syscalls, copies, kernel loopback). The CI-gated
//! number is the *relative* throughput (TCP ÷ channel) — a ratio, so the
//! gate is machine-independent like every other trajectory series.

use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Instant;

use bytes::Bytes;
use jarvis_core::engine::transport::{decode_frame, encode_frame, FrameKind, FrameReader, Link};
use serde::{Deserialize, Serialize};

use crate::measure::best_secs;

/// Body size of each benchmark frame — the ballpark of an encoded
/// `NetPayload::ShardBatch` for one epoch's shard slice.
pub const FRAME_BODY_BYTES: usize = 16 * 1024;

/// Frames moved per iteration.
pub const FRAMES_PER_ITER: usize = 512;

/// Result of one transport measurement: loopback TCP vs in-process
/// channel on identical framed payloads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetTransportResult {
    /// Workload identifier.
    pub pipeline: String,
    /// Frames moved per iteration.
    pub frames: u64,
    /// Total framed bytes per iteration (headers included).
    pub frame_bytes: u64,
    /// Measured iterations per transport.
    pub iters: u32,
    /// In-process bounded-channel throughput, frames/second.
    pub channel_frames_per_sec: f64,
    /// Loopback framed-TCP throughput, frames/second.
    pub tcp_frames_per_sec: f64,
    /// Loopback framed-TCP throughput, megabytes/second.
    pub tcp_mbytes_per_sec: f64,
    /// TCP ÷ channel throughput (the CI-gated ratio).
    pub relative_throughput: f64,
}

/// The benchmark frames: `FRAMES_PER_ITER` Shard frames with deterministic
/// non-constant bodies (so neither side wins on trivially compressible
/// memory traffic).
pub fn transport_frames() -> Vec<Bytes> {
    (0..FRAMES_PER_ITER)
        .map(|i| {
            let body: Vec<u8> = (0..FRAME_BODY_BYTES)
                .map(|j| ((i * 31 + j * 7) & 0xff) as u8)
                .collect();
            encode_frame(FrameKind::Shard, &body)
        })
        .collect()
}

/// One in-process iteration: frames through a bounded channel to a
/// decoding consumer thread. Returns wall-clock seconds until every frame
/// is decoded.
pub fn run_channel_iter(frames: &[Bytes]) -> f64 {
    let (tx, rx) = std::sync::mpsc::sync_channel::<Bytes>(256);
    let n = frames.len();
    let start = Instant::now();
    let consumer = thread::spawn(move || {
        for _ in 0..n {
            let frame = rx.recv().expect("producer alive");
            let (kind, body, _) = decode_frame(&frame).expect("valid frame");
            assert_eq!(kind, FrameKind::Shard);
            std::hint::black_box(body.len());
        }
    });
    for f in frames {
        tx.send(f.clone()).expect("consumer alive");
    }
    consumer.join().expect("consumer thread");
    start.elapsed().as_secs_f64()
}

/// One loopback-TCP iteration: frames through a real socket pair — the
/// production [`Link`] writer thread sending, a [`FrameReader`] decoding
/// on the accept side. Returns wall-clock seconds until every frame is
/// decoded. Connection setup is excluded; delivery (socket drain) is not.
pub fn run_tcp_iter(frames: &[Bytes]) -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("local addr");
    let n = frames.len();
    let consumer = thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        stream.set_nodelay(true).ok();
        let mut reader = FrameReader::new(stream);
        for _ in 0..n {
            let (kind, body) = reader.read_frame().expect("valid frame");
            assert_eq!(kind, FrameKind::Shard);
            std::hint::black_box(body.len());
        }
    });
    let stream = TcpStream::connect(addr).expect("loopback connect");
    stream.set_nodelay(true).ok();
    let mut link = Link::spawn(stream);
    let start = Instant::now();
    for f in frames {
        link.send_raw(f.clone());
    }
    consumer.join().expect("consumer thread");
    let secs = start.elapsed().as_secs_f64();
    assert!(!link.is_broken(), "the link must survive the iteration");
    link.close();
    secs
}

/// Measures the transport series. `iters` timed iterations per transport
/// (best-of, like every trajectory series).
pub fn bench_net_transport(iters: u32) -> NetTransportResult {
    let frames = transport_frames();
    let n_frames = frames.len() as u64;
    let frame_bytes: u64 = frames.iter().map(|f| f.len() as u64).sum();

    run_channel_iter(&frames); // warm-up
    let channel_secs = best_secs(
        (0..iters.max(1))
            .map(|_| run_channel_iter(&frames))
            .collect(),
    );
    run_tcp_iter(&frames); // warm-up
    let tcp_secs = best_secs((0..iters.max(1)).map(|_| run_tcp_iter(&frames)).collect());

    let channel_frames_per_sec = n_frames as f64 / channel_secs;
    let tcp_frames_per_sec = n_frames as f64 / tcp_secs;
    NetTransportResult {
        pipeline: format!(
            "{FRAMES_PER_ITER} x {FRAME_BODY_BYTES}B Shard frames, loopback framed TCP vs \
             in-process channel"
        ),
        frames: n_frames,
        frame_bytes,
        iters: iters.max(1),
        channel_frames_per_sec,
        tcp_frames_per_sec,
        tcp_mbytes_per_sec: frame_bytes as f64 / tcp_secs / 1e6,
        relative_throughput: tcp_frames_per_sec / channel_frames_per_sec,
    }
}
