//! `jarvis-bench` — the figure/table reproduction harness.
//!
//! One runner per table/figure of the paper's evaluation (§VI). Each runner
//! returns a serialisable result that the `repro` binary prints as the same
//! rows/series the paper plots, and optionally writes as JSON for
//! EXPERIMENTS.md.

pub mod dictepoch;
pub mod faultrecovery;
pub mod figures;
pub mod groupagg;
pub mod measure;
pub mod nettransport;
pub mod nodescale;
pub mod output;
pub mod plancheck_cli;
pub mod shardscale;
pub mod sourcescale;

pub use dictepoch::{bench_dict_epoch, DictEpochResult};
pub use faultrecovery::{bench_fault_recovery, FaultRecoveryResult};
pub use figures::*;
pub use groupagg::{bench_group_agg, GroupAggResult};
pub use nettransport::{bench_net_transport, NetTransportResult};
pub use nodescale::{bench_node_scaling, NodeScalingResult};
pub use shardscale::{bench_shard_scaling, ShardScalingResult, ThroughputReport};
pub use sourcescale::{bench_source_scaling, SourceScalingResult};
