//! Persistent cross-epoch dictionaries vs per-epoch rebuild for the perf
//! trajectory.
//!
//! Two arms, one workload (the LogAnalytics-style structured telemetry
//! stream):
//!
//! - **Throughput** — the windowed group-by (tenant × stat name keys,
//!   Sum/Avg/Max) over epochs whose dictionary columns either share one
//!   persistent `StreamDict` per key stream (codes stable across epochs,
//!   so the operator's fragment and dense-slot caches carry over) or are
//!   rebuilt batch-locally every epoch (id-0 pages: fragments re-encoded
//!   and keys re-hashed per batch — the pre-PR-9 regime, reproduced via
//!   `LogConfig::persistent_dicts = false`).
//! - **Wire** — the multi-node shape: each epoch's batch is partitioned
//!   over the shard ring and every sub-batch crosses a node link as a
//!   `NetPayload::ShardBatch`. Persistent streams ship a full dictionary
//!   page once per link and near-empty deltas after; the baseline
//!   re-ships the full page in every frame. Wire charges are
//!   deterministic byte counts, so this arm needs no timing at all.
//!
//! This runner produces the `dict_epoch` series in
//! `BENCH_throughput.json`.

use std::time::Instant;

use jarvis_core::engine::netwire::{
    decode_shard_payload_with, encode_shard_payload, encode_shard_payload_with,
};
use jarvis_core::engine::NetPayload;
use serde::{Deserialize, Serialize};
use streamkit::batch::{Batch, DictRegistry, DictVersions};
use telemetry::loganalytics::{structured_log_schema, LogConfig, LogGenerator};

use crate::groupagg::{build_group_op, GroupKeyLayout};
use crate::measure::{best_secs, run_op};

/// Epochs per run — enough for the cross-epoch caches (and the delta wire
/// regime) to dominate the first-contact setup cost.
const EPOCHS: i64 = 8;

/// Shards the wire arm partitions each epoch over (all remote over one
/// link, the worst case for dictionary re-shipping).
const WIRE_SHARDS: usize = 4;

/// Result of one persistent-vs-rebuild dictionary measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DictEpochResult {
    /// Workload identifier.
    pub pipeline: String,
    /// Epochs per iteration.
    pub epochs: u32,
    /// Rows pushed through each arm per iteration.
    pub rows: u64,
    /// Measured iterations per arm.
    pub iters: u32,
    /// Per-epoch-rebuild throughput, rows/second (best over iterations).
    pub rebuild_rows_per_sec: f64,
    /// Persistent-stream throughput, rows/second (best over iterations).
    pub persistent_rows_per_sec: f64,
    /// persistent / rebuild speedup factor.
    pub speedup: f64,
    /// Wire bytes per epoch when every frame re-ships its full dictionary
    /// pages (deterministic byte count, not a timing).
    pub full_page_wire_bytes_per_epoch: f64,
    /// Wire bytes per epoch when persistent pages ship as per-link deltas.
    pub delta_wire_bytes_per_epoch: f64,
    /// full-page / delta wire-bytes reduction factor.
    pub wire_reduction: f64,
}

impl DictEpochResult {
    /// Deterministic evidence the series must always carry, baseline or
    /// not: delta shipping must actually beat re-shipping full pages.
    pub fn contract_failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.delta_wire_bytes_per_epoch <= 0.0 {
            out.push("dict_epoch: delta arm shipped no wire bytes".to_string());
        }
        if self.delta_wire_bytes_per_epoch >= self.full_page_wire_bytes_per_epoch {
            out.push(format!(
                "dict_epoch: delta shipping ({:.0} B/epoch) must beat full pages \
                 ({:.0} B/epoch)",
                self.delta_wire_bytes_per_epoch, self.full_page_wire_bytes_per_epoch
            ));
        }
        out
    }
}

/// The same structured telemetry stream in both dictionary regimes.
pub fn structured_epochs_with(persistent_dicts: bool) -> Vec<Batch> {
    let mut gen = LogGenerator::new(LogConfig {
        scale: 0.5,
        persistent_dicts,
        ..Default::default()
    });
    (0..EPOCHS)
        .map(|e| gen.generate_structured_epoch_batch(e * 1_000_000, 1.0))
        .collect()
}

/// Total `ShardBatch` wire bytes for one run over a single node link.
/// `link`/`registry` carry dictionary state across epochs for the delta
/// arm; `None` measures the self-contained full-page form. Every delta
/// frame is decoded back through a receiver registry, so the measured
/// bytes are proven reassemblable, not just small.
pub fn wire_bytes(batches: &[Batch], delta: bool) -> u64 {
    let schemas = [structured_log_schema()];
    let mut link = DictVersions::new();
    let mut registry = DictRegistry::new();
    let mut total = 0u64;
    for (epoch, batch) in batches.iter().enumerate() {
        for (shard, sub) in batch
            .shard_by_key(&[0, 1], WIRE_SHARDS)
            .into_iter()
            .enumerate()
        {
            if sub.is_empty() {
                continue;
            }
            let payload = NetPayload::ShardBatch {
                shard: shard as u32,
                epoch: epoch as u64,
                source: 0,
                rel: 0,
                batch: sub,
            };
            let wire = if delta {
                encode_shard_payload_with(&payload, &mut link)
            } else {
                encode_shard_payload(&payload)
            };
            total += wire.len() as u64;
            if delta {
                decode_shard_payload_with(wire, &schemas, &mut registry)
                    .expect("delta frames must reassemble on the receiver");
            }
        }
    }
    total
}

/// Measures the persistent-vs-rebuild dictionary series. `iters` timed
/// iterations per throughput arm; the wire arm is deterministic.
pub fn bench_dict_epoch(iters: u32) -> DictEpochResult {
    let persistent = structured_epochs_with(true);
    let rebuild = structured_epochs_with(false);
    let rows: u64 = persistent.iter().map(|b| b.len() as u64).sum();

    let time = |batches: &[Batch]| -> f64 {
        let mut op = build_group_op(GroupKeyLayout::Dict);
        run_op(op.as_mut(), batches); // warm-up
        let samples: Vec<f64> = (0..iters.max(1))
            .map(|_| {
                let start = Instant::now();
                let emitted = run_op(op.as_mut(), batches);
                let dt = start.elapsed().as_secs_f64();
                assert!(emitted > 0, "the aggregation must emit results");
                dt
            })
            .collect();
        best_secs(samples)
    };

    let rebuild_rps = rows as f64 / time(&rebuild);
    let persistent_rps = rows as f64 / time(&persistent);

    let full = wire_bytes(&persistent, false) as f64;
    let delta = wire_bytes(&persistent, true) as f64;
    let per_epoch = EPOCHS as f64;

    DictEpochResult {
        pipeline: "LogAnalytics structured stream: persistent StreamDicts vs \
                   per-epoch page rebuild"
            .into(),
        epochs: EPOCHS as u32,
        rows,
        iters: iters.max(1),
        rebuild_rows_per_sec: rebuild_rps,
        persistent_rows_per_sec: persistent_rps,
        speedup: persistent_rps / rebuild_rps,
        full_page_wire_bytes_per_epoch: full / per_epoch,
        delta_wire_bytes_per_epoch: delta / per_epoch,
        wire_reduction: full / delta,
    }
}
