//! Str-keyed vs dict-keyed group-aggregate throughput for the perf
//! trajectory.
//!
//! Same workload as the `group_agg` criterion group: the LogAnalytics-style
//! windowed group-by (tenant × stat name keys, Sum/Avg/Max over the stat
//! column) over structured telemetry epochs, keyed off plain string columns
//! and off native dictionary columns. This runner produces the
//! machine-readable `group_agg` series in `BENCH_throughput.json`.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use streamkit::agg::{AggKind, AggSpec};
use streamkit::batch::Batch;
use streamkit::ops::{AggRole, CostModel, EmitMode, GroupAggregateOp, Operator};
use streamkit::window::TumblingWindow;
use telemetry::loganalytics::{structured_log_schema, LogConfig, LogGenerator};

use crate::measure::{best_secs, run_op};

/// Which physical layout the group keys arrive in.
#[derive(Debug, Clone, Copy)]
pub enum GroupKeyLayout {
    /// Plain `Column::Str` keys (the pre-dictionary batch baseline).
    Str,
    /// Native `Column::Dict` keys.
    Dict,
}

/// The same structured epochs in both key layouts.
pub struct StructuredEpochs {
    /// Native dictionary key columns.
    pub dict: Vec<Batch>,
    /// The identical rows with keys materialised as plain strings.
    pub str: Vec<Batch>,
}

/// Generates `n` structured LogAnalytics epochs (deterministic seed) in
/// both key layouts.
pub fn structured_epochs(n: i64) -> StructuredEpochs {
    let mut gen = LogGenerator::new(LogConfig {
        scale: 0.5,
        ..Default::default()
    });
    let dict: Vec<Batch> = (0..n)
        .map(|e| gen.generate_structured_epoch_batch(e * 1_000_000, 1.0))
        .collect();
    let str: Vec<Batch> = dict
        .iter()
        .map(|b| {
            let mut plain = b.clone();
            plain.dict_decode();
            plain
        })
        .collect();
    StructuredEpochs { dict, str }
}

/// Builds the LogAnalytics-style aggregation: group by (tenant, stat_name),
/// fold Sum/Avg/Max over the stat column in 10-second windows.
pub fn build_group_op(_layout: GroupKeyLayout) -> Box<dyn Operator> {
    // The operator is layout-agnostic — the layout lives in the batches —
    // but taking it as a parameter keeps call sites explicit about which
    // arm they measure.
    Box::new(GroupAggregateOp::new(
        vec![0, 1],
        vec![
            AggSpec::new(AggKind::Sum, 2, "sum_stat"),
            AggSpec::new(AggKind::Avg, 2, "avg_stat"),
            AggSpec::new(AggKind::Max, 2, "max_stat"),
        ],
        &structured_log_schema(),
        TumblingWindow::new(10_000_000),
        EmitMode::OnWindowClose,
        AggRole::Final,
        CostModel::fixed(1.0),
    ))
}

/// Result of one str-vs-dict group-aggregate measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupAggResult {
    /// Workload identifier.
    pub pipeline: String,
    /// Rows pushed through each path per iteration.
    pub rows: u64,
    /// Measured iterations per path.
    pub iters: u32,
    /// Str-keyed throughput, rows/second (best over iterations).
    pub str_rows_per_sec: f64,
    /// Str-keyed cost, nanoseconds/row.
    pub str_ns_per_row: f64,
    /// Dict-keyed throughput, rows/second (best over iterations).
    pub dict_rows_per_sec: f64,
    /// Dict-keyed cost, nanoseconds/row.
    pub dict_ns_per_row: f64,
    /// dict / str speedup factor.
    pub speedup: f64,
}

/// Measures the LogAnalytics-style group-aggregate through both key
/// layouts. `iters` timed iterations per path.
pub fn bench_group_agg(iters: u32) -> GroupAggResult {
    let epochs = structured_epochs(4);
    let rows: u64 = epochs.dict.iter().map(|b| b.len() as u64).sum();

    let time = |layout: GroupKeyLayout, batches: &[Batch]| -> f64 {
        let mut op = build_group_op(layout);
        run_op(op.as_mut(), batches); // warm-up
        let samples: Vec<f64> = (0..iters.max(1))
            .map(|_| {
                let start = Instant::now();
                let emitted = run_op(op.as_mut(), batches);
                let dt = start.elapsed().as_secs_f64();
                assert!(emitted > 0, "the aggregation must emit results");
                dt
            })
            .collect();
        best_secs(samples)
    };

    let str_secs = time(GroupKeyLayout::Str, &epochs.str);
    let dict_secs = time(GroupKeyLayout::Dict, &epochs.dict);
    let str_rps = rows as f64 / str_secs;
    let dict_rps = rows as f64 / dict_secs;
    GroupAggResult {
        pipeline: "LogAnalytics group-by (tenant, stat_name) Sum/Avg/Max".into(),
        rows,
        iters: iters.max(1),
        str_rows_per_sec: str_rps,
        str_ns_per_row: 1e9 / str_rps,
        dict_rows_per_sec: dict_rps,
        dict_ns_per_row: 1e9 / dict_rps,
        speedup: dict_rps / str_rps,
    }
}
