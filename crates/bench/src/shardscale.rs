//! Shard-scaling throughput for the perf trajectory.
//!
//! Measures the sharded SP runtime's group-aggregate-heavy hot path — the
//! S2SProbe chain over a high-cardinality Pingmesh stream, where the keyed
//! `G+R` dominates — at 1, 2, and 4 shards. The router phase (stateless
//! prefix + [`Batch::shard_by_key`] partitioning) is serial, exactly as the
//! sharded runtime's router thread is; each shard's pipeline is then timed
//! independently and the reported wall-clock is the **critical path**,
//! `router + slowest shard`, i.e. the throughput a machine with at least
//! `n` worker cores sustains. (This container may have a single core, so
//! end-to-end thread-pool wall-clock would measure the scheduler, not the
//! runtime; shard exactness under real threads is covered by
//! `tests/shard_parity.rs`.)

use std::time::Instant;

use serde::{Deserialize, Serialize};
use streamkit::batch::Batch;
use streamkit::ops::{AggRole, Operator};
use streamkit::physical::{build_pipeline, CostProfile};
use streamkit::time::TS_MAX;
use telemetry::pingmesh::{PingmeshConfig, PingmeshGenerator};

use crate::measure::best_secs;

/// The perf-trajectory artifact (`BENCH_throughput.json`): one series per
/// optimized hot path. CI re-measures and fails loudly when a series'
/// speedup regresses more than 20% against the committed numbers (speedup
/// ratios, not absolute rates, so the gate is machine-independent). The
/// PR-2 `row_vs_batch` series retired together with the row shim it
/// measured; `tests/golden_fingerprints.rs` now pins those semantics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Str-keyed vs dict-keyed group aggregation (PR 3).
    pub group_agg: crate::groupagg::GroupAggResult,
    /// Sharded SP runtime: 1/2/4 keyed shard pipelines (PR 4).
    pub shard_scaling: ShardScalingResult,
    /// Multi-node SP tier: 1/2/4 nodes over a fixed 4-shard ring (PR 5).
    pub node_scaling: crate::nodescale::NodeScalingResult,
    /// Framed-TCP socket transport vs in-process channel (PR 6).
    pub net_transport: crate::nettransport::NetTransportResult,
    /// Seeded node-loss drill: sever + reassign must keep the digest
    /// bit-identical (PR 8). `Option` so pre-PR-8 baselines (no such
    /// field) still load — the vendored serde reads a missing field as
    /// `Null`, which `Option` maps to `None`.
    pub fault_recovery: Option<crate::faultrecovery::FaultRecoveryResult>,
    /// Persistent cross-epoch dictionaries vs per-epoch rebuild:
    /// group-by throughput and delta vs full-page wire bytes (PR 9).
    /// `Option` for the same pre-PR baseline-loading reason.
    pub dict_epoch: Option<crate::dictepoch::DictEpochResult>,
    /// Task-per-source fan-in over the async runtime at a fixed row budget:
    /// 16/256/2048/10240 sources (PR 10). `Option` for the same pre-PR
    /// baseline-loading reason.
    pub source_scaling: Option<crate::sourcescale::SourceScalingResult>,
}

/// Allowed relative speedup regression before the CI gate fails.
pub const REGRESSION_TOLERANCE: f64 = 0.20;

impl ThroughputReport {
    /// Compares this (freshly measured) report against committed baseline
    /// numbers. Returns the list of human-readable regressions — empty when
    /// every series is within tolerance.
    pub fn regressions_vs(&self, baseline: &ThroughputReport) -> Vec<String> {
        let mut out = Vec::new();
        let mut check = |name: &str, measured: f64, committed: f64| {
            if measured < committed * (1.0 - REGRESSION_TOLERANCE) {
                out.push(format!(
                    "{name}: measured speedup {measured:.2}x is more than {:.0}% below \
                     the committed {committed:.2}x",
                    REGRESSION_TOLERANCE * 100.0
                ));
            }
        };
        check(
            "group_agg",
            self.group_agg.speedup,
            baseline.group_agg.speedup,
        );
        check(
            "shard_scaling@4",
            self.shard_scaling.speedup_at_max(),
            baseline.shard_scaling.speedup_at_max(),
        );
        check(
            "node_scaling@4",
            self.node_scaling.speedup_at_max(),
            baseline.node_scaling.speedup_at_max(),
        );
        check(
            "net_transport",
            self.net_transport.relative_throughput,
            baseline.net_transport.relative_throughput,
        );
        // The dict-epoch throughput and wire-reduction halves gate like
        // every other speedup series (ratios, machine-independent)…
        if let (Some(de), Some(b)) = (&self.dict_epoch, &baseline.dict_epoch) {
            check("dict_epoch", de.speedup, b.speedup);
            check("dict_epoch wire", de.wire_reduction, b.wire_reduction);
        }
        // …as does the source-scaling fan-in ratio (relative throughput at
        // the largest source count).
        if let (Some(ss), Some(b)) = (&self.source_scaling, &baseline.source_scaling) {
            check(
                "source_scaling@10240",
                ss.relative_at_max(),
                b.relative_at_max(),
            );
        }
        // The fault-recovery series gates on evidence, not speed: the
        // measured drill must prove exact recovery regardless of what the
        // committed baseline recorded (timing is machine noise; losing
        // data is wrong everywhere).
        if let Some(fr) = &self.fault_recovery {
            out.extend(fr.contract_failures());
        } else if baseline.fault_recovery.is_some() {
            out.push(
                "fault_recovery: series missing from the measured report but present \
                 in the committed baseline"
                    .to_string(),
            );
        }
        // …and additionally on deterministic evidence: deltas must beat
        // full pages in the measured run, whatever the baseline says.
        if let Some(de) = &self.dict_epoch {
            out.extend(de.contract_failures());
        } else if baseline.dict_epoch.is_some() {
            out.push(
                "dict_epoch: series missing from the measured report but present \
                 in the committed baseline"
                    .to_string(),
            );
        }
        // The source-scaling series additionally gates on its absolute
        // fan-in floor: ≥ 2048 sources within 0.8× of the 16-source rate,
        // whatever the baseline says — a runtime that collapses at scale
        // is wrong on any machine.
        if let Some(ss) = &self.source_scaling {
            out.extend(ss.contract_failures());
        } else if baseline.source_scaling.is_some() {
            out.push(
                "source_scaling: series missing from the measured report but present \
                 in the committed baseline"
                    .to_string(),
            );
        }
        out
    }
}

/// Result of one shard-scaling measurement: parallel series over shard
/// counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardScalingResult {
    /// Workload identifier.
    pub pipeline: String,
    /// Rows pushed through the chain per iteration.
    pub rows: u64,
    /// Measured iterations per shard count.
    pub iters: u32,
    /// Shard counts measured (ascending; first is the unsharded baseline).
    pub shards: Vec<u32>,
    /// Critical-path throughput per shard count, rows/second.
    pub rows_per_sec: Vec<f64>,
    /// Speedup vs the unsharded baseline, per shard count.
    pub speedup: Vec<f64>,
}

impl ShardScalingResult {
    /// Speedup at the largest measured shard count (the CI-gated number).
    pub fn speedup_at_max(&self) -> f64 {
        self.speedup.last().copied().unwrap_or(1.0)
    }
}

/// The group-aggregate-heavy workload: S2SProbe over a wide peer space, so
/// nearly every row opens or probes a distinct `(srcIp, dstIp)` group and
/// the keyed `G+R` dominates the chain.
pub fn shard_scaling_epochs(n_epochs: i64) -> Vec<Batch> {
    let mut gen = PingmeshGenerator::new(PingmeshConfig {
        scale: 2.0,
        peer_ip_space: 20_000,
        ..Default::default()
    });
    (0..n_epochs)
        .map(|e| gen.generate_epoch_batch(e * 1_000_000, 1.0))
        .collect()
}

/// The measured chain split at its keyed boundary: the stateless prefix
/// (router side) and `n` independent keyed pipelines (one per shard).
pub struct ShardedChain {
    /// Group-key columns at the boundary edge.
    pub keys: Vec<usize>,
    /// Stateless prefix stages (router side).
    pub prefix: Vec<Box<dyn Operator>>,
    /// One keyed pipeline per shard.
    pub shards: Vec<Vec<Box<dyn Operator>>>,
}

/// Builds the S2SProbe chain split for `n` shards.
pub fn build_sharded_chain(n: usize) -> ShardedChain {
    let plan = telemetry::queries::s2s_probe();
    let costs = CostProfile::default();
    let (boundary, keys) = plan.shard_boundary().expect("S2SProbe has a G+R");
    let mut prefix = build_pipeline(&plan, &costs, AggRole::Final).expect("valid plan");
    prefix.truncate(boundary);
    let shards = (0..n.max(1))
        .map(|_| {
            let mut ops = build_pipeline(&plan, &costs, AggRole::Final).expect("valid plan");
            ops.split_off(boundary)
        })
        .collect();
    ShardedChain {
        keys,
        prefix,
        shards,
    }
}

/// One iteration of the critical-path measurement. Returns
/// `(router_secs, max_shard_secs, emitted_rows)`.
pub fn run_sharded_iter(chain: &mut ShardedChain, batches: &[Batch]) -> (f64, f64, usize) {
    let n = chain.shards.len();
    // Router phase: stateless prefix, then key-hash partitioning.
    let start = Instant::now();
    let mut buckets: Vec<Vec<Batch>> = (0..n).map(|_| Vec::new()).collect();
    for batch in batches {
        let mut cur = vec![batch.clone()];
        for op in &mut chain.prefix {
            let mut next = Vec::new();
            for b in cur {
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        for out in cur {
            if n == 1 {
                buckets[0].push(out);
            } else {
                for (k, sub) in out.shard_by_key(&chain.keys, n).into_iter().enumerate() {
                    if !sub.is_empty() {
                        buckets[k].push(sub);
                    }
                }
            }
        }
    }
    for op in &mut chain.prefix {
        op.reset();
    }
    let router_secs = start.elapsed().as_secs_f64();

    // Shard phase: each keyed pipeline timed independently; the critical
    // path is the slowest one.
    let mut max_shard_secs = 0.0f64;
    let mut emitted = 0usize;
    for (ops, bucket) in chain.shards.iter_mut().zip(buckets) {
        let start = Instant::now();
        let mut sink = Vec::new();
        for b in bucket {
            ops[0].process_batch(b, &mut sink);
        }
        let mut cur = std::mem::take(&mut sink);
        ops[0].on_watermark(TS_MAX, &mut cur);
        for op in ops.iter_mut().skip(1) {
            let mut next = Vec::new();
            for b in cur {
                op.process_batch(b, &mut next);
            }
            op.on_watermark(TS_MAX, &mut next);
            cur = next;
        }
        emitted += cur.iter().map(Batch::len).sum::<usize>();
        for op in ops.iter_mut() {
            op.reset();
        }
        max_shard_secs = max_shard_secs.max(start.elapsed().as_secs_f64());
    }
    (router_secs, max_shard_secs, emitted)
}

/// Measures the shard-scaling series. `iters` timed iterations per shard
/// count (best-of, like every trajectory series).
pub fn bench_shard_scaling(iters: u32) -> ShardScalingResult {
    let batches = shard_scaling_epochs(4);
    let rows: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let shard_counts = [1u32, 2, 4];

    let mut rows_per_sec = Vec::with_capacity(shard_counts.len());
    for &n in &shard_counts {
        let mut chain = build_sharded_chain(n as usize);
        run_sharded_iter(&mut chain, &batches); // warm-up
        let samples: Vec<f64> = (0..iters.max(1))
            .map(|_| {
                let (router, max_shard, emitted) = run_sharded_iter(&mut chain, &batches);
                assert!(emitted > 0, "the chain must emit results");
                router + max_shard
            })
            .collect();
        rows_per_sec.push(rows as f64 / best_secs(samples));
    }
    let base = rows_per_sec[0];
    ShardScalingResult {
        pipeline: "S2SProbe sharded G+R (20k peer space), critical path".into(),
        rows,
        iters: iters.max(1),
        shards: shard_counts.to_vec(),
        rows_per_sec: rows_per_sec.clone(),
        speedup: rows_per_sec.iter().map(|r| r / base).collect(),
    }
}
