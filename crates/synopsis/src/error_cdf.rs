//! Empirical CDFs for estimation-error reporting (paper Fig. 9a).

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution over collected samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Empty CDF.
    pub fn new() -> Cdf {
        Cdf::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_at_most(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&v| v <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile of the samples.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let idx = ((q.clamp(0.0, 1.0)) * (self.samples.len() - 1) as f64).round() as usize;
        Some(self.samples[idx])
    }

    /// Evaluates the CDF at each of `xs`, returning `(x, F(x))` pairs — the
    /// series plotted in Fig. 9a.
    pub fn series(&mut self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.fraction_at_most(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_normalised() {
        let mut c = Cdf::new();
        for v in [3.0, 1.0, 2.0, 2.0, 10.0] {
            c.push(v);
        }
        assert_eq!(c.fraction_at_most(0.5), 0.0);
        assert_eq!(c.fraction_at_most(2.0), 0.6);
        assert_eq!(c.fraction_at_most(10.0), 1.0);
        let series = c.series(&[0.0, 1.0, 2.0, 3.0, 10.0]);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn quantiles() {
        let mut c = Cdf::new();
        for v in 0..101 {
            c.push(v as f64);
        }
        assert_eq!(c.quantile(0.5), Some(50.0));
        assert_eq!(c.quantile(1.0), Some(100.0));
        assert_eq!(Cdf::new().quantile(0.5), None);
    }
}
