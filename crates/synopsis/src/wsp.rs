//! Window-based sampling protocol (WSP) — the data-synopsis baseline of
//! paper §VI-D (after Cormode et al., "Continuous sampling from distributed
//! streams").
//!
//! Each data source Bernoulli-samples its probe stream at a configured rate
//! within every window and ships only the sample. The stream processor then
//! estimates, per server pair, the *range* of probe latencies (the quantity
//! behind Scenario 1's alerts). We measure (a) the estimation-error CDF,
//! (b) network bytes transferred, and (c) missed alerts versus ground truth.

use std::collections::HashMap;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use streamkit::record::Record;
use streamkit::schema::SchemaRef;
use streamkit::value::Value;

use crate::error_cdf::Cdf;

/// Sampler configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WspConfig {
    /// Sampling rate in `(0, 1]` (paper sweeps 0.2, 0.4, 0.6, 0.8).
    pub rate: f64,
    /// Alert threshold on max RTT, µs (paper Scenario 1: 5 ms).
    pub alert_threshold_us: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WspConfig {
    fn default() -> Self {
        WspConfig {
            rate: 0.2,
            alert_threshold_us: 5_000.0,
            seed: 7,
        }
    }
}

/// Per-pair RTT range summary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct RangeStat {
    min: f64,
    max: f64,
    seen: bool,
}

impl RangeStat {
    fn update(&mut self, v: f64) {
        if !self.seen {
            self.min = v;
            self.max = v;
            self.seen = true;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    fn range(&self) -> f64 {
        if self.seen {
            self.max - self.min
        } else {
            0.0
        }
    }
}

/// One window's WSP evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WspReport {
    /// Bytes the sample would transfer.
    pub sampled_bytes: usize,
    /// Bytes the raw stream would transfer.
    pub raw_bytes: usize,
    /// Per-pair absolute error in the estimated RTT *range*, µs.
    pub range_errors_us: Vec<f64>,
    /// Pairs whose true max RTT exceeded the threshold.
    pub true_alerts: usize,
    /// Alerting pairs missed by the sample.
    pub missed_alerts: usize,
}

impl WspReport {
    /// Error CDF over server pairs.
    pub fn error_cdf(&self) -> Cdf {
        let mut cdf = Cdf::new();
        for &e in &self.range_errors_us {
            cdf.push(e);
        }
        cdf
    }

    /// Fraction of alerts missed (0 when no alerts fired).
    pub fn missed_alert_fraction(&self) -> f64 {
        if self.true_alerts == 0 {
            0.0
        } else {
            self.missed_alerts as f64 / self.true_alerts as f64
        }
    }
}

/// The sampler/evaluator.
#[derive(Debug)]
pub struct WspSampler {
    cfg: WspConfig,
    rng: ChaCha8Rng,
}

impl WspSampler {
    /// Creates a sampler.
    pub fn new(cfg: WspConfig) -> WspSampler {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        WspSampler { cfg, rng }
    }

    /// Evaluates one window of Pingmesh-schema records: samples at the
    /// configured rate and compares per-pair RTT-range estimates and alerts
    /// against ground truth. `key_cols` and `rtt_col` index the schema.
    pub fn evaluate_window(
        &mut self,
        records: &[Record],
        schema: &SchemaRef,
        key_cols: (usize, usize),
        rtt_col: usize,
    ) -> WspReport {
        let mut truth: HashMap<(Value, Value), RangeStat> = HashMap::new();
        let mut sampled: HashMap<(Value, Value), RangeStat> = HashMap::new();
        let mut sampled_bytes = 0usize;
        let mut raw_bytes = 0usize;
        for rec in records {
            let key = (
                rec.values[key_cols.0].clone(),
                rec.values[key_cols.1].clone(),
            );
            let Some(rtt) = rec.values[rtt_col].as_f64() else {
                continue;
            };
            raw_bytes += rec.wire_size(schema);
            truth.entry(key.clone()).or_default().update(rtt);
            if self.rng.gen_bool(self.cfg.rate) {
                sampled_bytes += rec.wire_size(schema);
                sampled.entry(key).or_default().update(rtt);
            }
        }
        let mut range_errors_us = Vec::with_capacity(truth.len());
        let mut true_alerts = 0usize;
        let mut missed_alerts = 0usize;
        for (key, t) in &truth {
            let s = sampled.get(key).copied().unwrap_or_default();
            range_errors_us.push((t.range() - s.range()).abs());
            if t.max >= self.cfg.alert_threshold_us {
                true_alerts += 1;
                let sampled_alert = s.seen && s.max >= self.cfg.alert_threshold_us;
                if !sampled_alert {
                    missed_alerts += 1;
                }
            }
        }
        WspReport {
            sampled_bytes,
            raw_bytes,
            range_errors_us,
            true_alerts,
            missed_alerts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::anomaly::AnomalySchedule;
    use telemetry::pingmesh::{col, pingmesh_schema, PingmeshConfig, PingmeshGenerator};

    fn window(scale: f64) -> (Vec<Record>, SchemaRef) {
        let cfg = PingmeshConfig {
            scale,
            anomalies: AnomalySchedule::single(0.0, 60.0, 0.02, 30.0),
            ..Default::default()
        };
        let mut g = PingmeshGenerator::new(cfg);
        let mut recs = Vec::new();
        for e in 0..10 {
            recs.extend(g.generate_epoch(e * 1_000_000, 1.0));
        }
        (recs, pingmesh_schema())
    }

    #[test]
    fn full_rate_sampling_has_zero_error() {
        let (recs, schema) = window(1.0);
        let mut s = WspSampler::new(WspConfig {
            rate: 1.0,
            ..Default::default()
        });
        let rep = s.evaluate_window(&recs, &schema, (col::SRC_IP, col::DST_IP), col::RTT);
        assert_eq!(rep.sampled_bytes, rep.raw_bytes);
        assert!(rep.range_errors_us.iter().all(|&e| e == 0.0));
        assert_eq!(rep.missed_alerts, 0);
        assert!(rep.true_alerts > 0, "anomaly must fire some alerts");
    }

    #[test]
    fn lower_rates_transfer_less_but_err_more() {
        let (recs, schema) = window(1.0);
        let mut lo = WspSampler::new(WspConfig {
            rate: 0.2,
            ..Default::default()
        });
        let mut hi = WspSampler::new(WspConfig {
            rate: 0.8,
            ..Default::default()
        });
        let rep_lo = lo.evaluate_window(&recs, &schema, (col::SRC_IP, col::DST_IP), col::RTT);
        let rep_hi = hi.evaluate_window(&recs, &schema, (col::SRC_IP, col::DST_IP), col::RTT);
        assert!(rep_lo.sampled_bytes < rep_hi.sampled_bytes);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&rep_lo.range_errors_us) > mean(&rep_hi.range_errors_us),
            "lower sampling rate must have larger mean error"
        );
    }

    #[test]
    fn low_rates_miss_alerts() {
        let (recs, schema) = window(1.0);
        let mut s = WspSampler::new(WspConfig {
            rate: 0.2,
            ..Default::default()
        });
        let rep = s.evaluate_window(&recs, &schema, (col::SRC_IP, col::DST_IP), col::RTT);
        // The paper reports 10–38% missed alerts at low rates; with one probe
        // per pair per window at 1x, a 0.2 sample misses ~80% — any strictly
        // positive fraction demonstrates the accuracy loss.
        assert!(rep.missed_alert_fraction() > 0.0);
    }
}
