//! `synopsis` — data-synopsis baselines (paper §VI-D).
//!
//! Implements the window-based sampling protocol (WSP) comparison: continuous
//! per-window Bernoulli sampling over distributed streams, per-server-pair
//! latency-range estimation, estimation-error CDFs, and alert-recall
//! accounting — plus a count-min sketch as a second classical synopsis.

pub mod cms;
pub mod error_cdf;
pub mod wsp;

pub use cms::CountMinSketch;
pub use error_cdf::Cdf;
pub use wsp::{WspConfig, WspReport, WspSampler};
