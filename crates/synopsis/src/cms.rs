//! Count-min sketch — a classical data synopsis included alongside sampling
//! (paper §II-B cites sketches among synopsis techniques traded against
//! accuracy).

use std::hash::{Hash, Hasher};

/// A count-min sketch with conservative point queries.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    counts: Vec<u64>,
    total: u64,
}

impl CountMinSketch {
    /// Creates a sketch with error ≈ e/width over the stream total and
    /// failure probability ≈ (1/2)^depth.
    pub fn new(width: usize, depth: usize) -> CountMinSketch {
        assert!(width > 0 && depth > 0, "width and depth must be positive");
        CountMinSketch {
            width,
            depth,
            counts: vec![0; width * depth],
            total: 0,
        }
    }

    fn index(&self, item: &impl Hash, row: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        row.hash(&mut h);
        item.hash(&mut h);
        row * self.width + (h.finish() as usize % self.width)
    }

    /// Adds `count` occurrences of `item`.
    pub fn add(&mut self, item: &impl Hash, count: u64) {
        self.total += count;
        for row in 0..self.depth {
            let idx = self.index(item, row);
            self.counts[idx] += count;
        }
    }

    /// Point estimate (never underestimates).
    pub fn estimate(&self, item: &impl Hash) -> u64 {
        (0..self.depth)
            .map(|row| self.counts[self.index(item, row)])
            .min()
            .unwrap_or(0)
    }

    /// Total count added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Merges another sketch with identical dimensions.
    pub fn merge(&mut self, other: &CountMinSketch) {
        assert_eq!(self.width, other.width);
        assert_eq!(self.depth, other.depth);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// State size in bytes (for synopsis-vs-raw transfer comparisons).
    pub fn state_bytes(&self) -> usize {
        self.counts.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cms = CountMinSketch::new(256, 4);
        for i in 0..1000u64 {
            cms.add(&(i % 50), 1);
        }
        for key in 0..50u64 {
            assert!(cms.estimate(&key) >= 20);
        }
        assert_eq!(cms.total(), 1000);
    }

    #[test]
    fn estimates_are_tight_when_sparse() {
        let mut cms = CountMinSketch::new(2048, 5);
        cms.add(&"hot", 500);
        cms.add(&"cold", 3);
        assert_eq!(cms.estimate(&"hot"), 500);
        assert!(cms.estimate(&"cold") <= 10);
        assert_eq!(cms.estimate(&"absent-ish"), cms.estimate(&"absent-ish"));
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = CountMinSketch::new(128, 3);
        let mut b = CountMinSketch::new(128, 3);
        let mut full = CountMinSketch::new(128, 3);
        for i in 0..200u64 {
            if i % 2 == 0 {
                a.add(&i, 1);
            } else {
                b.add(&i, 1);
            }
            full.add(&i, 1);
        }
        a.merge(&b);
        for i in 0..200u64 {
            assert_eq!(a.estimate(&i), full.estimate(&i));
        }
    }
}
