//! Monitoring-pipeline topologies (paper Fig. 4b).
//!
//! Physical resources form a tree: leaves are data sources, inner nodes are
//! intermediate stream processors, and the root aggregates final results. A
//! set of sources plus their common parent is a *core building block*; blocks
//! do not communicate, which is what lets Jarvis scale out (§IV-A), so most
//! experiments instantiate exactly one block.

use std::collections::BTreeMap;

use crate::node::NodeId;

/// Role of a node in the monitoring tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Leaf data source.
    Source,
    /// Intermediate stream processor.
    IntermediateSp,
    /// Root stream processor.
    RootSp,
}

/// A tree of monitoring nodes.
#[derive(Debug, Clone)]
pub struct Topology {
    roles: BTreeMap<NodeId, NodeRole>,
    parents: BTreeMap<NodeId, NodeId>,
    root: NodeId,
}

impl Topology {
    /// A single core building block: `n_sources` leaves under one stream
    /// processor (which is also the root).
    pub fn building_block(n_sources: u32) -> Topology {
        let root = NodeId(0);
        let mut roles = BTreeMap::new();
        let mut parents = BTreeMap::new();
        roles.insert(root, NodeRole::RootSp);
        for i in 0..n_sources {
            let id = NodeId(i + 1);
            roles.insert(id, NodeRole::Source);
            parents.insert(id, root);
        }
        Topology {
            roles,
            parents,
            root,
        }
    }

    /// A two-level tree: `blocks` intermediate SPs under one root, each with
    /// `sources_per_block` leaves.
    pub fn two_level(blocks: u32, sources_per_block: u32) -> Topology {
        let root = NodeId(0);
        let mut roles = BTreeMap::new();
        let mut parents = BTreeMap::new();
        roles.insert(root, NodeRole::RootSp);
        let mut next = 1u32;
        for _ in 0..blocks {
            let sp = NodeId(next);
            next += 1;
            roles.insert(sp, NodeRole::IntermediateSp);
            parents.insert(sp, root);
            for _ in 0..sources_per_block {
                let leaf = NodeId(next);
                next += 1;
                roles.insert(leaf, NodeRole::Source);
                parents.insert(leaf, sp);
            }
        }
        Topology {
            roles,
            parents,
            root,
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Role of `id`, if present.
    pub fn role(&self, id: NodeId) -> Option<NodeRole> {
        self.roles.get(&id).copied()
    }

    /// Parent of `id` (None for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.parents.get(&id).copied()
    }

    /// All data sources, in id order.
    pub fn sources(&self) -> Vec<NodeId> {
        self.roles
            .iter()
            .filter(|(_, r)| **r == NodeRole::Source)
            .map(|(id, _)| *id)
            .collect()
    }

    /// All children of `id`, in id order.
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        self.parents
            .iter()
            .filter(|(_, p)| **p == id)
            .map(|(c, _)| *c)
            .collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// True when empty (never for constructed topologies).
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// The building block (source-set) rooted at each SP directly above the
    /// leaves, as `(sp, sources)` pairs.
    pub fn building_blocks(&self) -> Vec<(NodeId, Vec<NodeId>)> {
        let mut blocks = Vec::new();
        for (&id, &role) in &self.roles {
            if role == NodeRole::IntermediateSp
                || (role == NodeRole::RootSp
                    && self
                        .children(id)
                        .iter()
                        .any(|c| self.role(*c) == Some(NodeRole::Source)))
            {
                let sources: Vec<NodeId> = self
                    .children(id)
                    .into_iter()
                    .filter(|c| self.role(*c) == Some(NodeRole::Source))
                    .collect();
                if !sources.is_empty() {
                    blocks.push((id, sources));
                }
            }
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_block_shape() {
        let t = Topology::building_block(3);
        assert_eq!(t.len(), 4);
        assert_eq!(t.sources().len(), 3);
        assert_eq!(t.role(t.root()), Some(NodeRole::RootSp));
        for s in t.sources() {
            assert_eq!(t.parent(s), Some(t.root()));
        }
        let blocks = t.building_blocks();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].1.len(), 3);
    }

    #[test]
    fn two_level_tree_shape() {
        let t = Topology::two_level(2, 4);
        assert_eq!(t.sources().len(), 8);
        assert_eq!(t.len(), 1 + 2 + 8);
        let blocks = t.building_blocks();
        assert_eq!(blocks.len(), 2);
        for (sp, sources) in blocks {
            assert_eq!(t.role(sp), Some(NodeRole::IntermediateSp));
            assert_eq!(sources.len(), 4);
            assert_eq!(t.parent(sp), Some(t.root()));
        }
    }

    #[test]
    fn root_has_no_parent() {
        let t = Topology::building_block(1);
        assert_eq!(t.parent(t.root()), None);
    }
}
