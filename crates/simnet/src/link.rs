//! Bandwidth-limited links.
//!
//! [`Link`] models one FIFO byte-queue with a capacity in bits/second; each
//! epoch it delivers as many queued payloads as the capacity allows and
//! reports per-payload completion times (for latency accounting).
//!
//! [`FairLink`] models the shared stream-processor ingress (paper §VI-A: a
//! 10 Gbps link fairly utilised across data sources): per-flow queues with
//! max-min fair (water-filling) allocation of the epoch's byte budget.

/// One queued payload.
#[derive(Debug, Clone)]
struct Pending<P> {
    payload: P,
    bytes: f64,
    /// Bytes already transmitted in previous epochs (partial progress).
    sent: f64,
    enqueued_at: f64,
}

/// A delivered payload with its network completion time.
#[derive(Debug, Clone)]
pub struct Delivered<P> {
    /// The payload.
    pub payload: P,
    /// Virtual time (seconds) when the last byte left the link.
    pub completed_at: f64,
    /// Virtual time (seconds) when the payload was enqueued.
    pub enqueued_at: f64,
    /// Payload size in bytes.
    pub bytes: f64,
}

/// A FIFO link with fixed capacity and an optional bounded backlog.
#[derive(Debug)]
pub struct Link<P> {
    capacity_bps: f64,
    queue: std::collections::VecDeque<Pending<P>>,
    queued_bytes: f64,
    total_enqueued_bytes: f64,
    total_delivered_bytes: f64,
    /// When set, enqueueing past this backlog evicts the oldest evictable
    /// payloads (finite socket/agent buffers; stale telemetry is shed first).
    backlog_cap_bytes: Option<f64>,
    dropped_bytes: f64,
}

impl<P> Link<P> {
    /// Creates a link with `capacity_bps` bits/second and unbounded backlog.
    pub fn new(capacity_bps: f64) -> Link<P> {
        assert!(capacity_bps >= 0.0, "capacity cannot be negative");
        Link {
            capacity_bps,
            queue: std::collections::VecDeque::new(),
            queued_bytes: 0.0,
            total_enqueued_bytes: 0.0,
            total_delivered_bytes: 0.0,
            backlog_cap_bytes: None,
            dropped_bytes: 0.0,
        }
    }

    /// Bounds the backlog (bytes).
    pub fn set_backlog_cap_bytes(&mut self, cap: Option<f64>) {
        self.backlog_cap_bytes = cap;
    }

    /// Total bytes evicted due to the backlog cap.
    pub fn dropped_bytes(&self) -> f64 {
        self.dropped_bytes
    }

    /// Link capacity in bits/second.
    pub fn capacity_bps(&self) -> f64 {
        self.capacity_bps
    }

    /// Changes the capacity (bandwidth re-partitioning experiments).
    pub fn set_capacity_bps(&mut self, capacity_bps: f64) {
        self.capacity_bps = capacity_bps;
    }

    /// Enqueues a payload of `bytes` at virtual time `now` (seconds).
    pub fn enqueue(&mut self, payload: P, bytes: usize, now: f64) {
        let _ = self.enqueue_bounded(payload, bytes, now, |_| false);
    }

    /// Enqueues and, if the backlog cap is exceeded, evicts the oldest
    /// payloads for which `evictable` returns true. Returns the evicted
    /// payloads with their sizes.
    pub fn enqueue_bounded(
        &mut self,
        payload: P,
        bytes: usize,
        now: f64,
        evictable: impl Fn(&P) -> bool,
    ) -> Vec<(P, f64)> {
        let bytes = bytes as f64;
        self.queued_bytes += bytes;
        self.total_enqueued_bytes += bytes;
        self.queue.push_back(Pending {
            payload,
            bytes,
            sent: 0.0,
            enqueued_at: now,
        });
        let mut evicted = Vec::new();
        if let Some(cap) = self.backlog_cap_bytes {
            let mut scan = 0;
            while self.queued_bytes > cap && scan < self.queue.len() {
                // Never evict a payload that is already partially on the
                // wire — that would waste transmitted bytes.
                if self.queue[scan].sent == 0.0 && evictable(&self.queue[scan].payload) {
                    let victim = self.queue.remove(scan).expect("index in range");
                    self.queued_bytes -= victim.bytes;
                    self.dropped_bytes += victim.bytes;
                    evicted.push((victim.payload, victim.bytes));
                } else {
                    scan += 1;
                }
            }
        }
        evicted
    }

    /// Bytes currently waiting (including partial progress).
    pub fn backlog_bytes(&self) -> f64 {
        self.queued_bytes
    }

    /// Total bytes ever enqueued.
    pub fn total_enqueued_bytes(&self) -> f64 {
        self.total_enqueued_bytes
    }

    /// Total bytes delivered.
    pub fn total_delivered_bytes(&self) -> f64 {
        self.total_delivered_bytes
    }

    /// Transmits for one epoch starting at `now` and lasting `epoch_secs`.
    /// Returns completed payloads in FIFO order with completion times.
    pub fn transmit(&mut self, now: f64, epoch_secs: f64) -> Vec<Delivered<P>> {
        let mut budget = self.capacity_bps / 8.0 * epoch_secs;
        let total_budget = budget;
        let mut out = Vec::new();
        while budget > 1e-12 {
            let Some(front) = self.queue.front_mut() else {
                break;
            };
            let need = front.bytes - front.sent;
            if need <= budget {
                budget -= need;
                self.queued_bytes -= need;
                self.total_delivered_bytes += front.bytes;
                let used = total_budget - budget;
                let completed_at = now + epoch_secs * (used / total_budget.max(1e-12));
                let done = self.queue.pop_front().expect("front exists");
                out.push(Delivered {
                    payload: done.payload,
                    completed_at,
                    enqueued_at: done.enqueued_at,
                    bytes: done.bytes,
                });
            } else {
                front.sent += budget;
                self.queued_bytes -= budget;
                budget = 0.0;
            }
        }
        out
    }
}

/// Max-min fair multiplexing of one shared capacity across flows.
#[derive(Debug)]
pub struct FairLink<P> {
    capacity_bps: f64,
    flows: Vec<Link<P>>,
}

impl<P> FairLink<P> {
    /// Creates a shared link with `flows` per-source queues.
    pub fn new(capacity_bps: f64, flows: usize) -> FairLink<P> {
        FairLink {
            capacity_bps,
            // Per-flow capacity is assigned at transmit time; the member
            // links' own capacities are bookkeeping only.
            flows: (0..flows).map(|_| Link::new(capacity_bps)).collect(),
        }
    }

    /// Bounds each flow's backlog (bytes).
    pub fn set_flow_backlog_cap_bytes(&mut self, cap: Option<f64>) {
        for flow in &mut self.flows {
            flow.set_backlog_cap_bytes(cap);
        }
    }

    /// Enqueues with per-flow bounded backlog; returns evicted payloads.
    pub fn enqueue_bounded(
        &mut self,
        flow: usize,
        payload: P,
        bytes: usize,
        now: f64,
        evictable: impl Fn(&P) -> bool,
    ) -> Vec<(P, f64)> {
        self.flows[flow].enqueue_bounded(payload, bytes, now, evictable)
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Total shared capacity in bits/second.
    pub fn capacity_bps(&self) -> f64 {
        self.capacity_bps
    }

    /// Enqueues onto flow `i`.
    pub fn enqueue(&mut self, flow: usize, payload: P, bytes: usize, now: f64) {
        self.flows[flow].enqueue(payload, bytes, now);
    }

    /// Backlog of one flow.
    pub fn backlog_bytes(&self, flow: usize) -> f64 {
        self.flows[flow].backlog_bytes()
    }

    /// Total backlog across flows.
    pub fn total_backlog_bytes(&self) -> f64 {
        self.flows.iter().map(Link::backlog_bytes).sum()
    }

    /// Transmits one epoch with max-min fair (water-filling) shares: unused
    /// share from light flows is redistributed to backlogged ones. Returns
    /// `(flow, delivered)` pairs.
    pub fn transmit(&mut self, now: f64, epoch_secs: f64) -> Vec<(usize, Delivered<P>)> {
        let mut budget_bytes = self.capacity_bps / 8.0 * epoch_secs;
        let mut out = Vec::new();
        // Water-filling: repeatedly split remaining budget across flows that
        // still have backlog.
        for _round in 0..self.flows.len() + 1 {
            let active: Vec<usize> = (0..self.flows.len())
                .filter(|&i| self.flows[i].backlog_bytes() > 1e-9)
                .collect();
            if active.is_empty() || budget_bytes <= 1e-9 {
                break;
            }
            let share = budget_bytes / active.len() as f64;
            for i in active {
                let before = self.flows[i].backlog_bytes();
                let granted = share.min(before);
                // Temporarily set capacity so the member link transmits
                // exactly its share this round.
                self.flows[i].set_capacity_bps(granted * 8.0 / epoch_secs);
                for d in self.flows[i].transmit(now, epoch_secs) {
                    out.push((i, d));
                }
                let sent = before - self.flows[i].backlog_bytes();
                budget_bytes -= sent;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_within_capacity() {
        let mut link: Link<u32> = Link::new(800.0); // 100 B/s
        link.enqueue(1, 60, 0.0);
        link.enqueue(2, 60, 0.0);
        let done = link.transmit(0.0, 1.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].payload, 1);
        assert!((done[0].completed_at - 0.6).abs() < 1e-9);
        assert!(
            (link.backlog_bytes() - 20.0).abs() < 1e-9,
            "partial progress kept"
        );
        let done2 = link.transmit(1.0, 1.0);
        assert_eq!(done2.len(), 1);
        assert!((done2[0].completed_at - 1.2).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_never_delivers() {
        let mut link: Link<u32> = Link::new(0.0);
        link.enqueue(1, 10, 0.0);
        assert!(link.transmit(0.0, 1.0).is_empty());
        assert_eq!(link.backlog_bytes(), 10.0);
    }

    #[test]
    fn byte_conservation() {
        let mut link: Link<u32> = Link::new(1000.0);
        for i in 0..10 {
            link.enqueue(i, 37, 0.0);
        }
        let mut delivered = 0.0;
        for e in 0..10 {
            delivered += link
                .transmit(e as f64, 1.0)
                .iter()
                .map(|d| d.bytes)
                .sum::<f64>();
        }
        assert!((delivered + link.backlog_bytes() - 370.0).abs() < 1e-9);
        assert_eq!(link.total_enqueued_bytes(), 370.0);
    }

    #[test]
    fn fair_link_splits_evenly_between_backlogged_flows() {
        let mut link: FairLink<u32> = FairLink::new(800.0, 2); // 100 B/s total
        link.enqueue(0, 1, 500, 0.0);
        link.enqueue(1, 2, 500, 0.0);
        link.transmit(0.0, 1.0);
        // Each flow got ~50 B of the 100 B budget.
        assert!((link.backlog_bytes(0) - 450.0).abs() < 1.0);
        assert!((link.backlog_bytes(1) - 450.0).abs() < 1.0);
    }

    #[test]
    fn bounded_backlog_evicts_oldest_evictable() {
        let mut link: Link<&str> = Link::new(800.0);
        link.set_backlog_cap_bytes(Some(100.0));
        assert!(link.enqueue_bounded("a", 60, 0.0, |_| true).is_empty());
        // "b" pushes the backlog to 120 > 100: "a" (oldest) is evicted.
        let evicted = link.enqueue_bounded("b", 60, 0.0, |_| true);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, "a");
        assert_eq!(link.backlog_bytes(), 60.0);
        assert_eq!(link.dropped_bytes(), 60.0);
    }

    #[test]
    fn eviction_skips_non_evictable_and_in_flight_payloads() {
        let mut link: Link<&str> = Link::new(800.0); // 100 B/s
        link.set_backlog_cap_bytes(Some(100.0));
        link.enqueue("state", 40, 0.0);
        // Transmit 100 B of the front payload? Only 40 queued; it fully
        // sends. Enqueue an in-flight candidate instead:
        link.enqueue("partial", 120, 0.0);
        link.transmit(0.0, 1.0); // "state" delivered, "partial" now mid-wire
        assert!(link.backlog_bytes() > 0.0);
        // A new payload exceeds the cap, but "partial" is in flight and the
        // predicate protects "keep": nothing evictable except the new one
        // itself... which is also protected. Nothing is dropped.
        let evicted = link.enqueue_bounded("keep", 80, 1.0, |p| *p == "absent");
        assert!(evicted.is_empty());
        assert_eq!(link.dropped_bytes(), 0.0);
    }

    #[test]
    fn fair_link_redistributes_unused_share() {
        let mut link: FairLink<u32> = FairLink::new(800.0, 2); // 100 B/s total
        link.enqueue(0, 1, 10, 0.0); // light flow
        link.enqueue(1, 2, 500, 0.0); // heavy flow
        link.transmit(0.0, 1.0);
        assert_eq!(link.backlog_bytes(0), 0.0);
        // Heavy flow got the remaining 90 B, not just its 50 B fair share.
        assert!((link.backlog_bytes(1) - 410.0).abs() < 1.0);
    }
}
