//! Virtual time.
//!
//! The emulator advances in fixed *epochs* (the paper uses 1-second epochs for
//! query refinement). All components read time from the shared clock so runs
//! are reproducible.

/// Epoch-granular virtual clock.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    epoch: u64,
    epoch_secs: f64,
}

impl VirtualClock {
    /// Creates a clock with the given epoch length in (virtual) seconds.
    pub fn new(epoch_secs: f64) -> VirtualClock {
        assert!(epoch_secs > 0.0, "epoch length must be positive");
        VirtualClock {
            epoch: 0,
            epoch_secs,
        }
    }

    /// Current epoch index (starts at 0).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Epoch length in seconds.
    pub fn epoch_secs(&self) -> f64 {
        self.epoch_secs
    }

    /// Virtual time at the *start* of the current epoch, in seconds.
    pub fn now_secs(&self) -> f64 {
        self.epoch as f64 * self.epoch_secs
    }

    /// Virtual time at the start of the current epoch, in microseconds.
    pub fn now_micros(&self) -> i64 {
        (self.now_secs() * 1e6).round() as i64
    }

    /// Advances to the next epoch and returns its index.
    pub fn advance(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_in_fixed_steps() {
        let mut c = VirtualClock::new(1.0);
        assert_eq!(c.now_secs(), 0.0);
        c.advance();
        c.advance();
        assert_eq!(c.epoch(), 2);
        assert_eq!(c.now_secs(), 2.0);
        assert_eq!(c.now_micros(), 2_000_000);
    }

    #[test]
    #[should_panic(expected = "epoch length must be positive")]
    fn rejects_zero_epoch() {
        VirtualClock::new(0.0);
    }
}
