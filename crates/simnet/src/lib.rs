//! `simnet` — deterministic multi-node emulation substrate.
//!
//! Stands in for the paper's EC2 testbed: nodes with fractional CPU budgets
//! (t2.micro data sources), bandwidth-limited links (the 10 Gbps stream
//! processor uplink, fairly shared), and a tree topology of data sources,
//! intermediate stream processors, and a root (paper Fig. 4b). Time advances
//! in epochs of virtual seconds; everything is seeded and reproducible.

pub mod clock;
pub mod latency;
pub mod link;
pub mod node;
pub mod topology;

pub use clock::VirtualClock;
pub use latency::LatencyStats;
pub use link::Link;
pub use node::{CpuBudget, Node, NodeId};
pub use topology::{NodeRole, Topology};
