//! Nodes with fractional CPU budgets.
//!
//! A data source grants the monitoring query only its *unused* compute
//! (paper §II-B): a fluctuating fraction of one or more cores. The budget is
//! drawn fresh each epoch with small multiplicative scheduling jitter — the
//! noise that forces the Jarvis runtime to debounce resource-change detection
//! over three epochs (§VI-C).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A CPU budget in fractions of a core (0.55 = 55 % of one core; 2.0 = two
/// full cores).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuBudget {
    /// Cores available to the monitoring workload.
    pub cores: f64,
}

impl CpuBudget {
    /// Budget as a fraction of a single core.
    pub fn fraction(frac: f64) -> CpuBudget {
        assert!(frac >= 0.0, "budget cannot be negative");
        CpuBudget { cores: frac }
    }

    /// Compute microseconds available in an epoch of `epoch_secs`.
    pub fn micros_per_epoch(&self, epoch_secs: f64) -> f64 {
        self.cores * epoch_secs * 1e6
    }
}

/// An emulated node: identity, budget, and per-epoch compute accounting.
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    budget: CpuBudget,
    jitter_frac: f64,
    rng: ChaCha8Rng,
    /// Compute µs remaining in the current epoch.
    remaining_us: f64,
    /// Compute µs granted this epoch (after jitter).
    granted_us: f64,
    /// Total compute µs consumed over the run.
    consumed_us: f64,
}

impl Node {
    /// Creates a node. `jitter_frac` is the half-width of the uniform
    /// multiplicative noise on the per-epoch budget (e.g. 0.02 = ±2 %).
    pub fn new(id: NodeId, budget: CpuBudget, jitter_frac: f64, seed: u64) -> Node {
        Node {
            id,
            budget,
            jitter_frac,
            rng: ChaCha8Rng::seed_from_u64(seed ^ u64::from(id.0).wrapping_mul(0x9E37_79B9)),
            remaining_us: 0.0,
            granted_us: 0.0,
            consumed_us: 0.0,
        }
    }

    /// Node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Nominal budget.
    pub fn budget(&self) -> CpuBudget {
        self.budget
    }

    /// Changes the nominal budget (resource-condition change experiments).
    pub fn set_budget(&mut self, budget: CpuBudget) {
        self.budget = budget;
    }

    /// Starts a new epoch: grants jittered budget.
    pub fn begin_epoch(&mut self, epoch_secs: f64) {
        let noise = if self.jitter_frac > 0.0 {
            1.0 + self.rng.gen_range(-self.jitter_frac..=self.jitter_frac)
        } else {
            1.0
        };
        self.granted_us = self.budget.micros_per_epoch(epoch_secs) * noise;
        self.remaining_us = self.granted_us;
    }

    /// Compute µs still available this epoch.
    pub fn remaining_us(&self) -> f64 {
        self.remaining_us
    }

    /// Compute µs granted this epoch.
    pub fn granted_us(&self) -> f64 {
        self.granted_us
    }

    /// Total consumed over the run.
    pub fn consumed_us(&self) -> f64 {
        self.consumed_us
    }

    /// Utilisation this epoch so far, in `[0, 1]`.
    pub fn epoch_utilisation(&self) -> f64 {
        if self.granted_us <= 0.0 {
            return 1.0;
        }
        1.0 - self.remaining_us / self.granted_us
    }

    /// Charges `us` if fully available; returns false (charging nothing) when
    /// the epoch budget cannot cover it.
    pub fn try_charge(&mut self, us: f64) -> bool {
        if us <= self.remaining_us {
            self.remaining_us -= us;
            self.consumed_us += us;
            true
        } else {
            false
        }
    }

    /// Charges up to `us`, returning the amount actually charged.
    pub fn charge_upto(&mut self, us: f64) -> f64 {
        let take = us.min(self.remaining_us).max(0.0);
        self.remaining_us -= take;
        self.consumed_us += take;
        take
    }

    /// How many whole items of `unit_us` each can still be processed.
    pub fn affordable(&self, unit_us: f64) -> usize {
        if unit_us <= 0.0 {
            usize::MAX
        } else {
            (self.remaining_us / unit_us).floor().max(0.0) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_converts_to_micros() {
        let b = CpuBudget::fraction(0.8);
        assert_eq!(b.micros_per_epoch(1.0), 800_000.0);
        assert_eq!(b.micros_per_epoch(2.0), 1_600_000.0);
    }

    #[test]
    fn charging_respects_epoch_budget() {
        let mut n = Node::new(NodeId(1), CpuBudget::fraction(0.5), 0.0, 42);
        n.begin_epoch(1.0);
        assert_eq!(n.remaining_us(), 500_000.0);
        assert!(n.try_charge(400_000.0));
        assert!(!n.try_charge(200_000.0));
        assert_eq!(n.charge_upto(200_000.0), 100_000.0);
        assert_eq!(n.remaining_us(), 0.0);
        assert!((n.epoch_utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let mut a = Node::new(NodeId(2), CpuBudget::fraction(1.0), 0.05, 7);
        let mut b = Node::new(NodeId(2), CpuBudget::fraction(1.0), 0.05, 7);
        for _ in 0..50 {
            a.begin_epoch(1.0);
            b.begin_epoch(1.0);
            assert_eq!(a.granted_us(), b.granted_us(), "same seed, same draw");
            assert!(a.granted_us() >= 950_000.0 - 1e-6);
            assert!(a.granted_us() <= 1_050_000.0 + 1e-6);
        }
    }

    #[test]
    fn affordable_counts_units() {
        let mut n = Node::new(NodeId(3), CpuBudget::fraction(0.1), 0.0, 1);
        n.begin_epoch(1.0);
        assert_eq!(n.affordable(10.0), 10_000);
        assert_eq!(n.affordable(0.0), usize::MAX);
    }

    #[test]
    fn budget_change_takes_effect_next_epoch() {
        let mut n = Node::new(NodeId(4), CpuBudget::fraction(0.1), 0.0, 1);
        n.begin_epoch(1.0);
        assert_eq!(n.remaining_us(), 100_000.0);
        n.set_budget(CpuBudget::fraction(0.9));
        assert_eq!(n.remaining_us(), 100_000.0, "current epoch unchanged");
        n.begin_epoch(1.0);
        assert_eq!(n.remaining_us(), 900_000.0);
    }
}
