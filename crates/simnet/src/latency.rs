//! Latency statistics.
//!
//! The paper reports epoch-processing latency (median 500 ms vs 1800 ms,
//! max 2 s vs 5 s, §VI-E) under a 5-second latency bound. Samples are kept
//! exactly up to a cap and then uniformly thinned, which preserves quantile
//! estimates for the smooth latency distributions the emulator produces.

/// Online latency sample collector with quantile queries.
#[derive(Debug, Clone)]
pub struct LatencyStats {
    samples: Vec<f64>,
    cap: usize,
    /// Every `stride`-th sample is kept once thinning starts.
    stride: usize,
    seen: u64,
    max: f64,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats::with_capacity(65_536)
    }
}

impl LatencyStats {
    /// Creates a collector that keeps at most `cap` samples.
    pub fn with_capacity(cap: usize) -> LatencyStats {
        assert!(cap > 1, "capacity must exceed 1");
        LatencyStats {
            samples: Vec::new(),
            cap,
            stride: 1,
            seen: 0,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one latency sample (seconds).
    pub fn record(&mut self, latency_secs: f64) {
        self.seen += 1;
        if latency_secs > self.max {
            self.max = latency_secs;
        }
        if !self.seen.is_multiple_of(self.stride as u64) {
            return;
        }
        if self.samples.len() >= self.cap {
            // Thin: drop every other retained sample, double the stride.
            let mut keep = Vec::with_capacity(self.cap / 2 + 1);
            for (i, v) in self.samples.iter().enumerate() {
                if i % 2 == 0 {
                    keep.push(*v);
                }
            }
            self.samples = keep;
            self.stride *= 2;
        }
        self.samples.push(latency_secs);
    }

    /// Number of samples observed (not retained).
    pub fn count(&self) -> u64 {
        self.seen
    }

    /// Maximum latency seen (exact).
    pub fn max(&self) -> Option<f64> {
        if self.seen == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Quantile estimate over retained samples, `q ∈ [0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
        let idx = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[idx])
    }

    /// Median latency.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = LatencyStats::with_capacity(100);
        for v in 1..=9 {
            s.record(v as f64);
        }
        assert_eq!(s.median(), Some(5.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 9);
    }

    #[test]
    fn thinning_keeps_quantiles_close() {
        let mut s = LatencyStats::with_capacity(128);
        for i in 0..100_000 {
            s.record((i % 1000) as f64 / 1000.0);
        }
        let med = s.median().unwrap();
        assert!((med - 0.5).abs() < 0.1, "median after thinning: {med}");
        assert_eq!(s.max(), Some(0.999), "max stays exact");
    }

    #[test]
    fn empty_stats_are_none() {
        let s = LatencyStats::default();
        assert_eq!(s.median(), None);
        assert_eq!(s.max(), None);
    }
}
