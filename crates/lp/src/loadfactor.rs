//! The Jarvis load-factor LP (paper Eq. 3).
//!
//! Given per-operator relay ratios `r_i` (output/input data size), per-record
//! costs `c_i`, the per-epoch record count `Nr` and the compute budget `C`,
//! choose effective load factors `e_i = Π_{j≤i} p_j` minimising total drained
//! data:
//!
//! ```text
//! min  Σ_i (Π_{j<i} r_j) · (e_{i−1} − e_i)
//! s.t. Σ_i (Π_{j<i} r_j) · e_i · c_i ≤ C / Nr
//!      0 ≤ e_i ≤ e_{i−1},  e_0 = 1
//! ```
//!
//! The solution is mapped back to per-proxy load factors `p_i = e_i / e_{i−1}`.

use serde::{Deserialize, Serialize};

use crate::simplex::{LinearProgram, LpError, LpsolveStatus};

/// Inputs to the load-factor LP, all in per-epoch units.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadFactorProblem {
    /// Relay ratio of each operator (output bytes / input bytes), in `[0, ∞)`
    /// (values above 1 are clamped to 1 for the objective's telescoping form,
    /// matching the paper's `0 ≤ r_i ≤ 1` assumption).
    pub relay: Vec<f64>,
    /// Per-record compute cost of each operator, µs.
    pub cost_us: Vec<f64>,
    /// Records entering the query this epoch (`Nr`).
    pub records: f64,
    /// Compute budget for the epoch, µs (`C`).
    pub budget_us: f64,
}

/// The LP's output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadFactorSolution {
    /// Effective load factors `e_i`, one per operator.
    pub effective: Vec<f64>,
    /// Per-proxy load factors `p_i = e_i / e_{i−1}` (1.0 where the chain is
    /// already fully drained upstream).
    pub load_factors: Vec<f64>,
    /// Predicted drained fraction of the input data volume (the objective).
    pub drained_fraction: f64,
    /// Predicted compute use as a fraction of the budget.
    pub budget_use: f64,
}

/// Solves the LP. Returns an error only on malformed input; an infeasibly
/// small budget simply yields all-zero load factors (everything drains to the
/// stream processor — the paper's Startup state).
pub fn solve_load_factors(problem: &LoadFactorProblem) -> Result<LoadFactorSolution, LpError> {
    let m = problem.relay.len();
    assert_eq!(m, problem.cost_us.len(), "relay/cost length mismatch");
    if m == 0 {
        return Ok(LoadFactorSolution {
            effective: Vec::new(),
            load_factors: Vec::new(),
            drained_fraction: 0.0,
            budget_use: 0.0,
        });
    }

    // R[i] = Π_{j<i} r_j for i in 0..m (R[0] = 1).
    let mut relay_prefix = Vec::with_capacity(m);
    let mut acc = 1.0;
    for r in &problem.relay {
        relay_prefix.push(acc);
        acc *= r.clamp(0.0, 1.0);
    }

    // Objective: Σ R[i-1]·(e_{i-1} − e_i) telescopes to
    //   R[0]·e_0 + Σ_{i=1..m-1} (R[i] − R[i-1])·e_i − R[m-1]·e_m.
    // e_0 = 1 is constant; minimise the e-dependent part.
    let mut objective = vec![0.0; m];
    for i in 0..m {
        // Weight of e_{i+1-th variable} (variable index i corresponds to e_{i+1}).
        let r_before = relay_prefix[i];
        let r_after = if i + 1 < m { relay_prefix[i + 1] } else { 0.0 };
        // Coefficient of e_{i+1}: (R[i+1] − R[i]) for interior, −R[m−1] for last.
        objective[i] = if i + 1 < m {
            r_after - r_before
        } else {
            -r_before
        };
        // Tiny tie-break favouring higher load factors: when several vertices
        // drain the same byte volume (e.g. an operator with relay ratio 1
        // makes its own e coefficient zero), prefer processing locally — the
        // choice the paper's deployments make for cheap upstream operators.
        objective[i] -= 1e-6;
    }

    let budget_rhs = if problem.records > 0.0 {
        (problem.budget_us / problem.records).max(0.0)
    } else {
        f64::INFINITY
    };

    let mut lp = LinearProgram::minimize(objective.clone());
    // Chain: e_1 ≤ 1; e_{i+1} − e_i ≤ 0.
    let mut first = vec![0.0; m];
    first[0] = 1.0;
    lp = lp.leq(first, 1.0);
    for i in 1..m {
        let mut row = vec![0.0; m];
        row[i] = 1.0;
        row[i - 1] = -1.0;
        lp = lp.leq(row, 0.0);
    }
    // Knapsack: Σ R[i]·c_i·e_i ≤ C/Nr (skip when the budget is unlimited).
    if budget_rhs.is_finite() {
        let coeffs: Vec<f64> = (0..m)
            .map(|i| relay_prefix[i] * problem.cost_us[i].max(0.0))
            .collect();
        lp = lp.leq(coeffs, budget_rhs);
    }

    let sol = lp.solve()?;
    debug_assert_eq!(
        sol.status,
        LpsolveStatus::Optimal,
        "bounded by construction"
    );

    let mut effective: Vec<f64> = sol.x.iter().map(|v| v.clamp(0.0, 1.0)).collect();
    // Enforce the chain exactly despite float noise.
    for i in 1..m {
        if effective[i] > effective[i - 1] {
            effective[i] = effective[i - 1];
        }
    }

    let mut load_factors = Vec::with_capacity(m);
    let mut prev = 1.0;
    for &e in &effective {
        let p = if prev <= 1e-12 {
            1.0
        } else {
            (e / prev).clamp(0.0, 1.0)
        };
        load_factors.push(p);
        prev = e;
    }

    // Drained fraction: Σ R[i-1]·(e_{i-1} − e_i) with e_0 = 1.
    let mut drained = 0.0;
    let mut prev = 1.0;
    for i in 0..m {
        drained += relay_prefix[i] * (prev - effective[i]);
        prev = effective[i];
    }

    let used_us: f64 = (0..m)
        .map(|i| relay_prefix[i] * effective[i] * problem.cost_us[i] * problem.records)
        .sum();
    let budget_use = if problem.budget_us > 0.0 {
        used_us / problem.budget_us
    } else {
        0.0
    };

    Ok(LoadFactorSolution {
        effective,
        load_factors,
        drained_fraction: drained,
        budget_use,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn ample_budget_processes_everything_locally() {
        let p = LoadFactorProblem {
            relay: vec![1.0, 0.86, 0.3],
            cost_us: vec![0.1, 3.4, 24.0],
            records: 40_000.0,
            budget_us: 2_000_000.0, // two cores: plenty
        };
        let sol = solve_load_factors(&p).unwrap();
        assert!(
            sol.load_factors.iter().all(|&lf| close(lf, 1.0, 1e-6)),
            "{sol:?}"
        );
        assert!(close(sol.drained_fraction, 0.0, 1e-6));
    }

    #[test]
    fn zero_budget_drains_everything() {
        let p = LoadFactorProblem {
            relay: vec![1.0, 0.86],
            cost_us: vec![0.1, 3.4],
            records: 40_000.0,
            budget_us: 0.0,
        };
        let sol = solve_load_factors(&p).unwrap();
        assert!(sol.effective.iter().all(|&e| close(e, 0.0, 1e-9)));
        assert!(close(sol.drained_fraction, 1.0, 1e-9));
    }

    #[test]
    fn fig3_operating_point_is_recovered() {
        // Paper Fig. 3(b): 80% of one core, W≈free, F=13% at full rate,
        // G+R=80% for all of F's output. Two vertices are near-degenerate
        // here: the paper's plan (run W+F fully, G+R on ~83%) drains 14.2% of
        // the input volume; draining ~14.2% raw upfront is marginally
        // cheaper. Either way the optimal drained fraction is ≈ 0.142 and
        // the budget is saturated — which is what Fig. 3(b)'s 9.4 Mbps vs
        // 22.5 Mbps comparison rests on.
        let records = 40_000.0;
        let p = LoadFactorProblem {
            relay: vec![1.0, 0.86, 0.3],
            // Costs chosen so F totals 13% of a core and G+R totals 80% of a
            // core when processing all 0.86·Nr records.
            cost_us: vec![0.05, 130_000.0 / records, 800_000.0 / (0.86 * records)],
            records,
            budget_us: 800_000.0,
        };
        let sol = solve_load_factors(&p).unwrap();
        assert!(close(sol.drained_fraction, 0.1416, 0.003), "{sol:?}");
        assert!(
            close(sol.budget_use, 1.0, 1e-6),
            "budget saturated: {sol:?}"
        );
        // G+R processes the lion's share of its input locally.
        assert!(sol.effective[2] > 0.8, "{sol:?}");
    }

    #[test]
    fn strong_filters_run_fully_before_any_drain() {
        // When the filter reduces volume sharply (relay 0.3), draining after
        // it is much cheaper than draining raw, so W and F must run on all
        // records.
        let p = LoadFactorProblem {
            relay: vec![1.0, 0.3, 0.5],
            cost_us: vec![0.05, 3.0, 30.0],
            records: 40_000.0,
            budget_us: 400_000.0,
        };
        let sol = solve_load_factors(&p).unwrap();
        assert!(close(sol.load_factors[0], 1.0, 1e-6), "{sol:?}");
        assert!(close(sol.load_factors[1], 1.0, 1e-6), "{sol:?}");
        assert!(sol.load_factors[2] < 1.0);
    }

    #[test]
    fn effective_factors_form_a_chain() {
        let p = LoadFactorProblem {
            relay: vec![0.9, 0.5, 0.8, 0.2],
            cost_us: vec![1.0, 5.0, 2.0, 9.0],
            records: 10_000.0,
            budget_us: 50_000.0,
        };
        let sol = solve_load_factors(&p).unwrap();
        let mut prev = 1.0;
        for &e in &sol.effective {
            assert!(e <= prev + 1e-9);
            prev = e;
        }
    }

    #[test]
    fn lp_beats_naive_uniform_split_on_drained_data() {
        // The LP should never drain more than the uniform-p heuristic that
        // spends the same budget.
        let p = LoadFactorProblem {
            relay: vec![1.0, 0.86, 0.3],
            cost_us: vec![0.05, 3.25, 23.3],
            records: 40_000.0,
            budget_us: 400_000.0,
        };
        let sol = solve_load_factors(&p).unwrap();
        // Uniform heuristic: one scalar u = p₁ = p₂ = p₃, so e = (u, u², u³).
        // Its compute cost is Nr·(c₁·u + R₁·c₂·u² + R₂·c₃·u³) with R₁ = r₁,
        // R₂ = r₁·r₂; binary-search the largest feasible u.
        let cost = |u: f64| 40_000.0 * (0.05 * u + 3.25 * u * u + 0.86 * 23.3 * u * u * u);
        let (mut lo, mut hi) = (0.0, 1.0);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if cost(mid) > 400_000.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let u = lo;
        let drained_uniform = (1.0 - u) + (u - u * u) + 0.86 * (u * u - u * u * u);
        assert!(sol.drained_fraction <= drained_uniform + 1e-6);
    }
}
