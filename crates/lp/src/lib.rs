//! `jarvis-lp` — a small dense linear-program solver and the Jarvis
//! load-factor LP.
//!
//! The paper transforms its non-convex data-level partitioning problem
//! (Eq. 2) into a linear program over *effective* load factors
//! `e_i = Π_{j≤i} p_j` (Eq. 3). Problem sizes are tiny (one variable per
//! operator), so a dense two-phase simplex is exact and fast. The
//! [`loadfactor`] module builds and solves Eq. 3 and recovers per-proxy load
//! factors.

pub mod loadfactor;
pub mod simplex;

pub use loadfactor::{solve_load_factors, LoadFactorProblem, LoadFactorSolution};
pub use simplex::{LinearProgram, LpError, LpsolveStatus, Solution};
