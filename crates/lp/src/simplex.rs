//! Dense primal simplex for small LPs.
//!
//! Solves `minimize c·x  subject to  A·x ≤ b, x ≥ 0` with `b ≥ 0`, which is
//! exactly the shape of the Jarvis load-factor LP (Eq. 3): chain constraints
//! `e_i − e_{i−1} ≤ 0`, the bound `e_1 ≤ 1`, and one knapsack row — all with
//! non-negative right-hand sides, so the all-slack basis is feasible and no
//! phase-1 is needed. Bland's rule guarantees termination.

use serde::{Deserialize, Serialize};

/// Solver outcome status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpsolveStatus {
    /// Optimal solution found.
    Optimal,
    /// Objective unbounded below.
    Unbounded,
}

/// Solver errors (malformed input).
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A right-hand side was negative (phase-1 not implemented; the Jarvis
    /// LP never needs it).
    NegativeRhs {
        /// Constraint row index.
        row: usize,
        /// The negative right-hand side.
        value: f64,
    },
    /// Constraint row width does not match the objective.
    ShapeMismatch {
        /// Constraint row index.
        row: usize,
        /// Objective width.
        expected: usize,
        /// The row's width.
        got: usize,
    },
    /// Iteration limit exceeded (defensive; should not occur with Bland).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::NegativeRhs { row, value } => {
                write!(f, "constraint {row} has negative rhs {value}")
            }
            LpError::ShapeMismatch { row, expected, got } => {
                write!(
                    f,
                    "constraint {row} has {got} coefficients, expected {expected}"
                )
            }
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An LP in the supported canonical form.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    /// Objective coefficients (minimised).
    pub objective: Vec<f64>,
    /// Constraints as `(coefficients, rhs)` meaning `coeffs · x ≤ rhs`.
    pub constraints: Vec<(Vec<f64>, f64)>,
}

/// A solved LP.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Status.
    pub status: LpsolveStatus,
    /// Primal solution (zeros when unbounded).
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
}

impl LinearProgram {
    /// Creates an LP minimising `objective`.
    pub fn minimize(objective: Vec<f64>) -> LinearProgram {
        LinearProgram {
            objective,
            constraints: Vec::new(),
        }
    }

    /// Adds `coeffs · x ≤ rhs`.
    pub fn leq(mut self, coeffs: Vec<f64>, rhs: f64) -> LinearProgram {
        self.constraints.push((coeffs, rhs));
        self
    }

    /// Solves the LP.
    pub fn solve(&self) -> Result<Solution, LpError> {
        let n = self.objective.len();
        let m = self.constraints.len();
        for (row, (coeffs, rhs)) in self.constraints.iter().enumerate() {
            if coeffs.len() != n {
                return Err(LpError::ShapeMismatch {
                    row,
                    expected: n,
                    got: coeffs.len(),
                });
            }
            if *rhs < 0.0 {
                return Err(LpError::NegativeRhs { row, value: *rhs });
            }
        }

        // Tableau: m rows × (n structural + m slack + 1 rhs), plus objective
        // row (maximise -c·x ⇒ standard max simplex on z = -c).
        let width = n + m + 1;
        let mut tab = vec![vec![0.0f64; width]; m + 1];
        for (i, (coeffs, rhs)) in self.constraints.iter().enumerate() {
            tab[i][..n].copy_from_slice(coeffs);
            tab[i][n + i] = 1.0;
            tab[i][width - 1] = *rhs;
        }
        // Maximisation convention: maximise z = -c·x; optimal when every
        // objective-row coefficient is ≤ 0.
        for (cell, obj) in tab[m][..n].iter_mut().zip(&self.objective) {
            *cell = -obj;
        }
        let mut basis: Vec<usize> = (n..n + m).collect();

        const EPS: f64 = 1e-9;
        let max_iters = 50 * (n + m + 1);
        for _ in 0..max_iters {
            // Entering: lowest index with positive coefficient (Bland).
            let Some(enter) = (0..n + m).find(|&j| tab[m][j] > EPS) else {
                // Optimal.
                let mut x = vec![0.0; n];
                for (i, &b) in basis.iter().enumerate() {
                    if b < n {
                        x[b] = tab[i][width - 1];
                    }
                }
                let objective = self.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
                return Ok(Solution {
                    status: LpsolveStatus::Optimal,
                    x,
                    objective,
                });
            };
            // Leaving: min ratio; Bland tie-break on lowest basis index.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                if tab[i][enter] > EPS {
                    let ratio = tab[i][width - 1] / tab[i][enter];
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS && leave.is_none_or(|l| basis[i] < basis[l]));
                    if better {
                        best_ratio = ratio.min(best_ratio);
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return Ok(Solution {
                    status: LpsolveStatus::Unbounded,
                    x: vec![0.0; n],
                    objective: f64::NEG_INFINITY,
                });
            };
            // Pivot.
            let piv = tab[leave][enter];
            for v in &mut tab[leave] {
                *v /= piv;
            }
            // One pivot-row copy per iteration keeps the elimination loop
            // allocation-free per row (problem sizes here are tiny, but the
            // solver sits inside every LP-init/adapt step).
            let pivot_row = tab[leave].clone();
            for (i, row) in tab.iter_mut().enumerate() {
                if i != leave {
                    let factor = row[enter];
                    if factor.abs() > EPS {
                        for (cell, piv_cell) in row.iter_mut().zip(&pivot_row) {
                            *cell -= factor * piv_cell;
                        }
                    }
                }
            }
            basis[leave] = enter;
        }
        Err(LpError::IterationLimit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn textbook_maximisation_as_minimisation() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj=36.
        let lp = LinearProgram::minimize(vec![-3.0, -5.0])
            .leq(vec![1.0, 0.0], 4.0)
            .leq(vec![0.0, 2.0], 12.0)
            .leq(vec![3.0, 2.0], 18.0);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status, LpsolveStatus::Optimal);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 6.0);
        assert_close(sol.objective, -36.0);
    }

    #[test]
    fn unbounded_detected() {
        let lp = LinearProgram::minimize(vec![-1.0]); // max x, no constraints
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status, LpsolveStatus::Unbounded);
    }

    #[test]
    fn degenerate_zero_budget() {
        // min -(e1) s.t. e1 ≤ 1, c·e1 ≤ 0 → e1 = 0.
        let lp = LinearProgram::minimize(vec![-1.0])
            .leq(vec![1.0], 1.0)
            .leq(vec![5.0], 0.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.x[0], 0.0);
    }

    #[test]
    fn negative_rhs_is_rejected() {
        let lp = LinearProgram::minimize(vec![1.0]).leq(vec![1.0], -1.0);
        assert!(matches!(lp.solve(), Err(LpError::NegativeRhs { .. })));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let lp = LinearProgram::minimize(vec![1.0, 2.0]).leq(vec![1.0], 1.0);
        assert!(matches!(lp.solve(), Err(LpError::ShapeMismatch { .. })));
    }

    #[test]
    fn chain_plus_knapsack_structure() {
        // The Jarvis LP shape: maximise weighted e's under a chain + budget.
        // min -(0.5·e1 + 1.0·e2) s.t. e1 ≤ 1, e2 − e1 ≤ 0, 2e1 + 6e2 ≤ 3.
        // Value per unit budget: e1 gives 0.5/2 = 0.25, e2 gives 1/6 ≈ 0.17,
        // so the optimum saturates e1 first: e1 = 1, e2 = 1/6.
        let lp = LinearProgram::minimize(vec![-0.5, -1.0])
            .leq(vec![1.0, 0.0], 1.0)
            .leq(vec![-1.0, 1.0], 0.0)
            .leq(vec![2.0, 6.0], 3.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.x[0], 1.0);
        assert_close(sol.x[1], 1.0 / 6.0);
        assert_close(sol.objective, -(0.5 + 1.0 / 6.0));
    }
}
