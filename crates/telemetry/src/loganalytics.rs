//! Synthetic LogAnalytics text streams (paper §VI-A, Listing 3).
//!
//! Unstructured log lines carrying per-tenant analytics-job statistics —
//! tenant name, job running time (ms), CPU and memory utilisation — mixed
//! with non-matching noise lines. The default rate follows the paper's
//! derivation from [11]: 10s of PB/day over 200 K nodes ⇒ 0.62 MB/s
//! (4.96 Mbps) per node, scaled 10× for experiments.

use bytes::Bytes;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use streamkit::batch::{layout, Batch, Column};
use streamkit::record::Record;
use streamkit::schema::{DataType, Field, Schema, SchemaRef};
use streamkit::time::Ts;

use crate::anomaly::AnomalySchedule;

/// The patterns from Listing 3.
pub const LOG_PATTERNS: [&str; 4] = ["tenant name", "job running time", "cpu util", "memory util"];

/// Stat names embedded in matching lines.
pub const STAT_NAMES: [&str; 3] = ["job running time", "cpu util", "memory util"];

/// Single-column schema holding the raw line.
pub fn log_schema() -> SchemaRef {
    Schema::new(vec![Field::new("line", DataType::Str)])
}

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogConfig {
    /// Data rate in bytes/second before scaling (paper: 0.62 MB/s).
    pub bytes_per_sec: f64,
    /// Rate scaling (paper uses 10×).
    pub scale: f64,
    /// Fraction of lines that match the Listing 3 patterns (the paper notes a
    /// *low filter-out rate*, so most lines match).
    pub match_rate: f64,
    /// Number of distinct tenants.
    pub tenants: u32,
    /// Error/traffic-burst schedule: active windows multiply the line rate.
    pub bursts: AnomalySchedule,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            bytes_per_sec: 0.62 * 1024.0 * 1024.0,
            scale: 1.0,
            match_rate: 0.75,
            tenants: 200,
            bursts: AnomalySchedule::none(),
            seed: 0xF00D,
        }
    }
}

impl LogConfig {
    /// Effective data rate in bits/second (before bursts).
    pub fn bits_per_sec(&self) -> f64 {
        self.bytes_per_sec * self.scale * 8.0
    }
}

/// Deterministic log-line generator.
#[derive(Debug, Clone)]
pub struct LogGenerator {
    cfg: LogConfig,
    rng: ChaCha8Rng,
    carry_bytes: f64,
    seq: u64,
}

impl LogGenerator {
    /// Creates a generator.
    pub fn new(cfg: LogConfig) -> LogGenerator {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        LogGenerator {
            cfg,
            rng,
            carry_bytes: 0.0,
            seq: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LogConfig {
        &self.cfg
    }

    fn matching_line(&mut self) -> String {
        let tenant = self.rng.gen_range(0..self.cfg.tenants);
        let stat = STAT_NAMES[(self.seq % STAT_NAMES.len() as u64) as usize];
        let value: f64 = match stat {
            "job running time" => self.rng.gen_range(20.0..30_000.0),
            _ => self.rng.gen_range(0.0..100.0),
        };
        format!(
            "level=INFO job={} tenant name=tenant-{tenant}, {stat}={value:.1}, host=h{}",
            self.seq,
            self.seq % 97
        )
    }

    fn noise_line(&mut self) -> String {
        const KINDS: [&str; 3] = ["heartbeat ok", "gc pause", "scheduler tick"];
        format!(
            "level=DEBUG {} node=n{} seq={}",
            KINDS[(self.seq % 3) as usize],
            self.seq % 131,
            self.seq
        )
    }

    /// Generates one epoch of log lines starting at `epoch_start` (µs),
    /// directly in columnar form (one string column, bytes appended in
    /// place).
    pub fn generate_epoch_batch(&mut self, epoch_start: Ts, epoch_secs: f64) -> Batch {
        let t_s = epoch_start as f64 / 1e6;
        let burst = self
            .cfg
            .bursts
            .windows
            .iter()
            .filter(|w| w.active_at(t_s))
            .map(|w| w.severity)
            .fold(1.0_f64, f64::max);
        let mut budget =
            self.cfg.bytes_per_sec * self.cfg.scale * burst * epoch_secs + self.carry_bytes;
        // Lines average ~90 B; emit until the byte budget for the epoch runs
        // out, spreading timestamps evenly by bytes emitted.
        let total_budget = budget;
        let schema = log_schema();
        let per_row_envelope = layout::row_envelope(&schema);
        let mut timestamps = Vec::new();
        let mut offsets: Vec<u32> = vec![0];
        let mut data: Vec<u8> = Vec::new();
        while budget > 0.0 {
            let line = if self.rng.gen_bool(self.cfg.match_rate) {
                self.matching_line()
            } else {
                self.noise_line()
            };
            self.seq += 1;
            let frac = 1.0 - budget / total_budget;
            let ts = epoch_start + (frac * epoch_secs * 1e6) as Ts;
            let size = (per_row_envelope + layout::str_bytes(line.len())) as f64;
            if size > budget {
                // Not enough budget left for this line: carry the remainder.
                self.carry_bytes = budget;
                // Undo: the line is dropped, not carried (rates stay exact in
                // expectation; line boundaries never split).
                break;
            }
            budget -= size;
            timestamps.push(ts);
            data.extend_from_slice(line.as_bytes());
            offsets.push(data.len() as u32);
        }
        if budget <= 0.0 {
            self.carry_bytes = 0.0;
        }
        Batch {
            schema,
            timestamps,
            columns: vec![Column::Str {
                offsets,
                data: Bytes::from(data),
            }],
        }
    }

    /// Row-oriented view of [`LogGenerator::generate_epoch_batch`].
    pub fn generate_epoch(&mut self, epoch_start: Ts, epoch_secs: f64) -> Vec<Record> {
        self.generate_epoch_batch(epoch_start, epoch_secs)
            .to_records()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamkit::record::wire_size_of;

    #[test]
    fn rate_matches_paper_arithmetic() {
        let cfg = LogConfig::default();
        let mbps = cfg.bits_per_sec() / (1 << 20) as f64;
        assert!((mbps - 4.96).abs() < 0.01, "mbps={mbps}");
    }

    #[test]
    fn epoch_bytes_track_configured_rate() {
        let cfg = LogConfig {
            scale: 10.0,
            ..Default::default()
        };
        let target = cfg.bytes_per_sec * cfg.scale;
        let mut g = LogGenerator::new(cfg);
        let schema = log_schema();
        let mut total = 0usize;
        for e in 0..20 {
            total += wire_size_of(&g.generate_epoch(e * 1_000_000, 1.0), &schema);
        }
        let per_epoch = total as f64 / 20.0;
        assert!(
            (per_epoch - target).abs() / target < 0.02,
            "per_epoch={per_epoch} target={target}"
        );
    }

    #[test]
    fn match_rate_is_respected() {
        let mut g = LogGenerator::new(LogConfig::default());
        let recs = g.generate_epoch(0, 1.0);
        let matching = recs
            .iter()
            .filter(|r| {
                let line = r.values[0].as_str().unwrap();
                LOG_PATTERNS.iter().any(|p| line.contains(p))
            })
            .count();
        let rate = matching as f64 / recs.len() as f64;
        assert!((rate - 0.75).abs() < 0.03, "rate={rate}");
    }

    #[test]
    fn matching_lines_parse_into_job_stats() {
        use streamkit::ops::MapFn;
        let mut g = LogGenerator::new(LogConfig::default());
        let recs = g.generate_epoch(0, 0.1);
        let parse = MapFn::ParseJobStats {
            col: 0,
            stats: STAT_NAMES.iter().map(|s| s.to_string()).collect(),
        };
        let lower = MapFn::TrimLower(0);
        let mut parsed = 0;
        for r in &recs {
            let normalised = lower.apply(r).unwrap();
            if let Some(out) = parse.apply(&normalised) {
                parsed += 1;
                assert!(out.values[0].as_str().unwrap().starts_with("tenant-"));
                assert!(out.values[2].as_f64().is_some());
            }
        }
        assert!(parsed > 0, "at least some lines must parse");
    }

    #[test]
    fn bursts_scale_the_rate() {
        let cfg = LogConfig {
            bursts: AnomalySchedule::single(0.0, 10.0, 1.0, 3.0),
            ..Default::default()
        };
        let quiet_cfg = LogConfig::default();
        let mut bursty = LogGenerator::new(cfg);
        let mut quiet = LogGenerator::new(quiet_cfg);
        let b = bursty.generate_epoch(0, 1.0).len();
        let q = quiet.generate_epoch(0, 1.0).len();
        assert!(b as f64 > 2.5 * q as f64, "burst {b} vs quiet {q}");
    }

    #[test]
    fn generation_is_deterministic() {
        let mk = || LogGenerator::new(LogConfig::default()).generate_epoch(0, 0.5);
        assert_eq!(mk(), mk());
    }
}
