//! Synthetic LogAnalytics text streams (paper §VI-A, Listing 3).
//!
//! Unstructured log lines carrying per-tenant analytics-job statistics —
//! tenant name, job running time (ms), CPU and memory utilisation — mixed
//! with non-matching noise lines. The default rate follows the paper's
//! derivation from \[11\]: 10s of PB/day over 200 K nodes ⇒ 0.62 MB/s
//! (4.96 Mbps) per node, scaled 10× for experiments.

use std::sync::Arc;

use bytes::Bytes;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use streamkit::batch::{layout, Batch, Column, StrDict, StreamDict};
use streamkit::record::Record;
use streamkit::schema::{DataType, Field, Schema, SchemaRef};
use streamkit::time::Ts;

use crate::anomaly::AnomalySchedule;

/// The patterns from Listing 3.
pub const LOG_PATTERNS: [&str; 4] = ["tenant name", "job running time", "cpu util", "memory util"];

/// Stat names embedded in matching lines.
pub const STAT_NAMES: [&str; 3] = ["job running time", "cpu util", "memory util"];

/// Single-column schema holding the raw line.
pub fn log_schema() -> SchemaRef {
    Schema::new(vec![Field::new("line", DataType::Str)])
}

/// Post-parse schema of the LogAnalytics stream — what `ParseJobStats`
/// produces from the raw lines: `(tenant, stat_name, stat)`.
pub fn structured_log_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("tenant", DataType::Str),
        Field::new("stat_name", DataType::Str),
        Field::new("stat", DataType::F64),
    ])
}

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogConfig {
    /// Data rate in bytes/second before scaling (paper: 0.62 MB/s).
    pub bytes_per_sec: f64,
    /// Rate scaling (paper uses 10×).
    pub scale: f64,
    /// Fraction of lines that match the Listing 3 patterns (the paper notes a
    /// *low filter-out rate*, so most lines match).
    pub match_rate: f64,
    /// Number of distinct tenants.
    pub tenants: u32,
    /// Error/traffic-burst schedule: active windows multiply the line rate.
    pub bursts: AnomalySchedule,
    /// RNG seed.
    pub seed: u64,
    /// Keep the structured stream's dictionaries across epochs (persistent
    /// per-stream dictionaries: codes stable across batches and epochs,
    /// dictionary pages ship as deltas). Off reproduces the historical
    /// per-epoch rebuild, which the `dict_epoch` bench and parity tests
    /// compare against.
    pub persistent_dicts: bool,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            bytes_per_sec: 0.62 * 1024.0 * 1024.0,
            scale: 1.0,
            match_rate: 0.75,
            tenants: 200,
            bursts: AnomalySchedule::none(),
            seed: 0xF00D,
            persistent_dicts: true,
        }
    }
}

impl LogConfig {
    /// Effective data rate in bits/second (before bursts).
    pub fn bits_per_sec(&self) -> f64 {
        self.bytes_per_sec * self.scale * 8.0
    }
}

/// Deterministic log-line generator.
#[derive(Debug, Clone)]
pub struct LogGenerator {
    cfg: LogConfig,
    rng: ChaCha8Rng,
    carry_bytes: f64,
    seq: u64,
    /// Persistent structured-stream dictionaries (tenant names, stat
    /// names), held across `generate_structured_epoch_batch` calls so codes
    /// are stable identity for the whole stream.
    tenant_dict: StreamDict,
    stat_dict: StreamDict,
    /// tenant id → persistent tenant-dict code (`u32::MAX` = not interned).
    tenant_code: Vec<u32>,
}

impl LogGenerator {
    /// Creates a generator.
    pub fn new(cfg: LogConfig) -> LogGenerator {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut stat_dict = StreamDict::new();
        for stat in STAT_NAMES {
            stat_dict.intern(stat);
        }
        let tenant_code = vec![u32::MAX; cfg.tenants as usize];
        LogGenerator {
            cfg,
            rng,
            carry_bytes: 0.0,
            seq: 0,
            tenant_dict: StreamDict::new(),
            stat_dict,
            tenant_code,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LogConfig {
        &self.cfg
    }

    /// Draws one matching line plus its parsed parts `(tenant id, stat
    /// index, stat value)`. The value is the one a downstream parse of the
    /// line recovers (one decimal place), so structured epochs correspond
    /// exactly to parsing the raw stream.
    fn matching_parts(&mut self) -> (String, u32, usize, f64) {
        let tenant = self.rng.gen_range(0..self.cfg.tenants);
        let stat_idx = (self.seq % STAT_NAMES.len() as u64) as usize;
        let stat = STAT_NAMES[stat_idx];
        let value: f64 = match stat {
            "job running time" => self.rng.gen_range(20.0..30_000.0),
            _ => self.rng.gen_range(0.0..100.0),
        };
        let shown = format!("{value:.1}");
        let parsed: f64 = shown.parse().expect("formatted float parses");
        let line = format!(
            "level=INFO job={} tenant name=tenant-{tenant}, {stat}={shown}, host=h{}",
            self.seq,
            self.seq % 97
        );
        (line, tenant, stat_idx, parsed)
    }

    fn noise_line(&mut self) -> String {
        const KINDS: [&str; 3] = ["heartbeat ok", "gc pause", "scheduler tick"];
        format!(
            "level=DEBUG {} node=n{} seq={}",
            KINDS[(self.seq % 3) as usize],
            self.seq % 131,
            self.seq
        )
    }

    /// Drives one epoch's byte budget, calling `emit` for every line that
    /// fits: `(timestamp, raw line, parsed parts for matching lines)`. The
    /// single source of the rate model (burst fold, byte budget, carry,
    /// even timestamp spread) behind both the raw and the structured epoch
    /// generators — they must stay in lockstep or the structured stream
    /// stops corresponding to parsing the raw one.
    fn drive_epoch(
        &mut self,
        epoch_start: Ts,
        epoch_secs: f64,
        mut emit: impl FnMut(Ts, &str, Option<(u32, usize, f64)>),
    ) {
        let t_s = epoch_start as f64 / 1e6;
        let burst = self
            .cfg
            .bursts
            .windows
            .iter()
            .filter(|w| w.active_at(t_s))
            .map(|w| w.severity)
            .fold(1.0_f64, f64::max);
        let mut budget =
            self.cfg.bytes_per_sec * self.cfg.scale * burst * epoch_secs + self.carry_bytes;
        // Lines average ~90 B; emit until the byte budget for the epoch runs
        // out, spreading timestamps evenly by bytes emitted.
        let total_budget = budget;
        let per_row_envelope = layout::row_envelope(&log_schema());
        while budget > 0.0 {
            let (line, parts) = if self.rng.gen_bool(self.cfg.match_rate) {
                let (line, tenant, stat_idx, value) = self.matching_parts();
                (line, Some((tenant, stat_idx, value)))
            } else {
                (self.noise_line(), None)
            };
            self.seq += 1;
            let frac = 1.0 - budget / total_budget;
            let ts = epoch_start + (frac * epoch_secs * 1e6) as Ts;
            let size = (per_row_envelope + layout::str_bytes(line.len())) as f64;
            if size > budget {
                // Not enough budget left for this line: carry the remainder.
                self.carry_bytes = budget;
                // Undo: the line is dropped, not carried (rates stay exact in
                // expectation; line boundaries never split).
                break;
            }
            budget -= size;
            emit(ts, &line, parts);
        }
        if budget <= 0.0 {
            self.carry_bytes = 0.0;
        }
    }

    /// Generates one epoch of log lines starting at `epoch_start` (µs),
    /// directly in columnar form (one string column, bytes appended in
    /// place).
    pub fn generate_epoch_batch(&mut self, epoch_start: Ts, epoch_secs: f64) -> Batch {
        let mut timestamps = Vec::new();
        let mut offsets: Vec<u32> = vec![0];
        let mut data: Vec<u8> = Vec::new();
        self.drive_epoch(epoch_start, epoch_secs, |ts, line, _| {
            timestamps.push(ts);
            data.extend_from_slice(line.as_bytes());
            offsets.push(data.len() as u32);
        });
        Batch {
            schema: log_schema(),
            timestamps,
            columns: vec![Column::Str {
                offsets,
                data: Bytes::from(data),
            }],
        }
    }

    /// Row-oriented view of [`LogGenerator::generate_epoch_batch`].
    pub fn generate_epoch(&mut self, epoch_start: Ts, epoch_secs: f64) -> Vec<Record> {
        self.generate_epoch_batch(epoch_start, epoch_secs)
            .to_records()
    }

    /// Generates one epoch directly in the post-parse shape
    /// ([`structured_log_schema`]): the matching lines of the same raw
    /// stream (identical RNG draws and byte budget — noise lines consume
    /// budget but emit nothing), with the low-cardinality string fields
    /// emitted as native dictionary columns. No strings are parsed and no
    /// per-row tenant strings are allocated; this is the workload for the
    /// group-aggregate fast path.
    pub fn generate_structured_epoch_batch(&mut self, epoch_start: Ts, epoch_secs: f64) -> Batch {
        if self.cfg.persistent_dicts {
            return self.structured_epoch_persistent(epoch_start, epoch_secs);
        }
        let mut timestamps = Vec::new();
        let mut tenant_dict = StrDict::new();
        let mut tenant_code: Vec<u32> = vec![u32::MAX; self.cfg.tenants as usize];
        let mut tenant_codes: Vec<u32> = Vec::new();
        let mut stat_codes: Vec<u32> = Vec::new();
        let mut stats: Vec<f64> = Vec::new();
        self.drive_epoch(epoch_start, epoch_secs, |ts, _, parts| {
            // Noise lines consume budget but emit nothing post-parse.
            let Some((tenant, stat_idx, value)) = parts else {
                return;
            };
            let code = tenant_code[tenant as usize];
            let code = if code == u32::MAX {
                let c = tenant_dict.push(&format!("tenant-{tenant}"));
                tenant_code[tenant as usize] = c;
                c
            } else {
                code
            };
            timestamps.push(ts);
            tenant_codes.push(code);
            stat_codes.push(stat_idx as u32);
            stats.push(value);
        });
        Batch {
            schema: structured_log_schema(),
            timestamps,
            columns: vec![
                Column::Dict {
                    codes: tenant_codes,
                    dict: Arc::new(tenant_dict),
                },
                Column::Dict {
                    codes: stat_codes,
                    dict: Arc::new(StrDict::from_entries(STAT_NAMES)),
                },
                Column::F64(stats),
            ],
        }
    }

    /// Persistent-dict variant of the structured epoch: the tenant and stat
    /// dictionaries live in the generator, so codes never change meaning
    /// across epochs and each column's page is a monotone snapshot of one
    /// stream dictionary. Stat codes equal the `STAT_NAMES` index (interned
    /// at construction); tenant codes are first-sight interning order —
    /// exactly what the per-epoch rebuild produces within one epoch, so row
    /// *contents* are identical either way.
    fn structured_epoch_persistent(&mut self, epoch_start: Ts, epoch_secs: f64) -> Batch {
        let mut timestamps = Vec::new();
        let mut tenant_dict = std::mem::take(&mut self.tenant_dict);
        let mut tenant_code = std::mem::take(&mut self.tenant_code);
        tenant_code.resize(self.cfg.tenants as usize, u32::MAX);
        let mut tenant_codes: Vec<u32> = Vec::new();
        let mut stat_codes: Vec<u32> = Vec::new();
        let mut stats: Vec<f64> = Vec::new();
        self.drive_epoch(epoch_start, epoch_secs, |ts, _, parts| {
            let Some((tenant, stat_idx, value)) = parts else {
                return;
            };
            let code = tenant_code[tenant as usize];
            let code = if code == u32::MAX {
                let c = tenant_dict.intern(&format!("tenant-{tenant}"));
                tenant_code[tenant as usize] = c;
                c
            } else {
                code
            };
            timestamps.push(ts);
            tenant_codes.push(code);
            stat_codes.push(stat_idx as u32);
            stats.push(value);
        });
        let batch = Batch {
            schema: structured_log_schema(),
            timestamps,
            columns: vec![
                Column::Dict {
                    codes: tenant_codes,
                    dict: tenant_dict.snapshot(),
                },
                Column::Dict {
                    codes: stat_codes,
                    dict: self.stat_dict.snapshot(),
                },
                Column::F64(stats),
            ],
        };
        self.tenant_dict = tenant_dict;
        self.tenant_code = tenant_code;
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamkit::record::wire_size_of;

    #[test]
    fn rate_matches_paper_arithmetic() {
        let cfg = LogConfig::default();
        let mbps = cfg.bits_per_sec() / (1 << 20) as f64;
        assert!((mbps - 4.96).abs() < 0.01, "mbps={mbps}");
    }

    #[test]
    fn epoch_bytes_track_configured_rate() {
        let cfg = LogConfig {
            scale: 10.0,
            ..Default::default()
        };
        let target = cfg.bytes_per_sec * cfg.scale;
        let mut g = LogGenerator::new(cfg);
        let schema = log_schema();
        let mut total = 0usize;
        for e in 0..20 {
            total += wire_size_of(&g.generate_epoch(e * 1_000_000, 1.0), &schema);
        }
        let per_epoch = total as f64 / 20.0;
        assert!(
            (per_epoch - target).abs() / target < 0.02,
            "per_epoch={per_epoch} target={target}"
        );
    }

    #[test]
    fn match_rate_is_respected() {
        let mut g = LogGenerator::new(LogConfig::default());
        let recs = g.generate_epoch(0, 1.0);
        let matching = recs
            .iter()
            .filter(|r| {
                let line = r.values[0].as_str().unwrap();
                LOG_PATTERNS.iter().any(|p| line.contains(p))
            })
            .count();
        let rate = matching as f64 / recs.len() as f64;
        assert!((rate - 0.75).abs() < 0.03, "rate={rate}");
    }

    #[test]
    fn matching_lines_parse_into_job_stats() {
        use streamkit::ops::MapFn;
        let mut g = LogGenerator::new(LogConfig::default());
        let recs = g.generate_epoch(0, 0.1);
        let parse = MapFn::ParseJobStats {
            col: 0,
            stats: STAT_NAMES
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
        };
        let lower = MapFn::TrimLower(0);
        let mut parsed = 0;
        for r in &recs {
            let normalised = lower.apply(r).unwrap();
            if let Some(out) = parse.apply(&normalised) {
                parsed += 1;
                assert!(out.values[0].as_str().unwrap().starts_with("tenant-"));
                assert!(out.values[2].as_f64().is_some());
            }
        }
        assert!(parsed > 0, "at least some lines must parse");
    }

    #[test]
    fn structured_epoch_matches_parsing_the_raw_stream() {
        use streamkit::batch::Column;
        use streamkit::ops::MapFn;
        use streamkit::value::Value;

        // Same config and seed: the structured generator must produce
        // exactly the rows ParseJobStats recovers from the raw lines.
        let mut raw_gen = LogGenerator::new(LogConfig::default());
        let mut structured_gen = LogGenerator::new(LogConfig::default());
        let parse = MapFn::ParseJobStats {
            col: 0,
            stats: STAT_NAMES
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
        };
        for epoch in 0..3 {
            let start = epoch * 1_000_000;
            let raw = raw_gen.generate_epoch(start, 1.0);
            let parsed: Vec<Record> = raw.iter().filter_map(|r| parse.apply(r)).collect();
            let structured = structured_gen.generate_structured_epoch_batch(start, 1.0);
            assert!(
                matches!(structured.columns[0], Column::Dict { .. })
                    && matches!(structured.columns[1], Column::Dict { .. }),
                "string key fields must be native dict columns"
            );
            assert_eq!(structured.to_records(), parsed, "epoch {epoch}");
            assert!(structured
                .to_records()
                .iter()
                .all(|r| matches!(r.values[2], Value::F64(_))));
        }
    }

    #[test]
    fn persistent_structured_dicts_share_identity_across_epochs() {
        let mut g = LogGenerator::new(LogConfig::default());
        let b0 = g.generate_structured_epoch_batch(0, 1.0);
        let b1 = g.generate_structured_epoch_batch(1_000_000, 1.0);
        let Column::Dict { dict: d0, .. } = &b0.columns[0] else {
            panic!("tenant column must be dict");
        };
        let Column::Dict { dict: d1, .. } = &b1.columns[0] else {
            panic!("tenant column must be dict");
        };
        assert_ne!(d0.id(), 0, "persistent dicts carry a stream id");
        assert_eq!(d0.id(), d1.id(), "same stream across epochs");
        assert!(d1.len() >= d0.len(), "append-only growth");
        for (i, e) in d0.iter().enumerate() {
            assert_eq!(e, d1.get(i as u32), "codes never remapped");
        }

        // The historical per-epoch rebuild stays available and produces
        // identical row contents (it only loses cross-epoch identity).
        let mut rebuilt = LogGenerator::new(LogConfig {
            persistent_dicts: false,
            ..Default::default()
        });
        let c0 = rebuilt.generate_structured_epoch_batch(0, 1.0);
        let Column::Dict { dict, .. } = &c0.columns[0] else {
            panic!("tenant column must be dict");
        };
        assert_eq!(dict.id(), 0, "rebuild mode is batch-local");
        assert_eq!(c0.to_records(), b0.to_records());
    }

    #[test]
    fn bursts_scale_the_rate() {
        let cfg = LogConfig {
            bursts: AnomalySchedule::single(0.0, 10.0, 1.0, 3.0),
            ..Default::default()
        };
        let quiet_cfg = LogConfig::default();
        let mut bursty = LogGenerator::new(cfg);
        let mut quiet = LogGenerator::new(quiet_cfg);
        let b = bursty.generate_epoch(0, 1.0).len();
        let q = quiet.generate_epoch(0, 1.0).len();
        assert!(b as f64 > 2.5 * q as f64, "burst {b} vs quiet {q}");
    }

    #[test]
    fn generation_is_deterministic() {
        let mk = || LogGenerator::new(LogConfig::default()).generate_epoch(0, 0.5);
        assert_eq!(mk(), mk());
    }
}
