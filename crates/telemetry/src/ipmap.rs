//! The IP → ToR static table used by T2TProbe (paper Listing 2).

use std::sync::Arc;

use streamkit::ops::StaticTable;
use streamkit::schema::{DataType, Field};
use streamkit::value::Value;

/// Builds a table mapping `entries` server IPs (the generator's destination
/// space starting at 100 000, plus the probing sources' own IPs) to ToR
/// switch ids, `servers_per_tor` servers per ToR. `field_name` names the
/// appended column (T2TProbe joins the same mapping twice, once as `srcTor`
/// and once as `dstTor`).
pub fn ip_to_tor_table(
    entries: u32,
    servers_per_tor: u32,
    source_ips: &[u32],
    field_name: &str,
) -> Arc<StaticTable> {
    assert!(servers_per_tor > 0, "servers_per_tor must be positive");
    let mut rows: Vec<(Value, Vec<Value>)> =
        Vec::with_capacity(entries as usize + source_ips.len());
    for i in 0..entries {
        let ip = 100_000 + i;
        rows.push((
            Value::U64(u64::from(ip)),
            vec![Value::U64(u64::from(ip / servers_per_tor))],
        ));
    }
    for &ip in source_ips {
        rows.push((
            Value::U64(u64::from(ip)),
            vec![Value::U64(u64::from(ip / servers_per_tor))],
        ));
    }
    Arc::new(StaticTable::new(
        vec![Field::new(field_name, DataType::U32)],
        rows,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_peer_space_and_sources() {
        let t = ip_to_tor_table(500, 40, &[1, 2, 3], "torId");
        assert_eq!(t.len(), 503);
        assert!(t.get(&Value::U64(100_000)).is_some());
        assert!(t.get(&Value::U64(100_499)).is_some());
        assert!(t.get(&Value::U64(2)).is_some());
        assert!(t.get(&Value::U64(100_500)).is_none());
    }

    #[test]
    fn groups_servers_per_tor() {
        let t = ip_to_tor_table(100, 40, &[], "torId");
        let tor_a = t.get(&Value::U64(100_000)).unwrap()[0].clone();
        let tor_b = t.get(&Value::U64(100_039)).unwrap()[0].clone();
        let tor_c = t.get(&Value::U64(100_040)).unwrap()[0].clone();
        assert_eq!(tor_a, tor_b);
        assert_ne!(tor_a, tor_c);
    }
}
