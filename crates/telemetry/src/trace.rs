//! Trace record/replay.
//!
//! Generated streams can be captured to JSON-lines traces and replayed later,
//! so experiments can be re-run bit-identically without re-generating, and
//! real traces (when available) can be substituted for synthetic ones.

use std::io::{self, BufRead, Write};

use streamkit::batch::{Batch, StreamDict};
use streamkit::record::Record;
use streamkit::schema::{DataType, Field, Schema, SchemaRef};
use streamkit::time::Ts;
use streamkit::value::Value;

/// Writes records as JSON lines.
pub fn write_trace<W: Write>(mut w: W, records: &[Record]) -> io::Result<()> {
    for rec in records {
        let line = serde_json::to_string(rec).map_err(io::Error::other)?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Reads records from JSON lines.
pub fn read_trace<R: BufRead>(r: R) -> io::Result<Vec<Record>> {
    let mut out = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(serde_json::from_str(&line).map_err(io::Error::other)?);
    }
    Ok(out)
}

/// Replayed string columns whose *cumulative* distinct-value count stays at
/// or below this bound are dictionary-encoded against a persistent
/// per-column [`StreamDict`], so replay feeds the same columnar fast paths
/// (and delta-only wire shipping) native generators do. Persistent
/// interning removes the per-epoch rebuild cost that motivated the old
/// ≤256 bound, so the default is far wider; a column that outgrows the
/// bound degrades to plain `Str` for the rest of the replay without
/// affecting any other column.
pub const REPLAY_DICT_MAX_CARDINALITY: usize = 4096;

/// Replays a recorded trace epoch by epoch.
#[derive(Debug, Clone)]
pub struct ReplayGenerator {
    records: Vec<Record>,
    schema: SchemaRef,
    cursor: usize,
    dict_bound: usize,
    /// One persistent dictionary per string column; `None` marks a column
    /// that exceeded the cumulative bound and stays plain `Str` from then
    /// on (per-column degrade — the other columns keep their dictionaries).
    dicts: Vec<Option<StreamDict>>,
}

/// Infers a batch schema from replayed values (traces carry no schema). The
/// inferred types only matter for columnar layout, not wire accounting of
/// the original stream.
fn infer_schema(records: &[Record]) -> SchemaRef {
    let width = records.first().map_or(0, |r| r.values.len());
    let fields = (0..width)
        .map(|c| {
            let dtype = records
                .iter()
                .find_map(|r| match r.values.get(c) {
                    Some(Value::Bool(_)) => Some(DataType::Bool),
                    Some(Value::I64(_)) => Some(DataType::I64),
                    Some(Value::U64(_)) => Some(DataType::U64),
                    Some(Value::F64(_)) => Some(DataType::F64),
                    Some(Value::Str(_)) => Some(DataType::Str),
                    _ => None,
                })
                .unwrap_or(DataType::I64);
            Field::new(format!("c{c}"), dtype)
        })
        .collect();
    Schema::new(fields)
}

impl ReplayGenerator {
    /// Creates a replayer; records are sorted by timestamp and the batch
    /// schema is inferred from the values.
    pub fn new(records: Vec<Record>) -> ReplayGenerator {
        let schema = infer_schema(&records);
        ReplayGenerator::with_schema(records, schema)
    }

    /// Creates a replayer with an explicit schema (preserves envelope
    /// overhead for wire accounting).
    pub fn with_schema(mut records: Vec<Record>, schema: SchemaRef) -> ReplayGenerator {
        records.sort_by_key(|r| r.ts);
        let dicts = schema
            .fields()
            .iter()
            .map(|f| (f.dtype == DataType::Str).then(StreamDict::new))
            .collect();
        ReplayGenerator {
            records,
            schema,
            cursor: 0,
            dict_bound: REPLAY_DICT_MAX_CARDINALITY,
            dicts,
        }
    }

    /// Overrides the cumulative cardinality bound under which replayed
    /// string columns are dictionary-encoded (0 disables dictionary
    /// encoding).
    pub fn with_dict_bound(mut self, bound: usize) -> ReplayGenerator {
        self.dict_bound = bound;
        self
    }

    /// Remaining record count.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.cursor
    }

    /// Returns all records with `ts` in `[epoch_start, epoch_start + epoch)`.
    pub fn generate_epoch(&mut self, epoch_start: Ts, epoch_secs: f64) -> Vec<Record> {
        let end = epoch_start + (epoch_secs * 1e6) as Ts;
        let mut out = Vec::new();
        while self.cursor < self.records.len() && self.records[self.cursor].ts < end {
            if self.records[self.cursor].ts >= epoch_start {
                out.push(self.records[self.cursor].clone());
            }
            self.cursor += 1;
        }
        out
    }

    /// Columnar view of [`ReplayGenerator::generate_epoch`]. Low-cardinality
    /// string columns come back dictionary-encoded against the replayer's
    /// persistent per-column dictionaries (see
    /// [`REPLAY_DICT_MAX_CARDINALITY`]) — codes are stable across epochs —
    /// and rows read identically either way. A column whose cumulative
    /// cardinality outgrows the bound degrades to plain `Str` for the rest
    /// of the replay; the other columns are unaffected.
    pub fn generate_epoch_batch(&mut self, epoch_start: Ts, epoch_secs: f64) -> Batch {
        let rows = self.generate_epoch(epoch_start, epoch_secs);
        let mut batch = Batch::from_records(self.schema.clone(), &rows)
            .expect("replayed records match the trace schema");
        if self.dict_bound > 0 {
            for (col, slot) in batch.columns.iter_mut().zip(self.dicts.iter_mut()) {
                let Some(stream) = slot else { continue };
                match col.dict_encode_with(stream, self.dict_bound) {
                    Some(dense) => *col = dense,
                    None => *slot = None,
                }
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pingmesh::{PingmeshConfig, PingmeshGenerator};

    #[test]
    fn round_trip_preserves_records() {
        let mut g = PingmeshGenerator::new(PingmeshConfig::default());
        let recs = g.generate_epoch(0, 0.05);
        let mut buf = Vec::new();
        write_trace(&mut buf, &recs).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn replay_respects_epoch_boundaries() {
        let mut g = PingmeshGenerator::new(PingmeshConfig::default());
        let mut all = g.generate_epoch(0, 1.0);
        all.extend(g.generate_epoch(1_000_000, 1.0));
        let total = all.len();
        let mut replay = ReplayGenerator::new(all);
        let first = replay.generate_epoch(0, 1.0);
        let second = replay.generate_epoch(1_000_000, 1.0);
        assert_eq!(first.len() + second.len(), total);
        assert!(first.iter().all(|r| r.ts < 1_000_000));
        assert!(second.iter().all(|r| r.ts >= 1_000_000));
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    fn malformed_lines_error() {
        let bad = b"not json\n";
        assert!(read_trace(&bad[..]).is_err());
    }

    #[test]
    fn replay_dict_encodes_low_cardinality_strings() {
        use streamkit::batch::Column;
        use streamkit::value::Value;

        let records: Vec<Record> = (0..50)
            .map(|i| {
                Record::new(
                    i,
                    vec![
                        Value::str(["web", "db", "cache"][i as usize % 3]),
                        Value::U64(i as u64),
                    ],
                )
            })
            .collect();
        let mut replay = ReplayGenerator::new(records.clone());
        let batch = replay.generate_epoch_batch(0, 1.0);
        assert!(matches!(batch.columns[0], Column::Dict { .. }));
        assert_eq!(batch.to_records(), records, "rows read identically");

        // A bound of 0 disables the encoding.
        let mut plain = ReplayGenerator::new(records).with_dict_bound(0);
        let batch = plain.generate_epoch_batch(0, 1.0);
        assert!(matches!(batch.columns[0], Column::Str { .. }));
    }

    #[test]
    fn replay_dicts_are_persistent_across_epochs() {
        use streamkit::batch::Column;
        use streamkit::value::Value;

        // Two epochs sharing string values: the dictionary must be the same
        // stream (same id, stable codes), not a fresh page per batch.
        let records: Vec<Record> = (0..40)
            .map(|i| {
                Record::new(
                    i * 100_000,
                    vec![Value::str(["web", "db"][i as usize % 2]), Value::U64(1)],
                )
            })
            .collect();
        let mut replay = ReplayGenerator::new(records);
        let b0 = replay.generate_epoch_batch(0, 1.0);
        let b1 = replay.generate_epoch_batch(1_000_000, 1.0);
        let (d0, c0) = b0.columns[0].as_dict().unwrap();
        let (d1, c1) = b1.columns[0].as_dict().unwrap();
        assert_ne!(d0.id(), 0, "replay dicts are persistent streams");
        assert_eq!(d0.id(), d1.id(), "one stream across epochs");
        assert_eq!(d0.get(c0[0]), d1.get(c1[0]), "codes stable identity");

        // A column that outgrows the cumulative bound degrades alone: the
        // low-cardinality column keeps its dictionary.
        let wide: Vec<Record> = (0..40)
            .map(|i| {
                Record::new(
                    i * 100_000,
                    vec![
                        Value::str(["web", "db"][i as usize % 2]),
                        Value::Str(format!("req-{i}").into()),
                    ],
                )
            })
            .collect();
        let mut replay = ReplayGenerator::with_schema(
            wide,
            Schema::new(vec![
                Field::new("svc", DataType::Str),
                Field::new("req", DataType::Str),
            ]),
        )
        .with_dict_bound(8);
        let b0 = replay.generate_epoch_batch(0, 1.0);
        assert!(matches!(b0.columns[0], Column::Dict { .. }));
        assert!(
            matches!(b0.columns[1], Column::Str { .. }),
            "over-bound column degrades per column, not per batch"
        );
        let b1 = replay.generate_epoch_batch(1_000_000, 1.0);
        assert!(matches!(b1.columns[0], Column::Dict { .. }));
        assert!(matches!(b1.columns[1], Column::Str { .. }));
    }
}
