//! Trace record/replay.
//!
//! Generated streams can be captured to JSON-lines traces and replayed later,
//! so experiments can be re-run bit-identically without re-generating, and
//! real traces (when available) can be substituted for synthetic ones.

use std::io::{self, BufRead, Write};

use streamkit::record::Record;
use streamkit::time::Ts;

/// Writes records as JSON lines.
pub fn write_trace<W: Write>(mut w: W, records: &[Record]) -> io::Result<()> {
    for rec in records {
        let line = serde_json::to_string(rec).map_err(io::Error::other)?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Reads records from JSON lines.
pub fn read_trace<R: BufRead>(r: R) -> io::Result<Vec<Record>> {
    let mut out = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(serde_json::from_str(&line).map_err(io::Error::other)?);
    }
    Ok(out)
}

/// Replays a recorded trace epoch by epoch.
#[derive(Debug, Clone)]
pub struct ReplayGenerator {
    records: Vec<Record>,
    cursor: usize,
}

impl ReplayGenerator {
    /// Creates a replayer; records are sorted by timestamp.
    pub fn new(mut records: Vec<Record>) -> ReplayGenerator {
        records.sort_by_key(|r| r.ts);
        ReplayGenerator { records, cursor: 0 }
    }

    /// Remaining record count.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.cursor
    }

    /// Returns all records with `ts` in `[epoch_start, epoch_start + epoch)`.
    pub fn generate_epoch(&mut self, epoch_start: Ts, epoch_secs: f64) -> Vec<Record> {
        let end = epoch_start + (epoch_secs * 1e6) as Ts;
        let mut out = Vec::new();
        while self.cursor < self.records.len() && self.records[self.cursor].ts < end {
            if self.records[self.cursor].ts >= epoch_start {
                out.push(self.records[self.cursor].clone());
            }
            self.cursor += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pingmesh::{PingmeshConfig, PingmeshGenerator};

    #[test]
    fn round_trip_preserves_records() {
        let mut g = PingmeshGenerator::new(PingmeshConfig::default());
        let recs = g.generate_epoch(0, 0.05);
        let mut buf = Vec::new();
        write_trace(&mut buf, &recs).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn replay_respects_epoch_boundaries() {
        let mut g = PingmeshGenerator::new(PingmeshConfig::default());
        let mut all = g.generate_epoch(0, 1.0);
        all.extend(g.generate_epoch(1_000_000, 1.0));
        let total = all.len();
        let mut replay = ReplayGenerator::new(all);
        let first = replay.generate_epoch(0, 1.0);
        let second = replay.generate_epoch(1_000_000, 1.0);
        assert_eq!(first.len() + second.len(), total);
        assert!(first.iter().all(|r| r.ts < 1_000_000));
        assert!(second.iter().all(|r| r.ts >= 1_000_000));
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    fn malformed_lines_error() {
        let bad = b"not json\n";
        assert!(read_trace(&bad[..]).is_err());
    }
}
