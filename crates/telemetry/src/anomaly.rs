//! Anomaly schedules.
//!
//! The paper motivates fast adaptation with workload anomalies: network
//! issues cause probe-latency spikes "whose duration may range between 40 and
//! 60 seconds" (§II-B), and service failures cause error-log bursts. A
//! schedule is a deterministic list of windows during which a fraction of the
//! key space is affected.

use serde::{Deserialize, Serialize};

/// One anomaly window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnomalyWindow {
    /// Start (virtual seconds).
    pub start_s: f64,
    /// Duration (seconds); the paper's network issues last 40–60 s.
    pub duration_s: f64,
    /// Fraction of keys (e.g. server pairs) affected, in `[0, 1]`.
    pub affected_frac: f64,
    /// Severity multiplier applied to the affected metric (e.g. RTT ×20).
    pub severity: f64,
}

impl AnomalyWindow {
    /// Whether the window is active at time `t_s`.
    pub fn active_at(&self, t_s: f64) -> bool {
        t_s >= self.start_s && t_s < self.start_s + self.duration_s
    }
}

/// A deterministic schedule of anomaly windows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnomalySchedule {
    /// The windows, in no particular order.
    pub windows: Vec<AnomalyWindow>,
}

impl AnomalySchedule {
    /// No anomalies.
    pub fn none() -> AnomalySchedule {
        AnomalySchedule::default()
    }

    /// A single window.
    pub fn single(start_s: f64, duration_s: f64, affected_frac: f64, severity: f64) -> Self {
        AnomalySchedule {
            windows: vec![AnomalyWindow {
                start_s,
                duration_s,
                affected_frac,
                severity,
            }],
        }
    }

    /// Periodic windows every `period_s`, each lasting `duration_s`.
    pub fn periodic(
        period_s: f64,
        duration_s: f64,
        affected_frac: f64,
        severity: f64,
        horizon_s: f64,
    ) -> Self {
        assert!(period_s > 0.0);
        let mut windows = Vec::new();
        let mut start = period_s;
        while start < horizon_s {
            windows.push(AnomalyWindow {
                start_s: start,
                duration_s,
                affected_frac,
                severity,
            });
            start += period_s;
        }
        AnomalySchedule { windows }
    }

    /// Severity multiplier for a given `key_hash01` (a deterministic hash of
    /// the affected key mapped to `[0, 1)`) at time `t_s`. Returns 1.0 when
    /// not affected.
    pub fn severity_at(&self, t_s: f64, key_hash01: f64) -> f64 {
        for w in &self.windows {
            if w.active_at(t_s) && key_hash01 < w.affected_frac {
                return w.severity;
            }
        }
        1.0
    }

    /// Whether any window is active at `t_s`.
    pub fn any_active(&self, t_s: f64) -> bool {
        self.windows.iter().any(|w| w.active_at(t_s))
    }
}

/// Maps an arbitrary key to a deterministic point in `[0, 1)` (splitmix-style
/// finaliser), used to decide which keys an anomaly touches.
pub fn key_hash01(key: u64) -> f64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_activity_bounds() {
        let w = AnomalyWindow {
            start_s: 10.0,
            duration_s: 40.0,
            affected_frac: 0.1,
            severity: 20.0,
        };
        assert!(!w.active_at(9.99));
        assert!(w.active_at(10.0));
        assert!(w.active_at(49.99));
        assert!(!w.active_at(50.0));
    }

    #[test]
    fn severity_applies_only_to_affected_keys() {
        let s = AnomalySchedule::single(0.0, 60.0, 0.25, 10.0);
        assert_eq!(s.severity_at(30.0, 0.1), 10.0);
        assert_eq!(s.severity_at(30.0, 0.9), 1.0);
        assert_eq!(s.severity_at(70.0, 0.1), 1.0);
    }

    #[test]
    fn periodic_fills_the_horizon() {
        let s = AnomalySchedule::periodic(100.0, 50.0, 0.1, 5.0, 450.0);
        assert_eq!(s.windows.len(), 4); // 100, 200, 300, 400
        assert!(s.any_active(125.0));
        assert!(!s.any_active(175.0));
    }

    #[test]
    fn key_hash_is_uniformish() {
        let mut below = 0;
        for k in 0..10_000u64 {
            if key_hash01(k) < 0.3 {
                below += 1;
            }
        }
        assert!((below as f64 - 3000.0).abs() < 300.0, "below={below}");
    }
}
