//! `telemetry` — synthetic datacenter telemetry workloads.
//!
//! Deterministic, seedable generators reproducing the characteristics the
//! paper states for its two datasets:
//!
//! * **Pingmesh** ([`pingmesh`]): 86-byte probe records, 20 K probed peers per
//!   5 s interval, 14 % filter-out rate, sparse latency anomalies lasting
//!   40–60 s, and per-source rate skew (58 % of sources at ≤ 50 % of peak).
//! * **LogAnalytics** ([`loganalytics`]): text log lines with tenant name,
//!   job running time, CPU and memory utilisation plus noise lines, at
//!   0.62 MB/s per node.
//!
//! Plus the IP→ToR static table used by T2TProbe ([`ipmap`]), anomaly
//! schedules ([`anomaly`]), the paper's three queries as ready-made logical
//! plans ([`queries`]), and trace record/replay ([`trace`]).

pub mod anomaly;
pub mod ipmap;
pub mod loganalytics;
pub mod pingmesh;
pub mod queries;
pub mod trace;
