//! The paper's three monitoring queries as ready-made logical plans.

use std::sync::Arc;

use streamkit::agg::AggKind;
use streamkit::expr::Expr;
use streamkit::logical::LogicalPlan;
use streamkit::ops::{EmitMode, JoinMiss, MapFn, StaticTable};
use streamkit::query::Query;

use crate::ipmap::ip_to_tor_table;
use crate::loganalytics::{log_schema, LOG_PATTERNS, STAT_NAMES};
use crate::pingmesh::pingmesh_schema;

/// S2SProbe (paper Listing 1): server-to-server latency aggregates per
/// 10-second window.
pub fn s2s_probe() -> LogicalPlan {
    Query::stream("S2SProbe", pingmesh_schema())
        .window_secs(10.0)
        .filter_named("errCode", |c| c.eq(Expr::lit(0u64)))
        .group_by(&["srcIp", "dstIp"])
        .aggregate_emit(
            &[
                (AggKind::Avg, "rtt", "avg_rtt"),
                (AggKind::Max, "rtt", "max_rtt"),
                (AggKind::Min, "rtt", "min_rtt"),
            ],
            EmitMode::PerEpochDelta,
        )
        .build()
        .expect("S2SProbe is well-formed")
}

/// T2TProbe (paper Listing 2): ToR-to-ToR latency aggregates, joining the
/// stream twice with an IP→ToR mapping and projecting before aggregation
/// (§VI-B notes the projection to `(srcToR, dstToR, rtt)`).
pub fn t2t_probe(src_table: Arc<StaticTable>, dst_table: Arc<StaticTable>) -> LogicalPlan {
    Query::stream("T2TProbe", pingmesh_schema())
        .window_secs(10.0)
        .filter_named("errCode", |c| c.eq(Expr::lit(0u64)))
        .join(src_table, "srcIp", JoinMiss::Drop)
        .join(dst_table, "dstIp", JoinMiss::Drop)
        .project(&["srcTor", "dstTor", "rtt"])
        .group_by(&["srcTor", "dstTor"])
        .aggregate_emit(
            &[
                (AggKind::Avg, "rtt", "avg_rtt"),
                (AggKind::Max, "rtt", "max_rtt"),
                (AggKind::Min, "rtt", "min_rtt"),
            ],
            EmitMode::PerEpochDelta,
        )
        .build()
        .expect("T2TProbe is well-formed")
}

/// Builds the pair of ToR mapping tables for [`t2t_probe`] covering
/// `table_size` destination IPs plus the probing sources.
pub fn t2t_tables(
    table_size: u32,
    servers_per_tor: u32,
    source_ips: &[u32],
) -> (Arc<StaticTable>, Arc<StaticTable>) {
    (
        ip_to_tor_table(table_size, servers_per_tor, source_ips, "srcTor"),
        ip_to_tor_table(table_size, servers_per_tor, source_ips, "dstTor"),
    )
}

/// LogAnalytics (paper Listing 3): per-tenant histograms of job latency and
/// resource utilisation from unstructured text logs.
pub fn log_analytics() -> LogicalPlan {
    Query::stream("LogAnalytics", log_schema())
        .window_secs(10.0)
        .map(MapFn::TrimLower(0))
        .filter_contains_any("line", &LOG_PATTERNS)
        .map(MapFn::ParseJobStats {
            col: 0,
            stats: STAT_NAMES
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
        })
        .map(MapFn::WidthBucket {
            col: 2,
            lo: 0.0,
            hi: 100.0,
            buckets: 10,
        })
        .group_by(&["tenant", "stat_name", "stat"])
        .aggregate_emit(
            &[(AggKind::Count, "stat", "count")],
            EmitMode::PerEpochDelta,
        )
        .build()
        .expect("LogAnalytics is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s2s_probe_shape() {
        let plan = s2s_probe();
        assert_eq!(plan.display_chain(), "W -> F -> G+R");
        assert_eq!(plan.edge_schemas().unwrap().last().unwrap().width(), 6);
    }

    #[test]
    fn t2t_probe_shape() {
        let (src, dst) = t2t_tables(500, 40, &[1]);
        let plan = t2t_probe(src, dst);
        assert_eq!(plan.display_chain(), "W -> F -> J -> J -> P -> G+R");
        let schemas = plan.edge_schemas().unwrap();
        // Projection narrows to 3 columns before aggregation.
        assert_eq!(schemas[5].width(), 3);
    }

    #[test]
    fn log_analytics_shape() {
        let plan = log_analytics();
        assert_eq!(plan.display_chain(), "W -> M -> F -> M -> M -> G+R");
        let out = plan.edge_schemas().unwrap();
        assert_eq!(out.last().unwrap().fields()[1].name, "tenant");
    }

    #[test]
    fn t2t_executes_on_generated_data() {
        use crate::pingmesh::{PingmeshConfig, PingmeshGenerator};
        use streamkit::batch::Batch;
        use streamkit::ops::AggRole;
        use streamkit::physical::{build_pipeline, CostProfile};

        let (src, dst) = t2t_tables(500, 40, &[1]);
        let plan = t2t_probe(src, dst);
        let mut ops = build_pipeline(&plan, &CostProfile::default(), AggRole::Final).unwrap();
        let mut g = PingmeshGenerator::new(PingmeshConfig {
            peer_ip_space: 500,
            ..Default::default()
        });
        let mut cur = vec![g.generate_epoch_batch(0, 1.0)];
        for op in &mut ops {
            let mut next = Vec::new();
            for b in cur {
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        let mut out = Vec::new();
        for op in &mut ops {
            op.on_watermark(streamkit::time::secs(10.0), &mut out);
        }
        let rows: usize = out.iter().map(Batch::len).sum();
        assert!(rows > 0, "ToR aggregates must be produced");
    }
}
