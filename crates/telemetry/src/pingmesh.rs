//! Synthetic Pingmesh probe streams (paper §II-B, §VI-A).
//!
//! Every record mirrors the paper's published layout — timestamp (8 B),
//! source IP (4 B), source cluster (4 B), destination IP (4 B), destination
//! cluster (4 B), RTT in µs (4 B), error code (4 B) — carried in an 86-byte
//! wire record (the difference is the serialisation envelope, modelled as
//! schema overhead). Defaults follow the paper: each server probes 20 K peers
//! every 5 s (4 000 records/s, ≈ 2.62 Mbps with the paper's 2²⁰ Mbps
//! convention), 14 % of probes carry a non-zero error code, and latency
//! anomalies affect a sparse subset of server pairs for 40–60 s.

use std::sync::Arc;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use streamkit::batch::{Batch, Column, StrDict, StreamDict};
use streamkit::record::Record;
use streamkit::schema::{DataType, Field, Schema, SchemaRef};
use streamkit::time::Ts;

use crate::anomaly::{key_hash01, AnomalySchedule};

/// Wire size of one Pingmesh record (paper §II-B).
pub const PINGMESH_RECORD_BYTES: usize = 86;

/// Column indices in the Pingmesh schema.
pub mod col {
    /// Source IP.
    pub const SRC_IP: usize = 0;
    /// Source cluster id.
    pub const SRC_CLUSTER: usize = 1;
    /// Destination IP.
    pub const DST_IP: usize = 2;
    /// Destination cluster id.
    pub const DST_CLUSTER: usize = 3;
    /// Round-trip time in µs.
    pub const RTT: usize = 4;
    /// Error code (0 = success).
    pub const ERR_CODE: usize = 5;
}

/// The Pingmesh record schema, with envelope overhead bringing each record to
/// exactly [`PINGMESH_RECORD_BYTES`].
pub fn pingmesh_schema() -> SchemaRef {
    let fields = vec![
        Field::new("srcIp", DataType::U32),
        Field::new("srcCluster", DataType::U32),
        Field::new("dstIp", DataType::U32),
        Field::new("dstCluster", DataType::U32),
        Field::new("rtt", DataType::U32),
        Field::new("errCode", DataType::U32),
    ];
    let body: usize = 8 + fields
        .iter()
        .map(|f| f.dtype.fixed_width().unwrap())
        .sum::<usize>();
    Schema::with_overhead(fields, PINGMESH_RECORD_BYTES - body)
}

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PingmeshConfig {
    /// This source's IP (also used to derive cluster ids).
    pub src_ip: u32,
    /// Number of peers probed per interval (paper: 20 000).
    pub peers: u32,
    /// Size of the destination-IP space. Usually equals `peers`; T2TProbe
    /// experiments shrink it to the static-table size so joins hit.
    pub peer_ip_space: u32,
    /// Probe interval in seconds (paper: 5 s).
    pub probe_interval_s: f64,
    /// Input-rate scaling (paper evaluates 1×, 5×, 10×).
    pub scale: f64,
    /// Extra per-source rate skew factor in `(0, 1]` (paper: 58 % of sources
    /// generate ≤ 50 % of the peak rate).
    pub rate_factor: f64,
    /// Fraction of probes with a non-zero error code (paper: the filter's
    /// 14 % filter-out rate).
    pub error_rate: f64,
    /// Baseline RTT in µs (healthy probes are jittered around this).
    pub base_rtt_us: f64,
    /// Latency-anomaly schedule over server pairs.
    pub anomalies: AnomalySchedule,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PingmeshConfig {
    fn default() -> Self {
        PingmeshConfig {
            src_ip: 1,
            peers: 20_000,
            peer_ip_space: 20_000,
            probe_interval_s: 5.0,
            scale: 1.0,
            rate_factor: 1.0,
            error_rate: 0.14,
            base_rtt_us: 300.0,
            anomalies: AnomalySchedule::none(),
            seed: 0xBEEF,
        }
    }
}

impl PingmeshConfig {
    /// Records generated per second.
    pub fn records_per_sec(&self) -> f64 {
        f64::from(self.peers) / self.probe_interval_s * self.scale * self.rate_factor
    }

    /// Input data rate in bits/second.
    pub fn bits_per_sec(&self) -> f64 {
        self.records_per_sec() * PINGMESH_RECORD_BYTES as f64 * 8.0
    }
}

/// Deterministic Pingmesh stream generator.
#[derive(Debug, Clone)]
pub struct PingmeshGenerator {
    cfg: PingmeshConfig,
    rng: ChaCha8Rng,
    /// Fractional records carried across epochs so long-run rates are exact.
    carry: f64,
}

impl PingmeshGenerator {
    /// Creates a generator.
    pub fn new(cfg: PingmeshConfig) -> PingmeshGenerator {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ u64::from(cfg.src_ip));
        PingmeshGenerator {
            cfg,
            rng,
            carry: 0.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PingmeshConfig {
        &self.cfg
    }

    /// Generates one epoch beginning at `epoch_start` (µs) and lasting
    /// `epoch_secs` directly in columnar form — the batch-first dataflow
    /// never materializes row records. Timestamps are evenly spread in the
    /// epoch.
    pub fn generate_epoch_batch(&mut self, epoch_start: Ts, epoch_secs: f64) -> Batch {
        let exact = self.cfg.records_per_sec() * epoch_secs + self.carry;
        let n = exact.floor() as usize;
        self.carry = exact - n as f64;
        let mut timestamps = Vec::with_capacity(n);
        let mut src_ips = Vec::with_capacity(n);
        let mut src_clusters = Vec::with_capacity(n);
        let mut dst_ips = Vec::with_capacity(n);
        let mut dst_clusters = Vec::with_capacity(n);
        let mut rtts = Vec::with_capacity(n);
        let mut errs = Vec::with_capacity(n);
        if n > 0 {
            let stride_us = epoch_secs * 1e6 / n as f64;
            let t_s = epoch_start as f64 / 1e6;
            for i in 0..n {
                let ts = epoch_start + (i as f64 * stride_us) as Ts;
                // Peers are probed in random order (per-pair probe counts per
                // window are therefore Poisson, as in real Pingmesh sweeps).
                let dst_ip = 100_000 + self.rng.gen_range(0..self.cfg.peer_ip_space.max(1));
                let pair_key = (u64::from(self.cfg.src_ip) << 32) | u64::from(dst_ip);
                let severity = self.cfg.anomalies.severity_at(t_s, key_hash01(pair_key));
                // Healthy RTT: exponential tail around the base (datacenter
                // RTTs are right-skewed); anomalies multiply.
                let u: f64 = self.rng.gen_range(0.0..1.0);
                let healthy = self.cfg.base_rtt_us * (0.5 + -(1.0 - u).ln());
                let rtt = (healthy * severity).round().max(1.0) as u32;
                let err: u32 = if self.rng.gen_bool(self.cfg.error_rate) {
                    self.rng.gen_range(1..=5)
                } else {
                    0
                };
                timestamps.push(ts);
                src_ips.push(u64::from(self.cfg.src_ip));
                src_clusters.push(u64::from(self.cfg.src_ip / 1000));
                dst_ips.push(u64::from(dst_ip));
                dst_clusters.push(u64::from(dst_ip / 1000));
                rtts.push(u64::from(rtt));
                errs.push(u64::from(err));
            }
        }
        Batch {
            schema: pingmesh_schema(),
            timestamps,
            columns: vec![
                Column::U64(src_ips),
                Column::U64(src_clusters),
                Column::U64(dst_ips),
                Column::U64(dst_clusters),
                Column::U64(rtts),
                Column::U64(errs),
            ],
        }
    }

    /// Row-oriented view of [`PingmeshGenerator::generate_epoch_batch`]
    /// (tests and trace capture).
    pub fn generate_epoch(&mut self, epoch_start: Ts, epoch_secs: f64) -> Vec<Record> {
        self.generate_epoch_batch(epoch_start, epoch_secs)
            .to_records()
    }
}

/// Schema of the named-cluster Pingmesh view: cluster ids carried as
/// operator-readable names. The names are low-cardinality strings, so the
/// columnar layout keeps them dictionary-encoded.
pub fn pingmesh_named_schema() -> SchemaRef {
    let fields = vec![
        Field::new("srcIp", DataType::U32),
        Field::new("srcCluster", DataType::Str),
        Field::new("dstIp", DataType::U32),
        Field::new("dstCluster", DataType::Str),
        Field::new("rtt", DataType::U32),
        Field::new("errCode", DataType::U32),
    ];
    Schema::with_overhead(fields, pingmesh_schema().record_overhead())
}

/// Stateful named-cluster rewriter: one persistent [`StreamDict`] per
/// cluster column, held across `name_batch` calls, so `cluster-<id>` codes
/// are stable identity for the whole stream — every batch's page is a
/// snapshot of the same growing dictionary, and downstream links ship page
/// *deltas* instead of a fresh page per batch. The batch-local
/// [`to_named_clusters`] remains for one-shot rewrites.
#[derive(Debug, Default, Clone)]
pub struct ClusterNamer {
    src: StreamDict,
    dst: StreamDict,
    /// Cluster id → code, per column (avoids formatting the name per row).
    src_codes: std::collections::HashMap<u64, u32>,
    dst_codes: std::collections::HashMap<u64, u32>,
}

impl ClusterNamer {
    /// A fresh namer with empty stream dictionaries.
    pub fn new() -> ClusterNamer {
        ClusterNamer::default()
    }

    /// Rewrites one batch into the named-cluster view, extending the
    /// persistent dictionaries with any first-seen cluster ids.
    pub fn name_batch(&mut self, batch: &Batch) -> Batch {
        fn name_col(
            col: &Column,
            stream: &mut StreamDict,
            known: &mut std::collections::HashMap<u64, u32>,
        ) -> Column {
            let Column::U64(ids) = col else {
                return col.clone();
            };
            let codes = ids
                .iter()
                .map(|&id| match known.get(&id) {
                    Some(&c) => c,
                    None => {
                        let c = stream.intern(&format!("cluster-{id}"));
                        known.insert(id, c);
                        c
                    }
                })
                .collect();
            Column::Dict {
                codes,
                dict: stream.snapshot(),
            }
        }
        let mut columns = batch.columns.clone();
        columns[col::SRC_CLUSTER] = name_col(
            &columns[col::SRC_CLUSTER],
            &mut self.src,
            &mut self.src_codes,
        );
        columns[col::DST_CLUSTER] = name_col(
            &columns[col::DST_CLUSTER],
            &mut self.dst,
            &mut self.dst_codes,
        );
        Batch {
            schema: pingmesh_named_schema(),
            timestamps: batch.timestamps.clone(),
            columns,
        }
    }
}

/// Rewrites a generated Pingmesh batch into the named-cluster view:
/// `srcCluster`/`dstCluster` ids become native dictionary columns of
/// `cluster-<id>` names (cluster-level queries then group on dict keys).
/// Batch-local: each call builds its own page; use [`ClusterNamer`] to keep
/// codes stable across a stream.
pub fn to_named_clusters(batch: &Batch) -> Batch {
    let name_col = |col: &Column| -> Column {
        let Column::U64(ids) = col else {
            return col.clone();
        };
        let mut dict = StrDict::new();
        let mut lookup: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        let codes = ids
            .iter()
            .map(|&id| match lookup.get(&id) {
                Some(&c) => c,
                None => {
                    let c = dict.push(&format!("cluster-{id}"));
                    lookup.insert(id, c);
                    c
                }
            })
            .collect();
        Column::Dict {
            codes,
            dict: Arc::new(dict),
        }
    };
    let mut columns = batch.columns.clone();
    columns[col::SRC_CLUSTER] = name_col(&columns[col::SRC_CLUSTER]);
    columns[col::DST_CLUSTER] = name_col(&columns[col::DST_CLUSTER]);
    Batch {
        schema: pingmesh_named_schema(),
        timestamps: batch.timestamps.clone(),
        columns,
    }
}

/// Per-source rate skew (paper §II-B: "58 % of the data source nodes generate
/// 50 % or lower of the highest rate"). Deterministic in the node index:
/// the first 58 % of nodes (by hashed order) get factors in `[0.2, 0.5]`, the
/// rest in `(0.5, 1.0]`.
pub fn rate_skew_factor(node_index: u32, total_nodes: u32) -> f64 {
    if total_nodes <= 1 {
        return 1.0;
    }
    let u = key_hash01(u64::from(node_index) * 2 + 1);
    if u < 0.58 {
        // Map [0, 0.58) → [0.2, 0.5].
        0.2 + (u / 0.58) * 0.3
    } else {
        // Map [0.58, 1) → (0.5, 1.0].
        0.5 + ((u - 0.58) / 0.42) * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamkit::record::wire_size_of;
    use streamkit::value::Value;

    #[test]
    fn record_is_exactly_86_bytes() {
        let mut g = PingmeshGenerator::new(PingmeshConfig::default());
        let recs = g.generate_epoch(0, 0.01);
        assert!(!recs.is_empty());
        let schema = pingmesh_schema();
        for r in &recs {
            assert_eq!(r.wire_size(&schema), PINGMESH_RECORD_BYTES);
        }
    }

    #[test]
    fn rate_matches_paper_arithmetic() {
        let cfg = PingmeshConfig::default();
        assert_eq!(cfg.records_per_sec(), 4000.0);
        // ≈ 2.62 Mbps in the paper's 2^20 convention.
        let mbps = cfg.bits_per_sec() / (1 << 20) as f64;
        assert!((mbps - 2.62).abs() < 0.01, "mbps={mbps}");
        let x10 = PingmeshConfig { scale: 10.0, ..cfg };
        let mbps10 = x10.bits_per_sec() / (1 << 20) as f64;
        assert!((mbps10 - 26.2).abs() < 0.1, "mbps10={mbps10}");
    }

    #[test]
    fn long_run_record_count_is_exact() {
        let cfg = PingmeshConfig {
            scale: 1.0,
            rate_factor: 0.3777,
            ..Default::default()
        };
        let expected = cfg.records_per_sec();
        let mut g = PingmeshGenerator::new(cfg);
        let mut total = 0usize;
        for e in 0..100 {
            total += g.generate_epoch(e * 1_000_000, 1.0).len();
        }
        assert!((total as f64 - expected * 100.0).abs() <= 1.0);
    }

    #[test]
    fn error_rate_is_close_to_configured() {
        let mut g = PingmeshGenerator::new(PingmeshConfig {
            scale: 10.0,
            ..Default::default()
        });
        let recs = g.generate_epoch(0, 1.0);
        let errors = recs
            .iter()
            .filter(|r| r.values[col::ERR_CODE] != Value::U64(0))
            .count();
        let rate = errors as f64 / recs.len() as f64;
        assert!((rate - 0.14).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn anomalies_raise_rtt_for_affected_pairs_only() {
        let cfg = PingmeshConfig {
            anomalies: AnomalySchedule::single(0.0, 60.0, 0.05, 30.0),
            scale: 10.0,
            ..Default::default()
        };
        let mut g = PingmeshGenerator::new(cfg);
        let recs = g.generate_epoch(0, 1.0);
        let high = recs
            .iter()
            .filter(|r| r.values[col::RTT].as_f64().unwrap() > 5_000.0)
            .count();
        let frac = high as f64 / recs.len() as f64;
        assert!(frac > 0.01 && frac < 0.10, "high-latency fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic() {
        let mk = || {
            let mut g = PingmeshGenerator::new(PingmeshConfig::default());
            g.generate_epoch(0, 1.0)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn skew_distribution_matches_paper() {
        let total = 1000;
        let below_half = (0..total)
            .filter(|&i| rate_skew_factor(i, total) <= 0.5)
            .count();
        let frac = below_half as f64 / total as f64;
        assert!((frac - 0.58).abs() < 0.05, "frac={frac}");
    }

    #[test]
    fn named_cluster_view_dict_encodes_cluster_names() {
        let mut g = PingmeshGenerator::new(PingmeshConfig {
            src_ip: 2_500,
            ..Default::default()
        });
        let batch = g.generate_epoch_batch(0, 0.05);
        let named = to_named_clusters(&batch);
        assert_eq!(named.len(), batch.len());
        assert!(matches!(
            named.columns[col::SRC_CLUSTER],
            Column::Dict { .. }
        ));
        assert_eq!(named.columns[col::SRC_CLUSTER].str_at(0), Some("cluster-2"));
        // Destination clusters span a small id space: the dictionary stays
        // far below the row count.
        let (dict, codes) = named.columns[col::DST_CLUSTER].as_dict().unwrap();
        assert!(dict.len() < codes.len());
        assert!(named.columns[col::DST_CLUSTER]
            .str_at(0)
            .unwrap()
            .starts_with("cluster-"));
        // Other columns and timestamps are untouched; the schema follows.
        assert_eq!(named.columns[col::RTT], batch.columns[col::RTT]);
        assert_eq!(named.schema, pingmesh_named_schema());
        assert!(named.wire_size() > 0);
    }

    #[test]
    fn cluster_namer_keeps_codes_stable_across_epochs() {
        let mut g = PingmeshGenerator::new(PingmeshConfig {
            src_ip: 2_500,
            ..Default::default()
        });
        let mut namer = ClusterNamer::new();
        let b0 = g.generate_epoch_batch(0, 0.05);
        let b1 = g.generate_epoch_batch(1_000_000, 0.05);
        let n0 = namer.name_batch(&b0);
        let n1 = namer.name_batch(&b1);
        // Same stream dictionary across epochs: shared persistent id,
        // append-only growth, identical prefix.
        let (d0, _) = n0.columns[col::DST_CLUSTER].as_dict().unwrap();
        let (d1, _) = n1.columns[col::DST_CLUSTER].as_dict().unwrap();
        assert_ne!(d0.id(), 0);
        assert_eq!(d0.id(), d1.id());
        assert!(d1.len() >= d0.len());
        for (i, e) in d0.iter().enumerate() {
            assert_eq!(e, d1.get(i as u32));
        }
        // Row contents match the batch-local rewrite.
        assert_eq!(n0.to_records(), to_named_clusters(&b0).to_records());
        assert_eq!(n1.to_records(), to_named_clusters(&b1).to_records());
        // Src and dst columns are distinct streams.
        let (s0, _) = n0.columns[col::SRC_CLUSTER].as_dict().unwrap();
        assert_ne!(s0.id(), d0.id());
    }

    #[test]
    fn wire_accounting_composes_over_batches() {
        let mut g = PingmeshGenerator::new(PingmeshConfig::default());
        let recs = g.generate_epoch(0, 0.1);
        let schema = pingmesh_schema();
        assert_eq!(
            wire_size_of(&recs, &schema),
            recs.len() * PINGMESH_RECORD_BYTES
        );
    }

    #[test]
    fn native_batch_accounts_like_rows() {
        // The columnar generator and the row view are the same data with the
        // same wire accounting: n × 86 bytes.
        let mut g = PingmeshGenerator::new(PingmeshConfig::default());
        let batch = g.generate_epoch_batch(0, 0.1);
        assert!(!batch.is_empty());
        assert_eq!(batch.wire_size(), batch.len() * PINGMESH_RECORD_BYTES);
        let mut g2 = PingmeshGenerator::new(PingmeshConfig::default());
        assert_eq!(g2.generate_epoch(0, 0.1), batch.to_records());
    }
}
