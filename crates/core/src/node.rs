//! The remote stream-processor executor behind the `jarvis-node` binary.
//!
//! [`run_node`] dials a coordinator, authenticates with the shared token,
//! receives its [`NodeSpec`] slice, replans the workload locally (planning
//! is deterministic, so coordinator and node agree on the chain, the shard
//! boundary, and every edge schema), instantiates the
//! `ShardSet`s for its owned ring slice,
//! and serves shard traffic until the coordinator finishes the run — at
//! which point it drains every window, streams the result rows and final
//! per-shard counters back, and exits. The serve loop is single-threaded:
//! the coordinator's per-link FIFO ordering guarantees `EpochEnd` and
//! `Finish` arrive after every data frame they follow.

use std::fmt;
use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use streamkit::batch::Batch;
use streamkit::ops::AggRole;
use streamkit::physical::build_pipeline;
use streamkit::shard::shards_of_node;

use crate::deploy::remote::{
    from_body, to_body, Admit, NodeSpec, NodeStatsMsg, Progress, Register, Reject, ShardCounters,
};
use crate::engine::netwire::decode_shard_payload;
use crate::engine::transport::{encode_frame, FrameKind, FrameReader, Link, TransportError};
use crate::engine::NetPayload;
use crate::live::session::ShardSet;
use crate::planner::plan_query;

/// Rows per `Results` frame when streaming collected rows back.
const RESULTS_CHUNK: usize = 2048;

/// Reconnect poll interval while the coordinator is not yet listening.
const CONNECT_POLL: Duration = Duration::from_millis(50);

/// How a node run is configured (mirrors the `jarvis-node` CLI flags).
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Coordinator endpoint, `host:port`.
    pub coordinator: String,
    /// Shared-secret token presented at registration.
    pub token: String,
    /// Requested node id; `None` lets the coordinator assign one.
    pub node_id: Option<u32>,
    /// How long to keep retrying the initial connect (the coordinator may
    /// not be listening yet).
    pub connect_timeout: Duration,
}

impl NodeConfig {
    /// A config with the default connect timeout.
    pub fn new(coordinator: impl Into<String>, token: impl Into<String>) -> NodeConfig {
        NodeConfig {
            coordinator: coordinator.into(),
            token: token.into(),
            node_id: None,
            connect_timeout: Duration::from_secs(10),
        }
    }
}

/// Why a node run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// The coordinator endpoint never accepted a connection.
    Connect {
        /// The endpoint dialled.
        endpoint: String,
        /// The last connection error observed.
        last_error: String,
    },
    /// The coordinator refused the registration.
    Rejected {
        /// The coordinator's refusal reason.
        reason: String,
    },
    /// The link failed at the transport layer.
    Transport(TransportError),
    /// The peer sent something outside the protocol's state machine.
    Protocol {
        /// What went wrong.
        reason: String,
    },
    /// The received spec could not be turned into a runnable engine.
    Build {
        /// The planner/pipeline error.
        reason: String,
    },
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Connect {
                endpoint,
                last_error,
            } => write!(f, "cannot connect to coordinator {endpoint}: {last_error}"),
            NodeError::Rejected { reason } => write!(f, "registration rejected: {reason}"),
            NodeError::Transport(e) => write!(f, "transport failure: {e}"),
            NodeError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            NodeError::Build { reason } => write!(f, "cannot build engine from spec: {reason}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<TransportError> for NodeError {
    fn from(e: TransportError) -> NodeError {
        NodeError::Transport(e)
    }
}

/// What a completed node run did, for operator logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSummary {
    /// The node id the coordinator assigned.
    pub node_id: u32,
    /// Epoch boundaries observed.
    pub epochs: u64,
    /// Shard data frames processed.
    pub shard_frames: u64,
    /// Result rows streamed back.
    pub result_rows: u64,
}

/// Dials the coordinator, executes the assigned shard slice, and streams
/// results back. Returns once the coordinator's `Finish` is fully answered.
pub fn run_node(config: &NodeConfig) -> Result<NodeSummary, NodeError> {
    let stream = connect(config)?;
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new(stream.try_clone().map_err(|e| NodeError::Connect {
        endpoint: config.coordinator.clone(),
        last_error: e.to_string(),
    })?);

    // Register → Admit/Reject → Spec.
    write_frame(
        &stream,
        FrameKind::Register,
        &to_body(&Register {
            token: config.token.clone(),
            node_id: config.node_id,
        }),
    )?;
    let node_id = match reader.read_frame()? {
        (FrameKind::Admit, body) => {
            let admit: Admit = from_body(&body).map_err(|reason| NodeError::Protocol { reason })?;
            admit.node_id
        }
        (FrameKind::Reject, body) => {
            let reject: Reject =
                from_body(&body).map_err(|reason| NodeError::Protocol { reason })?;
            return Err(NodeError::Rejected {
                reason: reject.reason,
            });
        }
        (other, _) => {
            return Err(NodeError::Protocol {
                reason: format!("expected Admit or Reject, got {other:?}"),
            })
        }
    };
    let spec: NodeSpec = match reader.read_frame()? {
        (FrameKind::Spec, body) => {
            from_body(&body).map_err(|reason| NodeError::Protocol { reason })?
        }
        (other, _) => {
            return Err(NodeError::Protocol {
                reason: format!("expected Spec, got {other:?}"),
            })
        }
    };
    let mut engine = NodeEngine::build(node_id, &spec)?;

    // Ready, then serve until Finish.
    let mut link = Link::spawn(stream);
    link.send(FrameKind::Ready, &[]);
    let mut epochs = 0u64;
    let mut shard_frames = 0u64;
    let result_rows;
    loop {
        let (kind, body) = reader.read_frame()?;
        match kind {
            FrameKind::Shard => {
                engine.ingest(body)?;
                shard_frames += 1;
            }
            FrameKind::EpochEnd => {
                let epoch = parse_epoch(&body)?;
                epochs += 1;
                let (drained_records, usage_us) = engine.totals();
                link.send(
                    FrameKind::Progress,
                    &to_body(&Progress {
                        node_id,
                        epoch,
                        drained_records,
                        usage_us,
                    }),
                );
            }
            FrameKind::Finish => {
                let rows = engine.drain()?;
                result_rows = rows.len() as u64;
                for chunk in rows.chunks(RESULTS_CHUNK) {
                    let batch =
                        Batch::from_records(engine.final_schema.clone(), chunk).map_err(|e| {
                            NodeError::Build {
                                reason: format!("result rows do not fit the output schema: {e}"),
                            }
                        })?;
                    link.send(FrameKind::Results, &streamkit::encode::encode_batch(&batch));
                }
                link.send(FrameKind::NodeStats, &to_body(&engine.stats(node_id)));
                link.send(FrameKind::Done, &[]);
                break;
            }
            other => {
                return Err(NodeError::Protocol {
                    reason: format!("unexpected {other:?} frame while serving"),
                })
            }
        }
    }
    link.close();
    if link.is_broken() {
        return Err(NodeError::Transport(TransportError::Closed));
    }
    Ok(NodeSummary {
        node_id,
        epochs,
        shard_frames,
        result_rows,
    })
}

/// Dials the coordinator, retrying until the connect timeout expires.
fn connect(config: &NodeConfig) -> Result<TcpStream, NodeError> {
    let deadline = Instant::now() + config.connect_timeout;
    loop {
        let last_error = match TcpStream::connect(&config.coordinator) {
            Ok(stream) => return Ok(stream),
            Err(e) => e.to_string(),
        };
        if Instant::now() >= deadline {
            return Err(NodeError::Connect {
                endpoint: config.coordinator.clone(),
                last_error,
            });
        }
        thread::sleep(CONNECT_POLL);
    }
}

/// Writes one frame synchronously (handshake only — the serve loop replies
/// through a [`Link`] writer thread).
fn write_frame(mut stream: &TcpStream, kind: FrameKind, body: &[u8]) -> Result<(), NodeError> {
    stream
        .write_all(&encode_frame(kind, body))
        .map_err(|e| NodeError::Transport(TransportError::from(e)))
}

/// Parses an `EpochEnd` body (the epoch index, u64 LE).
fn parse_epoch(body: &[u8]) -> Result<u64, NodeError> {
    let bytes: [u8; 8] = body.try_into().map_err(|_| NodeError::Protocol {
        reason: format!("EpochEnd body must be 8 bytes, got {}", body.len()),
    })?;
    Ok(u64::from_le_bytes(bytes))
}

/// The node's owned slice of the engine: shard sets plus the decode-side
/// schemas, rebuilt locally from the [`NodeSpec`].
struct NodeEngine {
    /// Owned ring slice (`shards_of_node`).
    owned: std::ops::Range<usize>,
    /// One set per owned shard, indexed by `shard - owned.start`.
    sets: Vec<ShardSet>,
    /// Input schema of every suffix stage plus the output edge.
    suffix_schemas: Vec<streamkit::schema::SchemaRef>,
    /// The plan's output schema (what `Results` frames encode).
    final_schema: streamkit::schema::SchemaRef,
}

impl NodeEngine {
    /// Replans the workload and instantiates the owned shard pipelines —
    /// the same construction [`LiveSession`](crate::live::LiveSession) uses
    /// for its in-process node pool.
    fn build(node_id: u32, spec: &NodeSpec) -> Result<NodeEngine, NodeError> {
        let build_err = |e: &dyn fmt::Display| NodeError::Build {
            reason: e.to_string(),
        };
        if node_id >= spec.n_nodes || spec.n_nodes > spec.n_shards || spec.n_shards == 0 {
            return Err(NodeError::Build {
                reason: format!(
                    "inconsistent geometry: node {node_id} of {} over {} shards",
                    spec.n_nodes, spec.n_shards
                ),
            });
        }
        let scenario = spec.workload.to_scenario();
        let planned =
            plan_query(scenario.logical_plan(), &spec.rules).map_err(|e| build_err(&e))?;
        let costs = scenario.costs();
        let boundary = match planned.plan.shard_boundary() {
            Some((g, _)) => g,
            None => planned.plan.len(),
        };
        let edge_schemas = planned.plan.edge_schemas().map_err(|e| build_err(&e))?;
        let suffix_schemas = edge_schemas[boundary..].to_vec();
        let final_schema = suffix_schemas
            .last()
            .expect("edge schemas cover the output edge")
            .clone();
        let owned = shards_of_node(
            node_id as usize,
            spec.n_shards as usize,
            spec.n_nodes as usize,
        );
        let sets = owned
            .clone()
            .map(|_| {
                let pipelines = (0..spec.sources)
                    .map(|_| {
                        build_pipeline(&planned.plan, &costs, AggRole::Final)
                            .map(|mut ops| ops.split_off(boundary))
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| build_err(&e))?;
                Ok(ShardSet {
                    pipelines,
                    collected: Vec::new(),
                    drained_records: 0,
                    usage_us: 0.0,
                })
            })
            .collect::<Result<Vec<_>, NodeError>>()?;
        Ok(NodeEngine {
            owned,
            sets,
            suffix_schemas,
            final_schema,
        })
    }

    /// Applies one shard data frame (an untouched `netwire` envelope).
    fn ingest(&mut self, body: bytes::Bytes) -> Result<(), NodeError> {
        let payload =
            decode_shard_payload(body, &self.suffix_schemas).map_err(|e| NodeError::Protocol {
                reason: format!("undecodable shard payload: {e}"),
            })?;
        match payload {
            NetPayload::ShardBatch {
                shard,
                source,
                rel,
                batch,
                ..
            } => {
                let set = self.set(shard)?;
                set.process(source as usize, rel as usize, batch);
            }
            NetPayload::ShardState {
                shard,
                source,
                rel,
                delta,
                ..
            } => {
                let set = self.set(shard)?;
                set.pipelines[source as usize][rel as usize].merge_state(delta);
            }
            _ => {
                return Err(NodeError::Protocol {
                    reason: "shard frames carry shard payloads only".to_string(),
                })
            }
        }
        Ok(())
    }

    /// The set owning ring-absolute `shard`, or a protocol error if the
    /// coordinator routed outside this node's slice.
    fn set(&mut self, shard: u32) -> Result<&mut ShardSet, NodeError> {
        let shard = shard as usize;
        if !self.owned.contains(&shard) {
            return Err(NodeError::Protocol {
                reason: format!("shard {shard} outside owned slice {:?}", self.owned),
            });
        }
        let start = self.owned.start;
        Ok(&mut self.sets[shard - start])
    }

    /// Cumulative `(drained_records, usage_us)` across owned shards.
    fn totals(&self) -> (u64, f64) {
        self.sets.iter().fold((0, 0.0), |(d, u), set| {
            (d + set.drained_records, u + set.usage_us)
        })
    }

    /// Closes every window and returns all collected result rows.
    fn drain(&mut self) -> Result<Vec<streamkit::record::Record>, NodeError> {
        let mut rows = Vec::new();
        for set in &mut self.sets {
            for pipeline in &mut set.pipelines {
                set.collected
                    .extend(streamkit::physical::drain_windows_rows(
                        pipeline,
                        streamkit::time::TS_MAX,
                    ));
            }
            rows.append(&mut set.collected);
        }
        Ok(rows)
    }

    /// Final per-shard accounting, ring order.
    fn stats(&self, node_id: u32) -> NodeStatsMsg {
        NodeStatsMsg {
            node_id,
            shards: self
                .owned
                .clone()
                .zip(&self.sets)
                .map(|(s, set)| ShardCounters {
                    shard: s as u32,
                    drained_records: set.drained_records,
                    usage_us: set.usage_us,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Scale;
    use crate::deploy::remote::RemoteWorkload;
    use crate::planner::RuleConfig;

    fn spec(n_shards: u32, n_nodes: u32) -> NodeSpec {
        NodeSpec {
            node_id: 0,
            n_nodes,
            n_shards,
            sources: 2,
            workload: RemoteWorkload::PingmeshS2S { scale: Scale::X1 },
            rules: RuleConfig::default(),
        }
    }

    #[test]
    fn engines_rebuild_the_owned_slice() {
        let engine = NodeEngine::build(1, &spec(4, 2)).unwrap();
        assert_eq!(engine.owned, 2..4);
        assert_eq!(engine.sets.len(), 2);
        assert_eq!(engine.sets[0].pipelines.len(), 2, "one chain per source");
        assert!(
            !engine.suffix_schemas.is_empty(),
            "decode schemas must cover the suffix"
        );
    }

    #[test]
    fn engines_reject_inconsistent_geometry() {
        assert!(matches!(
            NodeEngine::build(2, &spec(4, 2)),
            Err(NodeError::Build { .. })
        ));
        assert!(matches!(
            NodeEngine::build(0, &spec(2, 4)),
            Err(NodeError::Build { .. })
        ));
    }

    #[test]
    fn shard_routing_outside_the_slice_is_a_protocol_error() {
        let mut engine = NodeEngine::build(0, &spec(4, 2)).unwrap();
        assert!(engine.set(0).is_ok());
        assert!(matches!(engine.set(3), Err(NodeError::Protocol { .. })));
    }
}
