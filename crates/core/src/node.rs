//! The remote stream-processor executor behind the `jarvis-node` binary.
//!
//! [`run_node`] dials a coordinator, authenticates with the shared token,
//! receives its [`NodeSpec`] slice, replans the workload locally (planning
//! is deterministic, so coordinator and node agree on the chain, the shard
//! boundary, and every edge schema), instantiates the
//! `ShardSet`s for its owned ring slice,
//! and serves shard traffic until the coordinator finishes the run — at
//! which point it drains every window, streams the result rows and final
//! per-shard counters back, and exits. The serve loop is single-threaded:
//! the coordinator's per-link FIFO ordering guarantees `EpochEnd` and
//! `Finish` arrive after every data frame they follow.
//!
//! Fault tolerance adds three duties on top of the fault-free loop:
//!
//! - **Heartbeats** — every `Ping` is answered with a `Pong` immediately,
//!   so a coordinator waiting on a slow epoch can tell "busy" from "dead".
//! - **Checkpoints** — when [`NodeSpec::checkpoint_interval`] is non-zero,
//!   the node snapshots every stateful suffix operator plus the rows
//!   already collected past the chain at the matching epoch boundaries
//!   and ships both back as `Ckpt` frames, committed by the
//!   [`CheckpointAck`] riding on the following `Progress` (per-link
//!   FIFO order makes the ack see exactly the frames before it).
//! - **Adoption** — an `Adopt` frame re-keys the engine: each adopted
//!   shard starts from a fresh pipeline seeded with the checkpoint's
//!   counter bases; checkpoint state and replayed traffic then arrive as
//!   ordinary `Shard` frames. The same message serves both recovery paths
//!   (a surviving node taking over a dead peer's shards, and a
//!   reconnecting node re-owning its previous slice).
//!
//! With [`NodeConfig::reconnect`] set, a transport failure mid-run tears
//! the session down and re-dials under the same node id with capped
//! exponential backoff — the coordinator re-admits the node under its
//! token, re-ships spec, checkpoint, and replayed tail, and the rebuilt
//! engine converges on bit-identical state.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use streamkit::batch::{Batch, DictRegistry};
use streamkit::logical::LogicalPlan;
use streamkit::ops::{AggRole, StatePartial};
use streamkit::physical::{build_pipeline, CostProfile};
use streamkit::shard::shards_of_node;

use crate::deploy::remote::{
    from_body, to_body, Admit, AdoptMsg, CheckpointAck, NodeSpec, NodeStatsMsg, Progress, Register,
    Reject, ShardCounters,
};
use crate::engine::netwire::{decode_shard_payload_with, encode_shard_payload};
use crate::engine::transport::{encode_frame, FrameKind, FrameReader, Link, TransportError};
use crate::engine::NetPayload;
use crate::fault::splitmix64;
use crate::live::session::ShardSet;
use crate::planner::plan_query;

/// Rows per `Results` frame when streaming collected rows back.
const RESULTS_CHUNK: usize = 2048;

/// Reconnect poll interval while the coordinator is not yet listening.
const CONNECT_POLL: Duration = Duration::from_millis(50);

/// First reconnect backoff step (doubles per attempt).
const RECONNECT_BASE: Duration = Duration::from_millis(100);

/// Reconnect backoff ceiling.
const RECONNECT_CAP: Duration = Duration::from_secs(2);

/// Reconnect jitter span, milliseconds (see [`reconnect_backoff`]).
const RECONNECT_JITTER_MS: u64 = 100;

/// How a node run is configured (mirrors the `jarvis-node` CLI flags).
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Coordinator endpoint, `host:port`.
    pub coordinator: String,
    /// Shared-secret token presented at registration.
    pub token: String,
    /// Requested node id; `None` lets the coordinator assign one.
    pub node_id: Option<u32>,
    /// How long to keep retrying the initial connect (the coordinator may
    /// not be listening yet).
    pub connect_timeout: Duration,
    /// Re-dial and re-register under the same node id after a mid-run
    /// transport failure, instead of exiting with the error.
    pub reconnect: bool,
    /// Reconnect attempts before giving up (only with `reconnect`).
    pub max_reconnects: u32,
}

impl NodeConfig {
    /// A config with the default connect timeout and reconnects disabled.
    pub fn new(coordinator: impl Into<String>, token: impl Into<String>) -> NodeConfig {
        NodeConfig {
            coordinator: coordinator.into(),
            token: token.into(),
            node_id: None,
            connect_timeout: Duration::from_secs(10),
            reconnect: false,
            max_reconnects: 5,
        }
    }
}

/// Why a node run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// The coordinator endpoint never accepted a connection.
    Connect {
        /// The endpoint dialled.
        endpoint: String,
        /// The last connection error observed.
        last_error: String,
    },
    /// The coordinator refused the registration.
    Rejected {
        /// The coordinator's refusal reason.
        reason: String,
    },
    /// The link failed at the transport layer.
    Transport(TransportError),
    /// The peer sent something outside the protocol's state machine.
    Protocol {
        /// What went wrong.
        reason: String,
    },
    /// The received spec could not be turned into a runnable engine.
    Build {
        /// The planner/pipeline error.
        reason: String,
    },
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Connect {
                endpoint,
                last_error,
            } => write!(f, "cannot connect to coordinator {endpoint}: {last_error}"),
            NodeError::Rejected { reason } => write!(f, "registration rejected: {reason}"),
            NodeError::Transport(e) => write!(f, "transport failure: {e}"),
            NodeError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            NodeError::Build { reason } => write!(f, "cannot build engine from spec: {reason}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<TransportError> for NodeError {
    fn from(e: TransportError) -> NodeError {
        NodeError::Transport(e)
    }
}

/// What a completed node run did, for operator logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSummary {
    /// The node id the coordinator assigned.
    pub node_id: u32,
    /// Epoch boundaries observed (a replayed boundary counts again).
    pub epochs: u64,
    /// Shard data frames processed (replayed frames count again).
    pub shard_frames: u64,
    /// Result rows streamed back.
    pub result_rows: u64,
    /// Mid-run reconnects that re-established the session.
    pub reconnects: u32,
}

/// Counters that survive a session teardown, so a reconnect resumes the
/// summary (and re-registers under the admitted id) instead of starting
/// from scratch.
struct SessionState {
    /// The node id to re-register under (set at the first `Admit`).
    node_id: Option<u32>,
    /// Distinct epochs observed across all sessions. Recovery may re-send
    /// an `EpochEnd` the node already processed (a survivor adopting
    /// shards mid-epoch sees the current boundary twice), so this tracks
    /// the highest boundary rather than counting frames.
    epochs: u64,
    /// Shard frames processed across all sessions.
    shard_frames: u64,
}

/// Dials the coordinator, executes the assigned shard slice, and streams
/// results back. Returns once the coordinator's `Finish` is fully
/// answered — or, with [`NodeConfig::reconnect`], after exhausting the
/// reconnect budget on a persistent failure.
pub fn run_node(config: &NodeConfig) -> Result<NodeSummary, NodeError> {
    let mut state = SessionState {
        node_id: config.node_id,
        epochs: 0,
        shard_frames: 0,
    };
    let mut attempt = 0u32;
    loop {
        match run_session(config, &mut state) {
            Ok(mut summary) => {
                summary.reconnects = attempt;
                return Ok(summary);
            }
            Err(e) => {
                // Only link-level failures are worth re-dialling for; a
                // rejection or build failure would just repeat.
                let recoverable = matches!(e, NodeError::Transport(_) | NodeError::Protocol { .. });
                if !(config.reconnect && recoverable && attempt < config.max_reconnects) {
                    return Err(e);
                }
                attempt += 1;
                thread::sleep(reconnect_backoff(attempt, state.node_id.unwrap_or(0)));
            }
        }
    }
}

/// Capped exponential reconnect backoff with deterministic jitter:
/// `100ms · 2^(attempt-1)` capped at 2 s, plus 0–100 ms of
/// [`splitmix64`]-derived jitter so a cluster of nodes reconnecting after
/// the same network event does not stampede the coordinator in lockstep.
fn reconnect_backoff(attempt: u32, node_id: u32) -> Duration {
    let base = RECONNECT_BASE
        .checked_mul(1u32 << (attempt.saturating_sub(1)).min(16))
        .unwrap_or(RECONNECT_CAP)
        .min(RECONNECT_CAP);
    let roll = splitmix64((u64::from(node_id) << 32) | u64::from(attempt));
    base + Duration::from_millis(roll % RECONNECT_JITTER_MS)
}

/// One full coordinator session: handshake, serve loop, finish. A
/// transport error anywhere surfaces to [`run_node`], which decides
/// whether to re-dial.
fn run_session(config: &NodeConfig, state: &mut SessionState) -> Result<NodeSummary, NodeError> {
    let stream = connect(config)?;
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new(stream.try_clone().map_err(|e| NodeError::Connect {
        endpoint: config.coordinator.clone(),
        last_error: e.to_string(),
    })?);

    // Register → Admit/Reject → Spec.
    write_frame(
        &stream,
        FrameKind::Register,
        &to_body(&Register {
            token: config.token.clone(),
            node_id: state.node_id,
        }),
    )?;
    let node_id = match reader.read_frame()? {
        (FrameKind::Admit, body) => {
            let admit: Admit = from_body(&body).map_err(|reason| NodeError::Protocol { reason })?;
            admit.node_id
        }
        (FrameKind::Reject, body) => {
            let reject: Reject =
                from_body(&body).map_err(|reason| NodeError::Protocol { reason })?;
            return Err(NodeError::Rejected {
                reason: reject.reason,
            });
        }
        (other, _) => {
            return Err(NodeError::Protocol {
                reason: format!("expected Admit or Reject, got {other:?}"),
            })
        }
    };
    state.node_id = Some(node_id);
    let spec: NodeSpec = match reader.read_frame()? {
        (FrameKind::Spec, body) => {
            from_body(&body).map_err(|reason| NodeError::Protocol { reason })?
        }
        (other, _) => {
            return Err(NodeError::Protocol {
                reason: format!("expected Spec, got {other:?}"),
            })
        }
    };
    let mut engine = NodeEngine::build(node_id, &spec)?;

    // Ready, then serve until Finish.
    let mut link = Link::spawn(stream);
    link.send(FrameKind::Ready, &[]);
    let result_rows;
    loop {
        let (kind, body) = reader.read_frame()?;
        match kind {
            FrameKind::Shard => {
                engine.ingest(body)?;
                state.shard_frames += 1;
            }
            FrameKind::Ping => {
                link.send(FrameKind::Pong, &[]);
            }
            FrameKind::Adopt => {
                let msg: AdoptMsg =
                    from_body(&body).map_err(|reason| NodeError::Protocol { reason })?;
                engine.adopt(&msg)?;
            }
            FrameKind::EpochEnd => {
                let epoch = parse_epoch(&body)?;
                state.epochs = state.epochs.max(epoch + 1);
                let checkpoint = if spec.checkpoint_interval > 0
                    && (epoch + 1) % spec.checkpoint_interval == 0
                {
                    for (shard, source, rel, delta) in engine.snapshot() {
                        link.send(
                            FrameKind::Ckpt,
                            &encode_shard_payload(&NetPayload::ShardState {
                                shard,
                                epoch,
                                source,
                                rel,
                                delta,
                            }),
                        );
                    }
                    for body in engine.collected_snapshot(epoch)? {
                        link.send(FrameKind::Ckpt, &body);
                    }
                    Some(CheckpointAck {
                        epoch,
                        shards: engine.counters(),
                    })
                } else {
                    None
                };
                let (drained_records, usage_us) = engine.totals();
                link.send(
                    FrameKind::Progress,
                    &to_body(&Progress {
                        node_id,
                        epoch,
                        drained_records,
                        usage_us,
                        checkpoint,
                    }),
                );
            }
            FrameKind::Finish => {
                let rows = engine.drain()?;
                result_rows = rows.len() as u64;
                for chunk in rows.chunks(RESULTS_CHUNK) {
                    let batch =
                        Batch::from_records(engine.final_schema.clone(), chunk).map_err(|e| {
                            NodeError::Build {
                                reason: format!("result rows do not fit the output schema: {e}"),
                            }
                        })?;
                    link.send(FrameKind::Results, &streamkit::encode::encode_batch(&batch));
                }
                link.send(FrameKind::NodeStats, &to_body(&engine.stats(node_id)));
                link.send(FrameKind::Done, &[]);
                break;
            }
            other => {
                return Err(NodeError::Protocol {
                    reason: format!("unexpected {other:?} frame while serving"),
                })
            }
        }
    }
    link.close();
    if link.is_broken() {
        return Err(NodeError::Transport(
            link.error().unwrap_or(TransportError::Closed),
        ));
    }
    Ok(NodeSummary {
        node_id,
        epochs: state.epochs,
        shard_frames: state.shard_frames,
        result_rows,
        reconnects: 0,
    })
}

/// Dials the coordinator, retrying until the connect timeout expires.
fn connect(config: &NodeConfig) -> Result<TcpStream, NodeError> {
    let deadline = Instant::now() + config.connect_timeout;
    loop {
        let last_error = match TcpStream::connect(&config.coordinator) {
            Ok(stream) => return Ok(stream),
            Err(e) => e.to_string(),
        };
        if Instant::now() >= deadline {
            return Err(NodeError::Connect {
                endpoint: config.coordinator.clone(),
                last_error,
            });
        }
        thread::sleep(CONNECT_POLL);
    }
}

/// Writes one frame synchronously (handshake only — the serve loop replies
/// through a [`Link`] writer thread).
fn write_frame(mut stream: &TcpStream, kind: FrameKind, body: &[u8]) -> Result<(), NodeError> {
    stream
        .write_all(&encode_frame(kind, body))
        .map_err(|e| NodeError::Transport(TransportError::from(e)))
}

/// Parses an `EpochEnd` body (the epoch index, u64 LE).
fn parse_epoch(body: &[u8]) -> Result<u64, NodeError> {
    let bytes: [u8; 8] = body.try_into().map_err(|_| NodeError::Protocol {
        reason: format!("EpochEnd body must be 8 bytes, got {}", body.len()),
    })?;
    Ok(u64::from_le_bytes(bytes))
}

/// The node's owned slice of the engine: shard sets plus the decode-side
/// schemas, rebuilt locally from the [`NodeSpec`]. Sets are keyed by
/// ring-absolute shard index — ownership starts as the contiguous
/// `shards_of_node` slice but can grow past it through adoption.
struct NodeEngine {
    /// Live shard sets, keyed ring-absolute.
    sets: BTreeMap<usize, ShardSet>,
    /// Input schema of every suffix stage plus the output edge.
    suffix_schemas: Vec<streamkit::schema::SchemaRef>,
    /// The plan's output schema (what `Results` frames encode).
    final_schema: streamkit::schema::SchemaRef,
    /// The optimised plan, kept to instantiate adopted shards' pipelines.
    plan: LogicalPlan,
    /// Calibrated operator costs for fresh pipelines.
    costs: CostProfile,
    /// First SP-side operator index (suffix starts here).
    boundary: usize,
    /// Replica pipelines per shard (one per data source).
    sources: u32,
    /// Mirrors of the coordinator's persistent dictionaries for this link,
    /// fed by the delta pages riding live shard frames. Fresh per session:
    /// a reconnect rebuilds the engine, and the coordinator resets its
    /// sender-side versions to match, so the first post-reconnect frame
    /// re-seeds the mirrors. Checkpoint/replay frames are self-contained
    /// (full pages) and decode without mirror state.
    registry: DictRegistry,
}

impl NodeEngine {
    /// Replans the workload and instantiates the owned shard pipelines —
    /// the same construction [`LiveSession`](crate::live::LiveSession) uses
    /// for its in-process node pool.
    fn build(node_id: u32, spec: &NodeSpec) -> Result<NodeEngine, NodeError> {
        let build_err = |e: &dyn fmt::Display| NodeError::Build {
            reason: e.to_string(),
        };
        if node_id >= spec.n_nodes || spec.n_nodes > spec.n_shards || spec.n_shards == 0 {
            return Err(NodeError::Build {
                reason: format!(
                    "inconsistent geometry: node {node_id} of {} over {} shards",
                    spec.n_nodes, spec.n_shards
                ),
            });
        }
        let scenario = spec.workload.to_scenario();
        let planned =
            plan_query(scenario.logical_plan(), &spec.rules).map_err(|e| build_err(&e))?;
        let costs = scenario.costs();
        let boundary = match planned.plan.shard_boundary() {
            Some((g, _)) => g,
            None => planned.plan.len(),
        };
        let edge_schemas = planned.plan.edge_schemas().map_err(|e| build_err(&e))?;
        let suffix_schemas = edge_schemas[boundary..].to_vec();
        let final_schema = suffix_schemas
            .last()
            .expect("edge schemas cover the output edge")
            .clone();
        let owned = shards_of_node(
            node_id as usize,
            spec.n_shards as usize,
            spec.n_nodes as usize,
        );
        let mut engine = NodeEngine {
            sets: BTreeMap::new(),
            suffix_schemas,
            final_schema,
            plan: planned.plan,
            costs,
            boundary,
            sources: spec.sources,
            registry: DictRegistry::default(),
        };
        for shard in owned {
            let set = engine.fresh_set()?;
            engine.sets.insert(shard, set);
        }
        Ok(engine)
    }

    /// A zero-counter shard set with fresh pipelines (one per source).
    fn fresh_set(&self) -> Result<ShardSet, NodeError> {
        let pipelines = (0..self.sources)
            .map(|_| {
                build_pipeline(&self.plan, &self.costs, AggRole::Final)
                    .map(|mut ops| ops.split_off(self.boundary))
            })
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| NodeError::Build {
                reason: e.to_string(),
            })?;
        Ok(ShardSet {
            pipelines,
            collected: Vec::new(),
            drained_records: 0,
            usage_us: 0.0,
        })
    }

    /// Takes ownership of shards lost with a failed peer (or re-owns this
    /// node's slice on a reconnect): each adopted shard starts from a
    /// fresh pipeline seeded with the checkpoint's counter bases. The
    /// checkpoint state and the replayed post-checkpoint traffic follow as
    /// ordinary `Shard` frames on the same link.
    fn adopt(&mut self, msg: &AdoptMsg) -> Result<(), NodeError> {
        for a in &msg.shards {
            let mut set = self.fresh_set()?;
            set.drained_records = a.drained_records;
            set.usage_us = a.usage_us;
            self.sets.insert(a.shard as usize, set);
        }
        Ok(())
    }

    /// Full cumulative snapshot of every stateful suffix operator, as
    /// `(shard, source, rel, state)`. Uses the non-destructive
    /// [`checkpoint_state`](streamkit::ops::Operator::checkpoint_state),
    /// which covers every role —
    /// `take_state_delta` would skip final-role aggregations and silently
    /// checkpoint an empty table. Each snapshot is cumulative, so the
    /// coordinator can store checkpoints by replacement.
    fn snapshot(&mut self) -> Vec<(u32, u32, u32, StatePartial)> {
        let mut out = Vec::new();
        for (&shard, set) in &self.sets {
            for (source, pipeline) in set.pipelines.iter().enumerate() {
                for (rel, op) in pipeline.iter().enumerate() {
                    if let Some(delta) = op.checkpoint_state() {
                        out.push((shard as u32, source as u32, rel as u32, delta));
                    }
                }
            }
        }
        out
    }

    /// The cumulative rows that already traversed a full chain, one
    /// past-the-end `ShardBatch` envelope per non-empty shard (`rel` is
    /// the suffix length, so restoring it routes the rows straight back
    /// into `collected` without re-counting them as drained input). These
    /// rows live outside operator state, so a checkpoint that omitted
    /// them would silently drop every row emitted before the snapshot.
    fn collected_snapshot(&self, epoch: u64) -> Result<Vec<bytes::Bytes>, NodeError> {
        let rel = (self.suffix_schemas.len() - 1) as u32;
        let mut out = Vec::new();
        for (&shard, set) in &self.sets {
            if set.collected.is_empty() {
                continue;
            }
            let batch =
                Batch::from_records(self.final_schema.clone(), &set.collected).map_err(|e| {
                    NodeError::Build {
                        reason: format!("collected rows do not fit the output schema: {e}"),
                    }
                })?;
            out.push(encode_shard_payload(&NetPayload::ShardBatch {
                shard: shard as u32,
                epoch,
                source: 0,
                rel,
                batch,
            }));
        }
        Ok(out)
    }

    /// Applies one shard data frame (an untouched `netwire` envelope).
    fn ingest(&mut self, body: bytes::Bytes) -> Result<(), NodeError> {
        let payload = decode_shard_payload_with(body, &self.suffix_schemas, &mut self.registry)
            .map_err(|e| NodeError::Protocol {
                reason: format!("undecodable shard payload: {e}"),
            })?;
        match payload {
            NetPayload::ShardBatch {
                shard,
                source,
                rel,
                batch,
                ..
            } => {
                let set = self.set(shard)?;
                set.process(source as usize, rel as usize, batch);
            }
            NetPayload::ShardState {
                shard,
                source,
                rel,
                delta,
                ..
            } => {
                let set = self.set(shard)?;
                set.pipelines[source as usize][rel as usize].merge_state(delta);
            }
            _ => {
                return Err(NodeError::Protocol {
                    reason: "shard frames carry shard payloads only".to_string(),
                })
            }
        }
        Ok(())
    }

    /// The set owning ring-absolute `shard`, or a protocol error if the
    /// coordinator routed outside this node's owned set.
    fn set(&mut self, shard: u32) -> Result<&mut ShardSet, NodeError> {
        let shard = shard as usize;
        if !self.sets.contains_key(&shard) {
            return Err(NodeError::Protocol {
                reason: format!(
                    "shard {shard} outside owned set {:?}",
                    self.sets.keys().collect::<Vec<_>>()
                ),
            });
        }
        Ok(self.sets.get_mut(&shard).expect("presence checked above"))
    }

    /// Cumulative `(drained_records, usage_us)` across owned shards.
    fn totals(&self) -> (u64, f64) {
        self.sets.values().fold((0, 0.0), |(d, u), set| {
            (d + set.drained_records, u + set.usage_us)
        })
    }

    /// Closes every window and returns all collected result rows.
    fn drain(&mut self) -> Result<Vec<streamkit::record::Record>, NodeError> {
        let mut rows = Vec::new();
        for set in self.sets.values_mut() {
            for pipeline in &mut set.pipelines {
                set.collected
                    .extend(streamkit::physical::drain_windows_rows(
                        pipeline,
                        streamkit::time::TS_MAX,
                    ));
            }
            rows.append(&mut set.collected);
        }
        Ok(rows)
    }

    /// Per-shard accounting, ring order (adopted shards included).
    fn counters(&self) -> Vec<ShardCounters> {
        self.sets
            .iter()
            .map(|(&s, set)| ShardCounters {
                shard: s as u32,
                drained_records: set.drained_records,
                usage_us: set.usage_us,
            })
            .collect()
    }

    /// Final per-shard accounting, ring order.
    fn stats(&self, node_id: u32) -> NodeStatsMsg {
        NodeStatsMsg {
            node_id,
            shards: self.counters(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Scale;
    use crate::deploy::remote::{AdoptShard, RemoteWorkload};
    use crate::planner::RuleConfig;

    fn spec(n_shards: u32, n_nodes: u32) -> NodeSpec {
        NodeSpec {
            node_id: 0,
            n_nodes,
            n_shards,
            sources: 2,
            workload: RemoteWorkload::PingmeshS2S { scale: Scale::X1 },
            rules: RuleConfig::default(),
            checkpoint_interval: 0,
        }
    }

    #[test]
    fn engines_rebuild_the_owned_slice() {
        let engine = NodeEngine::build(1, &spec(4, 2)).unwrap();
        assert_eq!(engine.sets.keys().copied().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(engine.sets[&2].pipelines.len(), 2, "one chain per source");
        assert!(
            !engine.suffix_schemas.is_empty(),
            "decode schemas must cover the suffix"
        );
    }

    #[test]
    fn engines_reject_inconsistent_geometry() {
        assert!(matches!(
            NodeEngine::build(2, &spec(4, 2)),
            Err(NodeError::Build { .. })
        ));
        assert!(matches!(
            NodeEngine::build(0, &spec(2, 4)),
            Err(NodeError::Build { .. })
        ));
    }

    #[test]
    fn shard_routing_outside_the_slice_is_a_protocol_error() {
        let mut engine = NodeEngine::build(0, &spec(4, 2)).unwrap();
        assert!(engine.set(0).is_ok());
        assert!(matches!(engine.set(3), Err(NodeError::Protocol { .. })));
    }

    #[test]
    fn adoption_grows_the_owned_set_with_counter_bases() {
        let mut engine = NodeEngine::build(0, &spec(4, 2)).unwrap();
        assert!(engine.set(3).is_err(), "shard 3 belongs to node 1");
        engine
            .adopt(&AdoptMsg {
                shards: vec![AdoptShard {
                    shard: 3,
                    drained_records: 7,
                    usage_us: 0.25,
                }],
            })
            .unwrap();
        assert!(engine.set(3).is_ok());
        let counters = engine.counters();
        let adopted = counters.iter().find(|c| c.shard == 3).unwrap();
        assert_eq!(adopted.drained_records, 7);
        assert!((adopted.usage_us - 0.25).abs() < f64::EPSILON);
        let (drained, _) = engine.totals();
        assert_eq!(drained, 7, "counter bases carry into the totals");
    }

    #[test]
    fn fresh_engines_have_no_state_to_snapshot() {
        let mut engine = NodeEngine::build(0, &spec(4, 2)).unwrap();
        assert!(engine.snapshot().is_empty());
    }

    #[test]
    fn reconnect_backoff_is_capped_deterministic_and_jittered() {
        let first = reconnect_backoff(1, 3);
        assert!(first >= RECONNECT_BASE);
        assert!(first < RECONNECT_BASE + Duration::from_millis(RECONNECT_JITTER_MS));
        assert_eq!(first, reconnect_backoff(1, 3), "jitter is deterministic");
        let late = reconnect_backoff(30, 3);
        assert!(late >= RECONNECT_CAP);
        assert!(late < RECONNECT_CAP + Duration::from_millis(RECONNECT_JITTER_MS));
    }
}
