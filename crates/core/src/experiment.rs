//! Experiment harnesses regenerating the paper's evaluation (§VI).
//!
//! [`ScenarioSpec`] names a workload (query + generator + calibrated
//! costs) and implements [`SourceAdapter`](crate::deploy::SourceAdapter),
//! so it plugs straight into [`Deployment::builder`]. The sweep functions
//! below are the engines behind the `repro` binary's figure subcommands.
//! (The `Scenario`/`Runner` front doors this module once carried were
//! removed after their one-release deprecation window; every entry point is
//! the unified builder now.)

use streamkit::logical::LogicalPlan;
use streamkit::physical::CostProfile;

use crate::calibration::{self, Scale, MBPS};
use crate::deploy::{BackendKind, Deployment, RunReport};
use crate::engine::block::{EpochSource, NetworkModel};
use crate::planner::{plan_query, PlannedQuery, RuleConfig};
use crate::strategy::StrategyKind;
use telemetry::loganalytics::{LogConfig, LogGenerator};
use telemetry::pingmesh::{rate_skew_factor, PingmeshConfig, PingmeshGenerator};

/// The three evaluated workloads.
#[derive(Debug, Clone)]
pub enum Workload {
    /// S2SProbe on Pingmesh (Listing 1).
    PingmeshS2S {
        /// Input-rate scale.
        scale: Scale,
    },
    /// T2TProbe on Pingmesh (Listing 2).
    PingmeshT2T {
        /// Input-rate scale.
        scale: Scale,
        /// Static-table size.
        table_size: u32,
    },
    /// LogAnalytics on text logs (Listing 3).
    LogAnalytics {
        /// Input-rate scale.
        scale: Scale,
    },
}

/// A workload specification: query plan + calibrated costs + generators.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// The workload.
    pub workload: Workload,
    /// Apply per-source rate skew (Fig. 10 multi-source realism; off for the
    /// single-source throughput sweeps, matching §VI-B's fixed rates).
    pub rate_skew: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl ScenarioSpec {
    /// S2SProbe at the given scale.
    pub fn pingmesh_s2s(scale: Scale) -> ScenarioSpec {
        ScenarioSpec {
            workload: Workload::PingmeshS2S { scale },
            rate_skew: false,
            seed: 17,
        }
    }

    /// T2TProbe at the given scale and table size.
    pub fn pingmesh_t2t(scale: Scale, table_size: u32) -> ScenarioSpec {
        ScenarioSpec {
            workload: Workload::PingmeshT2T { scale, table_size },
            rate_skew: false,
            seed: 17,
        }
    }

    /// LogAnalytics at the given scale.
    pub fn log_analytics(scale: Scale) -> ScenarioSpec {
        ScenarioSpec {
            workload: Workload::LogAnalytics { scale },
            rate_skew: false,
            seed: 17,
        }
    }

    /// Workload name.
    pub fn name(&self) -> &'static str {
        match self.workload {
            Workload::PingmeshS2S { .. } => "S2SProbe",
            Workload::PingmeshT2T { .. } => "T2TProbe",
            Workload::LogAnalytics { .. } => "LogAnalytics",
        }
    }

    /// The logical plan.
    pub fn logical_plan(&self) -> LogicalPlan {
        match &self.workload {
            Workload::PingmeshS2S { .. } => telemetry::queries::s2s_probe(),
            Workload::PingmeshT2T { table_size, .. } => {
                let (src, dst) = telemetry::queries::t2t_tables(*table_size, 40, &[1]);
                telemetry::queries::t2t_probe(src, dst)
            }
            Workload::LogAnalytics { .. } => telemetry::queries::log_analytics(),
        }
    }

    /// The planned (optimised, rule-checked) query.
    pub fn plan(&self) -> PlannedQuery {
        plan_query(self.logical_plan(), &RuleConfig::default()).expect("paper queries are valid")
    }

    /// Calibrated per-operator costs.
    pub fn costs(&self) -> CostProfile {
        match self.workload {
            Workload::PingmeshS2S { .. } => calibration::s2s_cost_profile(),
            Workload::PingmeshT2T { .. } => calibration::t2t_cost_profile(),
            Workload::LogAnalytics { .. } => calibration::log_cost_profile(),
        }
    }

    /// A generator for source `i` of `n`.
    pub fn generator(&self, i: u32, n: u32) -> Box<dyn EpochSource> {
        let rate_factor = if self.rate_skew {
            rate_skew_factor(i, n)
        } else {
            1.0
        };
        match &self.workload {
            Workload::PingmeshS2S { scale } => Box::new(PingmeshGenerator::new(PingmeshConfig {
                src_ip: i + 1,
                scale: scale.factor(),
                rate_factor,
                seed: self.seed,
                ..Default::default()
            })),
            Workload::PingmeshT2T { scale, table_size } => {
                Box::new(PingmeshGenerator::new(PingmeshConfig {
                    src_ip: i + 1,
                    scale: scale.factor(),
                    rate_factor,
                    peer_ip_space: *table_size,
                    seed: self.seed,
                    ..Default::default()
                }))
            }
            Workload::LogAnalytics { scale } => Box::new(LogGenerator::new(LogConfig {
                scale: scale.factor(),
                seed: self.seed ^ u64::from(i),
                ..Default::default()
            })),
        }
    }

    /// Nominal per-source input rate in paper-Mbps.
    pub fn input_mbps(&self) -> f64 {
        match &self.workload {
            Workload::PingmeshS2S { scale } | Workload::PingmeshT2T { scale, .. } => {
                PingmeshConfig {
                    scale: scale.factor(),
                    ..Default::default()
                }
                .bits_per_sec()
                    / MBPS
            }
            Workload::LogAnalytics { scale } => {
                LogConfig {
                    scale: scale.factor(),
                    ..Default::default()
                }
                .bits_per_sec()
                    / MBPS
            }
        }
    }
}

/// Default warm-up epochs before measurement (§VI-A runs three minutes of
/// warm-up on the testbed; adaptation here settles within ~15 epochs).
pub const DEFAULT_WARMUP_EPOCHS: u64 = 20;

/// One row of a Fig. 7 panel: throughput per strategy at one CPU budget.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// CPU budget (fraction of one core).
    pub cpu_budget: f64,
    /// `(strategy, throughput Mbps)` pairs.
    pub results: Vec<(StrategyKind, f64)>,
}

/// Fig. 7: throughput over varying CPU budgets for a set of strategies.
pub fn throughput_sweep(
    spec: &ScenarioSpec,
    strategies: &[StrategyKind],
    budgets: &[f64],
    epochs: u64,
) -> Vec<ThroughputRow> {
    budgets
        .iter()
        .map(|&cpu| {
            let results = strategies
                .iter()
                .map(|&s| {
                    let report = Deployment::builder()
                        .workload(spec.clone())
                        .strategy(s)
                        .cpu_budget(cpu)
                        .seed(spec.seed)
                        .backend(BackendKind::Emulated)
                        .build()
                        .expect("paper scenarios build valid deployments")
                        .run(epochs)
                        .expect("emulated runs are infallible");
                    (s, report.throughput_mbps)
                })
                .collect();
            ThroughputRow {
                cpu_budget: cpu,
                results,
            }
        })
        .collect()
}

/// A scheduled resource change: at `epoch`, set the CPU budget (and/or the
/// join-table size).
#[derive(Debug, Clone, Copy)]
pub struct ResourceEvent {
    /// Epoch at which the change applies.
    pub epoch: u64,
    /// New CPU budget, if changing.
    pub cpu_budget: Option<f64>,
    /// New join-table size, if changing (T2TProbe only).
    pub table_size: Option<u32>,
}

/// Fig. 8: runs a strategy under a schedule of resource changes, returning
/// the per-epoch trace and convergence episodes.
pub fn convergence_run(
    spec: &ScenarioSpec,
    strategy: StrategyKind,
    initial_cpu: f64,
    events: &[ResourceEvent],
    total_epochs: u64,
) -> RunReport {
    Deployment::builder()
        .workload(spec.clone())
        .strategy(strategy)
        .cpu_budget(initial_cpu)
        .seed(spec.seed)
        .events(events)
        .backend(BackendKind::Emulated)
        .build()
        .expect("paper scenarios build valid deployments")
        .run(total_epochs)
        .expect("emulated runs are infallible")
}

/// One point of a Fig. 10 panel.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Number of data sources.
    pub sources: u32,
    /// Aggregate throughput, Mbps.
    pub throughput_mbps: f64,
    /// Ideal (input) aggregate rate, Mbps.
    pub expected_mbps: f64,
    /// Median / max latency of source 0.
    pub latency_median_s: Option<f64>,
    /// Max latency.
    pub latency_max_s: Option<f64>,
}

/// Fig. 10: aggregate throughput as sources scale, under the shared SP link.
pub fn scale_sweep(
    spec: &ScenarioSpec,
    strategy: StrategyKind,
    cpu_budget: f64,
    source_counts: &[u32],
    epochs: u64,
) -> Vec<ScalePoint> {
    source_counts
        .iter()
        .map(|&n| {
            let report = Deployment::builder()
                .workload(spec.clone())
                .strategy(strategy)
                .cpu_budget(cpu_budget)
                .sources(n)
                .seed(spec.seed)
                .network(NetworkModel::Shared {
                    total_bps: calibration::per_query_shared_bps(),
                })
                .backend(BackendKind::Emulated)
                .build()
                .expect("paper scenarios build valid deployments")
                .run(epochs)
                .expect("emulated runs are infallible");
            ScalePoint {
                sources: n,
                throughput_mbps: report.throughput_mbps,
                expected_mbps: spec.input_mbps() * f64::from(n),
                latency_median_s: report.latency_median_s,
                latency_max_s: report.latency_max_s,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(spec: ScenarioSpec, strategy: StrategyKind, cpu: f64, epochs: u64) -> RunReport {
        Deployment::builder()
            .workload(spec)
            .strategy(strategy)
            .cpu_budget(cpu)
            .build()
            .unwrap()
            .run(epochs)
            .unwrap()
    }

    #[test]
    fn single_source_jarvis_reaches_full_throughput_at_high_budget() {
        let report = run(
            ScenarioSpec::pingmesh_s2s(Scale::X10),
            StrategyKind::Jarvis,
            1.0,
            60,
        );
        // 26.2 Mbps input; with a full core the query fits locally.
        assert!(
            report.throughput_mbps > 0.9 * report.input_mbps,
            "throughput {} vs input {}",
            report.throughput_mbps,
            report.input_mbps
        );
    }

    #[test]
    fn all_sp_is_network_bound() {
        let report = run(
            ScenarioSpec::pingmesh_s2s(Scale::X10),
            StrategyKind::AllSp,
            1.0,
            60,
        );
        // 26.2 Mbps input over a 20.48 Mbps uplink: throughput ≈ the link.
        assert!(
            report.throughput_mbps < 22.0,
            "All-SP must cap near 20.48, got {}",
            report.throughput_mbps
        );
        assert!(
            report.throughput_mbps > 15.0,
            "got {}",
            report.throughput_mbps
        );
    }

    #[test]
    fn jarvis_beats_all_src_under_constrained_budget() {
        let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
        let jarvis = run(spec.clone(), StrategyKind::Jarvis, 0.6, 80).throughput_mbps;
        let allsrc = run(spec, StrategyKind::AllSrc, 0.6, 80).throughput_mbps;
        assert!(
            jarvis > 1.5 * allsrc,
            "Jarvis {jarvis:.1} must clearly beat All-Src {allsrc:.1} at 60% CPU"
        );
    }
}
