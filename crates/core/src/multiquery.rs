//! Multiple queries on one data source node (paper §VI-F, Fig. 11).
//!
//! Each query gets a dedicated Jarvis runtime; the node's compute is split
//! with a max-min fair allocation (§IV-E cites \[46\]) minus a fixed per-query
//! engine overhead, and the node's uplink is shared fairly across queries.
//! Since the fair share is an equal static split for identical queries, the
//! experiment reuses [`BuildingBlock`] with one engine per query instance.

use crate::calibration;
use crate::engine::block::{BuildingBlock, BuildingBlockConfig, EpochSource, NetworkModel};
use crate::engine::source::SourceConfig;
use crate::experiment::ScenarioSpec;
use crate::strategy::StrategyKind;

/// One point of a Fig. 11 panel.
#[derive(Debug, Clone)]
pub struct MultiQueryPoint {
    /// Number of concurrent query instances.
    pub queries: u32,
    /// Aggregate on-time throughput, paper-Mbps.
    pub throughput_mbps: f64,
    /// Per-query CPU share after overhead, cores.
    pub per_query_cores: f64,
}

/// Fair per-query compute share on a node with `cores`, running `k` queries
/// with fixed per-query engine overhead.
pub fn fair_share_cores(cores: f64, k: u32) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let usable = cores - f64::from(k) * calibration::PER_QUERY_OVERHEAD_CORES;
    (usable / f64::from(k)).max(0.0)
}

/// Runs `k` instances of the workload on one `cores`-core node and returns
/// the aggregate throughput. `per_query_demand` sets each instance's fixed
/// load factors (the paper configures instances "to use a fixed amount of
/// CPU resource (via fixed load factors)"); `None` lets Jarvis adapt.
pub fn run_multi_query(
    spec: &ScenarioSpec,
    cores: f64,
    k: u32,
    epochs: u64,
    fixed_load_factors: Option<&[f64]>,
) -> MultiQueryPoint {
    let per_query = fair_share_cores(cores, k);
    let planned = spec.plan();
    let costs = spec.costs();
    let strategy = if fixed_load_factors.is_some() {
        StrategyKind::AllSrc // placeholder; load factors are overridden below
    } else {
        StrategyKind::Jarvis
    };
    let cfgs: Vec<SourceConfig> = (0..k)
        .map(|i| {
            let mut c = SourceConfig::new(i + 1, per_query, strategy);
            c.seed = spec.seed.wrapping_add(u64::from(i) * 131);
            c
        })
        .collect();
    let generators: Vec<Box<dyn EpochSource>> =
        (0..k).map(|i| spec.generator(i, k.max(1))).collect();
    let mut block = BuildingBlock::new(
        &planned,
        &costs,
        cfgs,
        generators,
        BuildingBlockConfig {
            network: NetworkModel::Shared {
                total_bps: calibration::node_uplink_bps(),
            },
            ..Default::default()
        },
        crate::experiment::DEFAULT_WARMUP_EPOCHS,
    );
    if let Some(p) = fixed_load_factors {
        for i in 0..block.source_count() {
            block.source_mut(i).set_load_factors(p);
        }
    }
    block.run_epochs(epochs);
    MultiQueryPoint {
        queries: k,
        throughput_mbps: block.aggregate_throughput_mbps(),
        per_query_cores: per_query,
    }
}

/// Sweeps query counts for one panel of Fig. 11.
pub fn multi_query_sweep(
    spec: &ScenarioSpec,
    cores: f64,
    query_counts: &[u32],
    epochs: u64,
) -> Vec<MultiQueryPoint> {
    query_counts
        .iter()
        .map(|&k| run_multi_query(spec, cores, k, epochs, None))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Scale;

    #[test]
    fn fair_share_accounts_for_overhead() {
        let one = fair_share_cores(1.0, 1);
        assert!((one - (1.0 - 0.015)).abs() < 1e-12);
        let fifteen = fair_share_cores(1.0, 15);
        assert!(fifteen > 0.0 && fifteen < 0.06);
        assert_eq!(fair_share_cores(1.0, 80), 0.0, "overhead swallows the node");
    }

    #[test]
    fn throughput_saturates_with_query_count() {
        let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
        let p1 = run_multi_query(&spec, 1.0, 1, 50, None);
        let p3 = run_multi_query(&spec, 1.0, 3, 50, None);
        // One query at 10x fits in a core; three cannot triple throughput on
        // one core.
        assert!(p1.throughput_mbps > 20.0, "p1 = {p1:?}");
        assert!(
            p3.throughput_mbps < 2.5 * p1.throughput_mbps,
            "p1 = {p1:?}, p3 = {p3:?}"
        );
    }

    #[test]
    fn two_cores_support_more_queries_than_one() {
        let spec = ScenarioSpec::pingmesh_s2s(Scale::X5);
        let one_core = run_multi_query(&spec, 1.0, 4, 50, None);
        let two_cores = run_multi_query(&spec, 2.0, 4, 50, None);
        assert!(
            two_cores.throughput_mbps >= one_core.throughput_mbps,
            "one={one_core:?} two={two_cores:?}"
        );
    }
}
