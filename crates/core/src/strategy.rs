//! Partitioning strategies: Jarvis and the baselines of paper §VI-A.
//!
//! Every strategy is expressed in the same machinery — a load-factor vector
//! over the source-side control proxies plus an adaptation policy:
//!
//! | Strategy   | Load factors                           | Adaptation            |
//! |------------|----------------------------------------|-----------------------|
//! | All-SP     | `p₁ = 0`                               | none (Gigascope)      |
//! | All-Src    | all `pᵢ = 1`                           | none                  |
//! | Filter-Src | 1 through the first filter, then 0     | none (Everflow)       |
//! | Best-OP    | 0/1 by boundary operator               | boundary re-solve (Sonata) |
//! | LB-DP      | `p₁ = x`, rest 1                       | proportional split (M3) |
//! | Jarvis     | fractional per proxy                   | StepWise-Adapt        |
//!
//! Operator-level strategies queue overflow (their operators own *all* their
//! ingress); data-level strategies shed overflow losslessly down the drain
//! path.

use serde::{Deserialize, Serialize};
use streamkit::logical::LogicalOp;

use crate::calibration;
use crate::planner::PlannedQuery;
use crate::proxy::QueryState;
use crate::runtime::{AdaptPolicy, RuntimeConfig};
use crate::stepwise::{ProfileEstimates, StepWiseConfig};

/// How a source handles records its operators could not process in an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverflowMode {
    /// Keep them queued (operator-level semantics; queues may thrash).
    Queue,
    /// Drain them to the stream-processor replica (data-level semantics).
    Drain,
}

/// The evaluated partitioning strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Run the query entirely on the stream processor (Gigascope).
    AllSp,
    /// Run the query entirely on the data source.
    AllSrc,
    /// Static operator-level partitioning: filters at the source (Everflow).
    FilterSrc,
    /// Dynamic operator-level partitioning via a solver (Sonata).
    BestOp,
    /// Query-level data partitioning proportional to compute (M3).
    LbDp,
    /// Data-level partitioning with StepWise-Adapt (this paper).
    Jarvis,
    /// Ablation: model-based only (LP init, no fine-tuning) — §VI-C.
    JarvisLpOnly,
    /// Ablation: model-agnostic only (fine-tuning from zero) — §VI-C.
    JarvisNoLpInit,
}

impl StrategyKind {
    /// All six headline strategies of Fig. 7, in plot order.
    pub fn fig7_lineup() -> [StrategyKind; 6] {
        [
            StrategyKind::AllSrc,
            StrategyKind::AllSp,
            StrategyKind::FilterSrc,
            StrategyKind::BestOp,
            StrategyKind::LbDp,
            StrategyKind::Jarvis,
        ]
    }

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::AllSp => "All-SP",
            StrategyKind::AllSrc => "All-Src",
            StrategyKind::FilterSrc => "Filter-Src",
            StrategyKind::BestOp => "Best-OP",
            StrategyKind::LbDp => "LB-DP",
            StrategyKind::Jarvis => "Jarvis",
            StrategyKind::JarvisLpOnly => "LP only",
            StrategyKind::JarvisNoLpInit => "w/o LP init",
        }
    }

    /// Overflow handling.
    pub fn overflow_mode(self) -> OverflowMode {
        match self {
            StrategyKind::AllSp
            | StrategyKind::AllSrc
            | StrategyKind::FilterSrc
            | StrategyKind::BestOp => OverflowMode::Queue,
            _ => OverflowMode::Drain,
        }
    }

    /// Whether the strategy adapts at runtime.
    pub fn is_adaptive(self) -> bool {
        !matches!(
            self,
            StrategyKind::AllSp | StrategyKind::AllSrc | StrategyKind::FilterSrc
        )
    }

    /// Whether the strategy's adaptation policy is StepWise-Adapt (the
    /// convergence-cost simulator models only this family).
    pub fn is_stepwise(self) -> bool {
        matches!(
            self,
            StrategyKind::Jarvis | StrategyKind::JarvisLpOnly | StrategyKind::JarvisNoLpInit
        )
    }

    /// Initial load factors over the planned query's source prefix.
    pub fn initial_load_factors(self, planned: &PlannedQuery) -> Vec<f64> {
        let m = planned.source_ops;
        match self {
            StrategyKind::AllSp => vec![0.0; m],
            StrategyKind::AllSrc => vec![1.0; m],
            StrategyKind::FilterSrc => {
                // 1 through the first Filter (with any prerequisite stages
                // before it), 0 afterwards.
                let first_filter = planned.plan.ops[..m]
                    .iter()
                    .position(|op| matches!(op, LogicalOp::Filter { .. }));
                match first_filter {
                    Some(f) => (0..m).map(|i| if i <= f { 1.0 } else { 0.0 }).collect(),
                    None => vec![0.0; m],
                }
            }
            // Adaptive strategies start in Startup (everything drains) and
            // install a plan after the first Profile.
            _ => vec![0.0; m],
        }
    }

    /// Runtime configuration for this strategy.
    pub fn runtime_config(self) -> RuntimeConfig {
        let stepwise = match self {
            StrategyKind::JarvisLpOnly => StepWiseConfig::lp_only(),
            StrategyKind::JarvisNoLpInit => StepWiseConfig::without_lp_init(),
            _ => StepWiseConfig::default(),
        };
        RuntimeConfig {
            adaptive: self.is_adaptive(),
            stepwise,
            ..Default::default()
        }
    }

    /// Builds the adaptation policy for this strategy over `ops` proxies.
    pub fn build_policy(self, ops: usize) -> Box<dyn AdaptPolicy> {
        match self {
            StrategyKind::BestOp => Box::new(BestOpPolicy::default()),
            StrategyKind::LbDp => Box::new(LbDpPolicy {
                sp_cores_per_source: calibration::LBDP_SP_CORES_PER_SOURCE,
            }),
            _ => Box::new(crate::stepwise::StepWiseAdapt::new(
                self.runtime_config().stepwise,
                ops,
            )),
        }
    }
}

/// Sonata-style dynamic operator-level partitioning: deploy the longest
/// operator prefix whose *full* ingress fits the compute budget (paper §I:
/// "the query planner deploys ... an operator only if its available compute
/// resources are sufficient to process all of the operator's ingress data").
/// Because the operator must own *all* its ingress with no fallback path, the
/// planner keeps a utilisation headroom — exactly the conservatism that
/// data-level partitioning removes.
#[derive(Debug, Clone, Copy)]
pub struct BestOpPolicy {
    /// Target utilisation of the budget (≤ 1).
    pub headroom: f64,
}

impl Default for BestOpPolicy {
    fn default() -> Self {
        BestOpPolicy { headroom: 0.9 }
    }
}

impl AdaptPolicy for BestOpPolicy {
    fn init_plan(&mut self, est: &ProfileEstimates) -> Vec<f64> {
        // Enumerate feasible boundaries (prefix lengths whose full-ingress
        // compute fits the budget) and pick the one minimising outbound data
        // volume, tie-broken towards longer prefixes (the paper's Eq. 1
        // incentivises executing operators on the data source). A boundary
        // after a byte-*expanding* operator (e.g. a join before its
        // projection) is therefore never chosen.
        let budget = est.budget_us * self.headroom;
        let mut best_boundary = 0usize;
        let mut best_outbound = 1.0f64; // boundary 0: raw stream
        let mut ingress = est.records_per_epoch;
        let mut total = 0.0;
        let mut outbound = 1.0;
        for i in 0..est.len() {
            let cost = ingress * est.cost_us[i];
            if total + cost > budget {
                break;
            }
            total += cost;
            ingress *= est.relay_count[i].clamp(0.0, 1.0);
            outbound *= est.relay_bytes[i].max(0.0);
            if outbound <= best_outbound + 1e-12 {
                best_outbound = outbound.min(best_outbound);
                best_boundary = i + 1;
            }
        }
        let mut p = vec![0.0; est.len()];
        for v in p.iter_mut().take(best_boundary) {
            *v = 1.0;
        }
        p
    }

    fn fine_tune(&mut self, _p: &mut [f64], _state: QueryState) -> bool {
        // Operator-level: re-solving happens via a fresh Profile; there is no
        // incremental tuning between boundaries.
        false
    }

    fn name(&self) -> &'static str {
        "best-op"
    }
}

/// M3-style load balancing: split the *input stream* between source and SP
/// proportional to their compute capacities, processing the local share
/// through the whole pipeline.
#[derive(Debug, Clone, Copy)]
pub struct LbDpPolicy {
    /// SP compute assumed available per data source, cores.
    pub sp_cores_per_source: f64,
}

impl AdaptPolicy for LbDpPolicy {
    fn init_plan(&mut self, est: &ProfileEstimates) -> Vec<f64> {
        if est.is_empty() {
            return Vec::new();
        }
        // Full-pipeline cost per input record, µs.
        let mut per_record = 0.0;
        let mut frac = 1.0;
        for i in 0..est.len() {
            per_record += frac * est.cost_us[i];
            frac *= est.relay_count[i].clamp(0.0, 1.0);
        }
        let full_cost_us = per_record * est.records_per_epoch;
        let src_capacity = est.budget_us;
        let sp_capacity = self.sp_cores_per_source * 1e6 * calibration::EPOCH_SECS;
        let x_proportional = src_capacity / (src_capacity + sp_capacity).max(1e-9);
        let x_feasible = if full_cost_us > 0.0 {
            (src_capacity / full_cost_us).min(1.0)
        } else {
            1.0
        };
        let x = x_proportional.min(x_feasible);
        let mut p = vec![1.0; est.len()];
        p[0] = x;
        p
    }

    fn fine_tune(&mut self, _p: &mut [f64], _state: QueryState) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "lb-dp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_query, RuleConfig};

    fn estimates() -> ProfileEstimates {
        ProfileEstimates {
            cost_us: vec![0.25, 3.25, 23.26],
            relay_bytes: vec![1.0, 0.86, 0.3],
            relay_count: vec![1.0, 0.86, 0.5],
            records_per_epoch: 40_000.0,
            budget_us: 550_000.0, // 55% of a core
        }
    }

    #[test]
    fn best_op_places_only_the_filter_at_55_percent() {
        // Fig. 10a setting: "we set CPU to 55% to ensure that Best-OP
        // executes only the F operator".
        let mut policy = BestOpPolicy::default();
        let p = policy.init_plan(&estimates());
        assert_eq!(p, vec![1.0, 1.0, 0.0], "W and F fit; G+R does not");
    }

    #[test]
    fn best_op_places_everything_with_a_full_core() {
        let mut policy = BestOpPolicy::default();
        let mut est = estimates();
        // Profile epochs underestimate G+R (small sample ⇒ small hash
        // table); the boundary solve sees ~19.7 µs, not the steady 23.3.
        est.cost_us[2] = 19.7;
        est.budget_us = 1_000_000.0;
        let p = policy.init_plan(&est);
        assert_eq!(p, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn best_op_never_ends_at_a_byte_expanding_boundary() {
        // A join grows records (relay_bytes > 1); stopping right after it
        // would *increase* outbound traffic, so the boundary must stay at
        // the filter even though the join fits the budget.
        let mut policy = BestOpPolicy::default();
        let est = ProfileEstimates {
            cost_us: vec![0.25, 3.25, 5.0, 5.0],
            relay_bytes: vec![1.0, 0.86, 1.05, 1.05],
            relay_count: vec![1.0, 0.86, 1.0, 1.0],
            records_per_epoch: 40_000.0,
            budget_us: 600_000.0,
        };
        let p = policy.init_plan(&est);
        assert_eq!(p, vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn lbdp_split_is_proportional_and_feasible() {
        let mut policy = LbDpPolicy {
            sp_cores_per_source: 4.0,
        };
        let est = estimates();
        let p = policy.init_plan(&est);
        // x = 0.55 / (0.55 + 4) ≈ 0.12, well under the feasible cap.
        assert!((p[0] - 0.55 / 4.55).abs() < 1e-9, "{p:?}");
        assert!(p[1..].iter().all(|&v| v == 1.0));
    }

    #[test]
    fn lbdp_caps_at_feasibility() {
        let mut policy = LbDpPolicy {
            sp_cores_per_source: 0.01,
        };
        let mut est = estimates();
        est.budget_us = 100_000.0; // 10%: full pipeline needs ~85%
        let p = policy.init_plan(&est);
        assert!(p[0] <= 100_000.0 / (0.25 + 3.25 + 23.26 * 0.86) / 40_000.0 + 1e-9);
    }

    #[test]
    fn initial_load_factors_per_strategy() {
        let planned = plan_query(telemetry::queries::s2s_probe(), &RuleConfig::default()).unwrap();
        assert_eq!(
            StrategyKind::AllSp.initial_load_factors(&planned),
            vec![0.0, 0.0, 0.0]
        );
        assert_eq!(
            StrategyKind::AllSrc.initial_load_factors(&planned),
            vec![1.0, 1.0, 1.0]
        );
        assert_eq!(
            StrategyKind::FilterSrc.initial_load_factors(&planned),
            vec![1.0, 1.0, 0.0],
            "W and F local, G+R remote"
        );
        assert_eq!(
            StrategyKind::Jarvis.initial_load_factors(&planned),
            vec![0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn filter_src_handles_log_analytics_prefix() {
        let planned =
            plan_query(telemetry::queries::log_analytics(), &RuleConfig::default()).unwrap();
        let p = StrategyKind::FilterSrc.initial_load_factors(&planned);
        // Chain is W -> M -> F -> M -> M -> G+R: ones through index 2.
        assert_eq!(p, vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn overflow_modes_split_by_partitioning_level() {
        assert_eq!(StrategyKind::BestOp.overflow_mode(), OverflowMode::Queue);
        assert_eq!(StrategyKind::Jarvis.overflow_mode(), OverflowMode::Drain);
        assert_eq!(StrategyKind::LbDp.overflow_mode(), OverflowMode::Drain);
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(StrategyKind::BestOp.label(), "Best-OP");
        assert_eq!(StrategyKind::JarvisNoLpInit.label(), "w/o LP init");
    }
}
