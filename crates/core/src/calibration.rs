//! Calibration constants derived from the paper's published numbers.
//!
//! Every constant here traces to a statement in the paper (section numbers in
//! the doc comments). DESIGN.md §4 documents the derivations. The paper uses
//! a binary Mbps convention (86 B × 8 × 4 000 rec/s ≡ 2.62 Mbps), so
//! [`MBPS`] is 2²⁰ bits.

use serde::{Deserialize, Serialize};
use streamkit::ops::{CostModel, OpKind};
use streamkit::physical::CostProfile;

/// One "Mbps" in the paper's binary convention, in bits.
pub const MBPS: f64 = (1u64 << 20) as f64;

/// Input-rate scaling used across the evaluation (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// The dataset's calculated rate (2.62 Mbps Pingmesh).
    X1,
    /// 5× scaling (13.1 Mbps Pingmesh).
    X5,
    /// 10× scaling (26.2 Mbps Pingmesh) — the default for Fig. 7.
    X10,
}

impl Scale {
    /// Multiplier.
    pub fn factor(self) -> f64 {
        match self {
            Scale::X1 => 1.0,
            Scale::X5 => 5.0,
            Scale::X10 => 10.0,
        }
    }
}

/// Epoch length (§IV-E: "setting epoch duration to one second").
pub const EPOCH_SECS: f64 = 1.0;

/// Latency bound for throughput accounting (§VI-A: "throughput in Mbps with
/// a latency bound of 5 seconds").
pub const LATENCY_BOUND_SECS: f64 = 5.0;

/// Epochs of sustained non-stable state before adaptation triggers (§VI-C:
/// "three epochs are required to detect that compute budget has changed,
/// while avoiding triggering adaptation due to scheduling noise").
pub const DETECT_EPOCHS: u32 = 3;

/// DrainedThres — fraction of an epoch's records a proxy may drain as
/// overflow without signalling congestion (§IV-C).
pub const DRAINED_THRES: f64 = 0.05;

/// IdleThres — fraction of the epoch an operator may sit idle without
/// signalling idleness (§IV-C).
pub const IDLE_THRES: f64 = 0.25;

/// Per-epoch multiplicative CPU scheduling jitter (half-width). Drives the
/// debounce above; small enough not to perturb steady-state throughput.
pub const CPU_JITTER_FRAC: f64 = 0.02;

/// Effective bandwidth per query per data source node (§VI-A: 10 Gbps across
/// 250 nodes and 20 queries = 2.048 Mbps, scaled 10× with the data rates).
pub fn per_query_per_node_bps() -> f64 {
    20.48 * MBPS
}

/// Total stream-processor ingress available to one query across all its data
/// sources (§VI-A/§VI-E: 10 Gbps shared by 20 queries).
pub fn per_query_shared_bps() -> f64 {
    512.0 * MBPS
}

/// A data source node's total uplink, shared by the queries it hosts (§VI-F
/// multi-query experiments; EC2 t2-class burst bandwidth).
pub fn node_uplink_bps() -> f64 {
    40.0 * MBPS
}

/// Stream-processor core count (m5a.16xlarge, §VI-A).
pub const SP_CORES: f64 = 64.0;

/// Per-query runtime overhead on a data source, in cores (§VI-B: Jarvis'
/// adaptation consumes < 1 % of a core; the hosting dataflow runtime adds a
/// little more — this reproduces the 15-queries-per-core knee of Fig. 11c).
pub const PER_QUERY_OVERHEAD_CORES: f64 = 0.015;

/// Backlog-dependent cost inflation (thrashing) for queue-mode strategies on
/// memory-constrained sources: effective cost = c·(1 + THRASH·backlog_frac).
/// Calibrated so All-Src at 60 % CPU lands near the paper's ~10 Mbps
/// (Fig. 7a; see DESIGN.md §1 for the substitution note).
pub const THRASH_COEFF: f64 = 0.85;

/// Soft cap on queued records per source (≈ 1 s of 10×-scaled Pingmesh
/// input; a 1 GB t2.micro sheds before queue waits blow the latency bound).
/// Beyond it the oldest records are dropped.
pub const QUEUE_CAP_RECORDS: usize = 40_000;

/// Stateful operators ship partial-state deltas every this many epochs.
/// Chosen so S2SProbe's source-side G+R output rate lands near Fig. 3(b)'s
/// 5.6 Mbps result stream.
pub const STATE_SHIP_INTERVAL_EPOCHS: u32 = 2;

/// Batch quantum for the epoch executor (records per stage pass).
pub const EXEC_QUANTUM: usize = 512;

/// Rows measured per cost sample during a Profile epoch (emulated and live
/// alike). Small enough that state-dependent costs are tracked as operator
/// state grows, large enough to keep profiling vectorized.
pub const PROFILE_SUBBATCH_ROWS: usize = 64;

/// Load-factor discretisation granularity for fine-tuning's binary search
/// (§IV-D "binary search over discretized load factor values").
pub const LOAD_FACTOR_GRANULARITY: f64 = 1.0 / 64.0;

/// LB-DP's assumed stream-processor compute share per data source, in cores
/// (M3-style balancing splits load proportional to capacity; m5a.16xlarge's
/// 64 cores over ~16 active sources ⇒ 4). DESIGN.md §4 discusses the choice.
pub const LBDP_SP_CORES_PER_SOURCE: f64 = 4.0;

/// S2SProbe per-operator cost models at any scale (costs are per record).
///
/// * W ≈ 1 % of a core at 40 k rec/s ⇒ 0.25 µs;
/// * F = 13 % ⇒ 3.25 µs (§VI-B, Fig. 3);
/// * G+R = 80 % of a core for F's full output (34.4 k rec/s) ⇒ 23.26 µs at
///   its steady-state ~20 k live groups; the state-dependent model makes
///   profiling on a small sample underestimate it, as §VI-C observes.
pub fn s2s_cost_profile() -> CostProfile {
    CostProfile::from_models(vec![
        CostModel::fixed(0.25), // W
        CostModel::fixed(3.25), // F
        // Steady-state ≈ 23.3 µs at the ~14 k live groups the random-peer
        // probe pattern sustains under the 2-epoch ship cadence; the strong
        // state dependency is what makes short profiling samples
        // underestimate the cost (paper §VI-C: "profiling within a
        // one-second epoch is not sufficient for G+R ... resulting in less
        // accurate estimates").
        CostModel::state_dependent(14.3, 0.30, 2_000.0), // G+R
    ])
}

/// T2TProbe per-operator cost models. The two joins make the query exceed
/// one core at 10× with a 500-entry table; join cost grows with table size
/// (Fig. 8b grows the table 10× to congest the query).
pub fn t2t_cost_profile() -> CostProfile {
    CostProfile::from_models(vec![
        CostModel::fixed(0.25),                          // W
        CostModel::fixed(3.25),                          // F
        CostModel::state_dependent(5.2, 0.25, 500.0),    // J (srcTor)
        CostModel::state_dependent(5.2, 0.25, 500.0),    // J (dstTor)
        CostModel::fixed(0.4),                           // P
        CostModel::state_dependent(14.0, 0.15, 2_000.0), // G+R (ToR pairs)
    ])
}

/// LogAnalytics per-operator cost models, summing to ≈ 31 % of a core at the
/// 10×-scaled 49.6 Mbps input (§VI-B).
pub fn log_cost_profile() -> CostProfile {
    CostProfile::from_models(vec![
        CostModel::fixed(0.05),                        // W
        CostModel::fixed(0.9),                         // M trim/lower
        CostModel::fixed(0.7),                         // F patterns
        CostModel::fixed(1.3),                         // M parse
        CostModel::fixed(0.2),                         // M bucket
        CostModel::state_dependent(1.6, 0.1, 2_000.0), // G+R histogram
    ])
}

/// Default cost model for ad-hoc queries (tests, examples).
pub fn default_cost_for(kind: OpKind) -> CostModel {
    streamkit::physical::default_cost(kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s2s_totals_match_the_paper() {
        // At 10×: 40 000 rec/s input, filter keeps 86 %.
        let rate = 40_000.0;
        let profile = s2s_cost_profile();
        let w = profile.for_op(0, OpKind::Window).cost_us(0) * rate;
        let f = profile.for_op(1, OpKind::Filter).cost_us(0) * rate;
        // Live group count under random peer probing + the 2-epoch ship
        // cadence averages ~14 k (40 k probes/s over a 20 k peer space).
        let g = profile.for_op(2, OpKind::GroupAggregate).cost_us(14_000) * rate * 0.86;
        let total_frac = (w + f + g) / 1e6;
        // The paper states both "nearly 85% CPU to execute entirely" (§VI-B)
        // and "G+R requires 80% CPU" on top of a 13% filter (Fig. 3) — the
        // two are mutually inconsistent by ~9 points. We calibrate to
        // Fig. 3's operator-level numbers (which the data-level example
        // depends on), giving a ~94% whole-query demand.
        assert!((0.88..=0.97).contains(&total_frac), "total = {total_frac}");
        let f_frac = f / 1e6;
        assert!((f_frac - 0.13).abs() < 0.01, "filter = {f_frac}");
    }

    #[test]
    fn t2t_exceeds_one_core_at_10x() {
        let rate = 40_000.0;
        let profile = t2t_cost_profile();
        let mut total = profile.for_op(0, OpKind::Window).cost_us(0) * rate
            + profile.for_op(1, OpKind::Filter).cost_us(0) * rate;
        let after_f = rate * 0.86;
        total += profile.for_op(2, OpKind::Join).cost_us(500) * after_f;
        total += profile.for_op(3, OpKind::Join).cost_us(500) * after_f;
        total += profile.for_op(4, OpKind::Project).cost_us(0) * after_f;
        total += profile.for_op(5, OpKind::GroupAggregate).cost_us(200) * after_f;
        assert!(total > 1e6, "T2T must exceed one core: {total}");
        assert!(total < 1.6e6, "but not absurdly: {total}");
    }

    #[test]
    fn log_totals_match_the_paper() {
        // ≈ 72 k lines/s at 10×; filter keeps 75 %.
        let rate = 72_000.0;
        let profile = log_cost_profile();
        let mut total = 0.0;
        for (i, mult) in [(0usize, 1.0), (1, 1.0), (2, 1.0), (3, 0.75), (4, 0.75)] {
            total += profile.for_op(i, OpKind::Map).cost_us(0) * rate * mult;
        }
        total += profile.for_op(5, OpKind::GroupAggregate).cost_us(5_000) * rate * 0.75;
        let frac = total / 1e6;
        assert!((0.26..=0.36).contains(&frac), "log total = {frac}");
    }

    #[test]
    fn bandwidth_constants_match_section_6a() {
        assert!((per_query_per_node_bps() / MBPS - 20.48).abs() < 1e-9);
        assert!((per_query_shared_bps() / MBPS - 512.0).abs() < 1e-9);
    }

    #[test]
    fn group_cost_is_underestimated_on_small_samples() {
        let profile = s2s_cost_profile();
        let steady = profile.for_op(2, OpKind::GroupAggregate).cost_us(20_000);
        let sampled = profile.for_op(2, OpKind::GroupAggregate).cost_us(4_000);
        assert!(
            sampled < steady * 0.95,
            "sampled {sampled} vs steady {steady}"
        );
    }
}
