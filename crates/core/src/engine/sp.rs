//! The stream-processor engine.
//!
//! Hosts one replica pipeline per data source (paper Fig. 5): drained records
//! enter at the operator they were drained in front of and flow through the
//! rest of the chain; partial-state deltas merge into the replica's stateful
//! operator. Stateful replicas run in Final role and emit merged results. The
//! SP's cores are shared across all replicas.
//!
//! Throughput accounting distinguishes the *input domain* (drained source
//! records still being processed — their terminal events complete the input
//! work) from the *result domain* (rows emitted by aggregations — query
//! output, never double-counted as input completions).

use std::collections::VecDeque;

use simnet::{CpuBudget, Node, NodeId};
use streamkit::ops::{AggRole, Operator};
use streamkit::physical::{build_pipeline, CostProfile};
use streamkit::record::Record;
use streamkit::time::Ts;

use crate::calibration;
use crate::engine::NetPayload;
use crate::planner::PlannedQuery;

/// Which domain a queued record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemKind {
    /// A drained source record still being processed (input domain).
    Input,
    /// A row emitted by a window close (query result).
    WindowResult,
    /// A per-epoch dashboard delta (result domain, never fingerprinted).
    DeltaResult,
}

/// A queued item: the record, its network-arrival time, and its domain.
struct Item {
    rec: Record,
    arrived: f64,
    kind: ItemKind,
}

/// Per-source replica pipeline.
struct Replica {
    stages: Vec<Box<dyn Operator>>,
    /// Arrival queues, one per stage, plus a final slot for records that
    /// completed the whole chain.
    queues: Vec<VecDeque<Item>>,
}

/// Cost of merging one group's partial state, µs.
const MERGE_COST_PER_ENTRY_US: f64 = 0.5;

/// An input-record completion at the SP.
#[derive(Debug, Clone, Copy)]
pub struct SpCompletion {
    /// Which source the record came from.
    pub source: usize,
    /// The record's event timestamp.
    pub ts: Ts,
    /// Virtual completion time, seconds.
    pub completed_s: f64,
}

/// The SP engine.
pub struct SpEngine {
    node: Node,
    replicas: Vec<Replica>,
    epoch_secs: f64,
    results_emitted: u64,
    lateness_secs: f64,
    /// Retained result rows (window closes and stateless-tail completions),
    /// when result collection is enabled for exactness fingerprinting.
    collected: Option<Vec<Record>>,
}

impl SpEngine {
    /// Builds an SP hosting `n_sources` replicas of the planned query.
    pub fn new(
        planned: &PlannedQuery,
        costs: &CostProfile,
        n_sources: usize,
        sp_cores: f64,
        epoch_secs: f64,
    ) -> SpEngine {
        let mut replicas = Vec::with_capacity(n_sources);
        for _ in 0..n_sources {
            let stages =
                build_pipeline(&planned.plan, costs, AggRole::Final).expect("validated plan");
            let queues = (0..=stages.len()).map(|_| VecDeque::new()).collect();
            replicas.push(Replica { stages, queues });
        }
        SpEngine {
            node: Node::new(NodeId(0), CpuBudget::fraction(sp_cores), 0.0, 7),
            replicas,
            epoch_secs,
            results_emitted: 0,
            lateness_secs: calibration::LATENCY_BOUND_SECS,
            collected: None,
        }
    }

    /// Total result rows emitted so far.
    pub fn results_emitted(&self) -> u64 {
        self.results_emitted
    }

    /// Enables retention of result rows for exactness fingerprinting.
    pub fn set_collect_results(&mut self, on: bool) {
        self.collected = if on { Some(Vec::new()) } else { None };
    }

    /// Retained result rows, when collection is enabled.
    pub fn collected_results(&self) -> Option<&[Record]> {
        self.collected.as_deref()
    }

    fn collect(collected: &mut Option<Vec<Record>>, rec: &Record) {
        if let Some(rows) = collected {
            rows.push(rec.clone());
        }
    }

    /// The SP node (budget inspection).
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Records still queued (delivered but unprocessed).
    pub fn backlog_records(&self) -> usize {
        self.replicas
            .iter()
            .map(|r| r.queues.iter().map(VecDeque::len).sum::<usize>())
            .sum()
    }

    /// Delivers a payload from `source` that finished its network transfer at
    /// `arrival_secs`.
    pub fn deliver(&mut self, source: usize, payload: NetPayload, arrival_secs: f64) {
        let replica = &mut self.replicas[source];
        match payload {
            NetPayload::Records { stage, records } => {
                let stage = stage.min(replica.stages.len());
                for rec in records {
                    replica.queues[stage].push_back(Item {
                        rec,
                        arrived: arrival_secs,
                        kind: ItemKind::Input,
                    });
                }
            }
            NetPayload::StateDelta { stage, delta } => {
                let cost = MERGE_COST_PER_ENTRY_US * delta.entry_count() as f64;
                self.node.charge_upto(cost);
                if stage < replica.stages.len() {
                    replica.stages[stage].merge_state(delta);
                }
            }
        }
    }

    /// Runs one SP epoch: processes queued arrivals through the replica
    /// pipelines within the SP's core budget, then advances event time.
    /// Returns input-record completions.
    pub fn run_epoch(&mut self, epoch_start_us: Ts) -> Vec<SpCompletion> {
        self.node.begin_epoch(self.epoch_secs);
        let mut completions = Vec::new();
        let epoch_start_s = epoch_start_us as f64 / 1e6;
        let epoch_end_us = epoch_start_us + (self.epoch_secs * 1e6) as Ts;

        let mut out_buf: Vec<Record> = Vec::new();
        'outer: loop {
            let mut progressed = false;
            for (source, replica) in self.replicas.iter_mut().enumerate() {
                let n_stages = replica.stages.len();
                for stage in 0..n_stages {
                    let take = replica.queues[stage].len().min(calibration::EXEC_QUANTUM);
                    for _ in 0..take {
                        let cost = replica.stages[stage].cost_us();
                        if !self.node.try_charge(cost) {
                            break 'outer;
                        }
                        let item = replica.queues[stage].pop_front().expect("non-empty");
                        let ts = item.rec.ts;
                        out_buf.clear();
                        replica.stages[stage].process(item.rec, &mut out_buf);
                        let completed_s = (epoch_start_s
                            + self.node.epoch_utilisation() * self.epoch_secs)
                            .max(item.arrived);
                        if out_buf.is_empty() {
                            // Terminal: filtered out or absorbed into state.
                            if item.kind == ItemKind::Input {
                                completions.push(SpCompletion {
                                    source,
                                    ts,
                                    completed_s,
                                });
                            }
                        } else {
                            for out in out_buf.drain(..) {
                                replica.queues[stage + 1].push_back(Item {
                                    rec: out,
                                    arrived: completed_s,
                                    kind: item.kind,
                                });
                            }
                        }
                    }
                    if take > 0 {
                        progressed = true;
                    }
                }
                // Records that traversed the whole chain.
                let tail = replica.stages.len();
                while let Some(item) = replica.queues[tail].pop_front() {
                    match item.kind {
                        ItemKind::WindowResult => {
                            Self::collect(&mut self.collected, &item.rec);
                            self.results_emitted += 1;
                        }
                        ItemKind::DeltaResult => self.results_emitted += 1,
                        ItemKind::Input => {
                            // A stateless-tail input record: completing the
                            // chain is both its completion and a query result.
                            completions.push(SpCompletion {
                                source,
                                ts: item.rec.ts,
                                completed_s: item.arrived.max(epoch_start_s),
                            });
                            Self::collect(&mut self.collected, &item.rec);
                            self.results_emitted += 1;
                        }
                    }
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }

        // Advance event time with a lateness allowance so slow drained
        // records still find their windows open (watermark replication on
        // the drain path, §V).
        let wm = epoch_end_us - (self.lateness_secs * 1e6) as Ts;
        let mut wm_out: Vec<Record> = Vec::new();
        for replica in &mut self.replicas {
            let n_stages = replica.stages.len();
            for stage in 0..n_stages {
                let arrived = epoch_start_s + self.epoch_secs;
                wm_out.clear();
                replica.stages[stage].on_watermark(wm, &mut wm_out);
                for out in wm_out.drain(..) {
                    if stage + 1 < n_stages {
                        replica.queues[stage + 1].push_back(Item {
                            rec: out,
                            arrived,
                            kind: ItemKind::WindowResult,
                        });
                    } else {
                        // Final-stage emissions are query results.
                        Self::collect(&mut self.collected, &out);
                        self.results_emitted += 1;
                    }
                }
                wm_out.clear();
                replica.stages[stage].on_epoch(&mut wm_out);
                for out in wm_out.drain(..) {
                    if stage + 1 < n_stages {
                        replica.queues[stage + 1].push_back(Item {
                            rec: out,
                            arrived,
                            kind: ItemKind::DeltaResult,
                        });
                    } else {
                        self.results_emitted += 1;
                    }
                }
            }
        }

        completions
    }

    /// End-of-run flush: processes every queued record (no budget limit) and
    /// closes all remaining windows, so retained results cover the whole
    /// stream. Used for exactness fingerprinting; per-epoch throughput
    /// accounting is unaffected (the measurement window has already ended).
    pub fn finalize(&mut self) {
        for replica in &mut self.replicas {
            let n = replica.stages.len();
            // Flush queues forward (outputs only ever move downstream).
            for stage in 0..n {
                let mut out_buf: Vec<Record> = Vec::new();
                while let Some(item) = replica.queues[stage].pop_front() {
                    out_buf.clear();
                    replica.stages[stage].process(item.rec, &mut out_buf);
                    for out in out_buf.drain(..) {
                        replica.queues[stage + 1].push_back(Item {
                            rec: out,
                            arrived: item.arrived,
                            kind: item.kind,
                        });
                    }
                }
            }
            while let Some(item) = replica.queues[n].pop_front() {
                if item.kind != ItemKind::DeltaResult {
                    Self::collect(&mut self.collected, &item.rec);
                }
                self.results_emitted += 1;
            }
            // Close every remaining window and run the emissions through the
            // rest of the chain inline (the flush shared by all backends).
            for rec in
                streamkit::physical::drain_windows(&mut replica.stages, streamkit::time::TS_MAX)
            {
                Self::collect(&mut self.collected, &rec);
                self.results_emitted += 1;
            }
        }
    }
}
