//! The stream-processor engine, batch-first.
//!
//! Hosts one replica pipeline per data source (paper Fig. 5): drained
//! batches enter at the operator they were drained in front of and flow
//! through the rest of the chain; partial-state deltas merge into the
//! replica's stateful operator. Stateful replicas run in Final role and emit
//! merged results. The SP's cores are shared across all replicas.
//!
//! Throughput accounting distinguishes the *input domain* (drained source
//! rows still being processed — their terminal events complete the input
//! work) from the *result domain* (rows emitted by aggregations — query
//! output, never double-counted as input completions).

use std::collections::VecDeque;

use simnet::{CpuBudget, Node, NodeId};
use streamkit::batch::Batch;
use streamkit::ops::{absorbed_timestamps, AggRole, Operator};
use streamkit::physical::{build_pipeline, CostProfile};
use streamkit::record::Record;
use streamkit::time::Ts;

use crate::calibration;
use crate::engine::NetPayload;
use crate::planner::PlannedQuery;

/// Which domain a queued batch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemKind {
    /// Drained source rows still being processed (input domain).
    Input,
    /// Rows emitted by a window close (query result).
    WindowResult,
    /// Per-epoch dashboard deltas (result domain, never fingerprinted).
    DeltaResult,
}

/// A queued item: the batch, its network-arrival time, and its domain.
struct Item {
    batch: Batch,
    arrived: f64,
    kind: ItemKind,
}

/// Per-source replica pipeline.
struct Replica {
    stages: Vec<Box<dyn Operator>>,
    /// Arrival queues, one per stage, plus a final slot for batches that
    /// completed the whole chain.
    queues: Vec<VecDeque<Item>>,
}

/// Cost of merging one group's partial state, µs.
const MERGE_COST_PER_ENTRY_US: f64 = 0.5;

/// An input-record completion at the SP.
#[derive(Debug, Clone, Copy)]
pub struct SpCompletion {
    /// Which source the record came from.
    pub source: usize,
    /// The record's event timestamp.
    pub ts: Ts,
    /// Virtual completion time, seconds.
    pub completed_s: f64,
}

/// The SP engine.
pub struct SpEngine {
    node: Node,
    replicas: Vec<Replica>,
    epoch_secs: f64,
    results_emitted: u64,
    lateness_secs: f64,
    /// Retained result rows (window closes and stateless-tail completions),
    /// when result collection is enabled for exactness fingerprinting.
    collected: Option<Vec<Record>>,
}

impl SpEngine {
    /// Builds an SP hosting `n_sources` replicas of the planned query.
    pub fn new(
        planned: &PlannedQuery,
        costs: &CostProfile,
        n_sources: usize,
        sp_cores: f64,
        epoch_secs: f64,
    ) -> SpEngine {
        let mut replicas = Vec::with_capacity(n_sources);
        for _ in 0..n_sources {
            let stages =
                build_pipeline(&planned.plan, costs, AggRole::Final).expect("validated plan");
            let queues = (0..=stages.len()).map(|_| VecDeque::new()).collect();
            replicas.push(Replica { stages, queues });
        }
        SpEngine {
            node: Node::new(NodeId(0), CpuBudget::fraction(sp_cores), 0.0, 7),
            replicas,
            epoch_secs,
            results_emitted: 0,
            lateness_secs: calibration::LATENCY_BOUND_SECS,
            collected: None,
        }
    }

    /// Total result rows emitted so far.
    pub fn results_emitted(&self) -> u64 {
        self.results_emitted
    }

    /// Enables retention of result rows for exactness fingerprinting.
    pub fn set_collect_results(&mut self, on: bool) {
        self.collected = if on { Some(Vec::new()) } else { None };
    }

    /// Retained result rows, when collection is enabled.
    pub fn collected_results(&self) -> Option<&[Record]> {
        self.collected.as_deref()
    }

    fn collect_batch(collected: &mut Option<Vec<Record>>, batch: &Batch) {
        if let Some(rows) = collected {
            rows.extend(batch.to_records());
        }
    }

    /// The SP node (budget inspection).
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Rows still queued (delivered but unprocessed).
    pub fn backlog_records(&self) -> usize {
        self.replicas
            .iter()
            .map(|r| {
                r.queues
                    .iter()
                    .flat_map(|q| q.iter())
                    .map(|i| i.batch.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Delivers a payload from `source` that finished its network transfer at
    /// `arrival_secs`.
    pub fn deliver(&mut self, source: usize, payload: NetPayload, arrival_secs: f64) {
        let replica = &mut self.replicas[source];
        match payload {
            NetPayload::Records { stage, batch } => {
                if batch.is_empty() {
                    return;
                }
                let stage = stage.min(replica.stages.len());
                replica.queues[stage].push_back(Item {
                    batch,
                    arrived: arrival_secs,
                    kind: ItemKind::Input,
                });
            }
            NetPayload::StateDelta { stage, delta } => {
                let cost = MERGE_COST_PER_ENTRY_US * delta.entry_count() as f64;
                self.node.charge_upto(cost);
                if stage < replica.stages.len() {
                    replica.stages[stage].merge_state(delta);
                }
            }
        }
    }

    /// Runs one SP epoch: processes queued arrivals through the replica
    /// pipelines within the SP's core budget, then advances event time.
    /// Returns input-record completions.
    pub fn run_epoch(&mut self, epoch_start_us: Ts) -> Vec<SpCompletion> {
        self.node.begin_epoch(self.epoch_secs);
        let mut completions = Vec::new();
        let epoch_start_s = epoch_start_us as f64 / 1e6;
        let epoch_end_us = epoch_start_us + (self.epoch_secs * 1e6) as Ts;

        let mut out_buf: Vec<Batch> = Vec::new();
        'outer: loop {
            let mut progressed = false;
            for (source, replica) in self.replicas.iter_mut().enumerate() {
                let n_stages = replica.stages.len();
                for stage in 0..n_stages {
                    let mut quota = calibration::EXEC_QUANTUM;
                    while quota > 0 {
                        let Some(item) = replica.queues[stage].pop_front() else {
                            break;
                        };
                        if item.batch.is_empty() {
                            continue;
                        }
                        let cost = replica.stages[stage].cost_us();
                        let take = item.batch.len().min(quota).min(self.node.affordable(cost));
                        if take == 0 {
                            replica.queues[stage].push_front(item);
                            break 'outer;
                        }
                        let head = if take == item.batch.len() {
                            item.batch
                        } else {
                            let rest = item.batch.slice(take..item.batch.len());
                            let head = item.batch.slice(0..take);
                            replica.queues[stage].push_front(Item {
                                batch: rest,
                                arrived: item.arrived,
                                kind: item.kind,
                            });
                            head
                        };
                        self.node.charge_upto(take as f64 * cost);
                        quota -= take;
                        progressed = true;
                        let completed_s = (epoch_start_s
                            + self.node.epoch_utilisation() * self.epoch_secs)
                            .max(item.arrived);
                        let in_ts = head.timestamps.clone();
                        out_buf.clear();
                        replica.stages[stage].process_batch(head, &mut out_buf);
                        if item.kind == ItemKind::Input {
                            // Terminal rows: filtered out or absorbed into
                            // state.
                            for ts in absorbed_timestamps(&in_ts, &out_buf) {
                                completions.push(SpCompletion {
                                    source,
                                    ts,
                                    completed_s,
                                });
                            }
                        }
                        for out in out_buf.drain(..) {
                            replica.queues[stage + 1].push_back(Item {
                                batch: out,
                                arrived: completed_s,
                                kind: item.kind,
                            });
                        }
                    }
                }
                // Batches that traversed the whole chain.
                let tail = replica.stages.len();
                while let Some(item) = replica.queues[tail].pop_front() {
                    match item.kind {
                        ItemKind::WindowResult => {
                            Self::collect_batch(&mut self.collected, &item.batch);
                            self.results_emitted += item.batch.len() as u64;
                        }
                        ItemKind::DeltaResult => self.results_emitted += item.batch.len() as u64,
                        ItemKind::Input => {
                            // Stateless-tail input rows: completing the chain
                            // is both their completion and a query result.
                            for &ts in &item.batch.timestamps {
                                completions.push(SpCompletion {
                                    source,
                                    ts,
                                    completed_s: item.arrived.max(epoch_start_s),
                                });
                            }
                            Self::collect_batch(&mut self.collected, &item.batch);
                            self.results_emitted += item.batch.len() as u64;
                        }
                    }
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }

        // Advance event time with a lateness allowance so slow drained
        // records still find their windows open (watermark replication on
        // the drain path, §V).
        let wm = epoch_end_us - (self.lateness_secs * 1e6) as Ts;
        let mut wm_out: Vec<Batch> = Vec::new();
        for replica in &mut self.replicas {
            let n_stages = replica.stages.len();
            for stage in 0..n_stages {
                let arrived = epoch_start_s + self.epoch_secs;
                wm_out.clear();
                replica.stages[stage].on_watermark(wm, &mut wm_out);
                for out in wm_out.drain(..) {
                    if stage + 1 < n_stages {
                        replica.queues[stage + 1].push_back(Item {
                            batch: out,
                            arrived,
                            kind: ItemKind::WindowResult,
                        });
                    } else {
                        // Final-stage emissions are query results.
                        Self::collect_batch(&mut self.collected, &out);
                        self.results_emitted += out.len() as u64;
                    }
                }
                wm_out.clear();
                replica.stages[stage].on_epoch(&mut wm_out);
                for out in wm_out.drain(..) {
                    if stage + 1 < n_stages {
                        replica.queues[stage + 1].push_back(Item {
                            batch: out,
                            arrived,
                            kind: ItemKind::DeltaResult,
                        });
                    } else {
                        self.results_emitted += out.len() as u64;
                    }
                }
            }
        }

        completions
    }

    /// End-of-run flush: processes every queued batch (no budget limit) and
    /// closes all remaining windows, so retained results cover the whole
    /// stream. Used for exactness fingerprinting; per-epoch throughput
    /// accounting is unaffected (the measurement window has already ended).
    pub fn finalize(&mut self) {
        for replica in &mut self.replicas {
            let n = replica.stages.len();
            // Flush queues forward (outputs only ever move downstream).
            for stage in 0..n {
                let mut out_buf: Vec<Batch> = Vec::new();
                while let Some(item) = replica.queues[stage].pop_front() {
                    out_buf.clear();
                    replica.stages[stage].process_batch(item.batch, &mut out_buf);
                    for out in out_buf.drain(..) {
                        replica.queues[stage + 1].push_back(Item {
                            batch: out,
                            arrived: item.arrived,
                            kind: item.kind,
                        });
                    }
                }
            }
            while let Some(item) = replica.queues[n].pop_front() {
                if item.kind != ItemKind::DeltaResult {
                    Self::collect_batch(&mut self.collected, &item.batch);
                }
                self.results_emitted += item.batch.len() as u64;
            }
            // Close every remaining window and run the emissions through the
            // rest of the chain inline (the flush shared by all backends).
            for batch in
                streamkit::physical::drain_windows(&mut replica.stages, streamkit::time::TS_MAX)
            {
                Self::collect_batch(&mut self.collected, &batch);
                self.results_emitted += batch.len() as u64;
            }
        }
    }
}
